//! Decomposing conjunctive queries into connected components.
//!
//! The proof of Theorem 4 rewrites UCQs into disjunctions of queries
//! `q ∧ ⋀ᵢ qᵢ` with a core evaluated over the instance and rAQ side
//! components. The simplest useful piece of that machinery — implemented
//! here — splits a CQ into its connected components: for ontologies that
//! are invariant under disjoint unions *and materializable*, a Boolean CQ
//! is certain iff each connected component is (evaluate them in the same
//! materialization), which lets the engine work component-by-component.

use gomq_core::query::{CqAtom, Var};
use gomq_core::{Cq, VarOrConst};
use std::collections::{BTreeMap, BTreeSet};

/// The connected components of a CQ's body (variables connected through
/// shared atoms; constants do not connect components). Answer variables
/// stay attached to their components; a component without answer
/// variables becomes a Boolean CQ.
pub fn connected_components(q: &Cq) -> Vec<Cq> {
    if q.atoms.is_empty() {
        return vec![q.clone()];
    }
    // Union-find over atoms through shared variables.
    let n = q.atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut by_var: BTreeMap<Var, Vec<usize>> = BTreeMap::new();
    for (i, atom) in q.atoms.iter().enumerate() {
        for arg in &atom.args {
            if let VarOrConst::Var(v) = arg {
                by_var.entry(*v).or_default().push(i);
            }
        }
    }
    for idxs in by_var.values() {
        for w in idxs.windows(2) {
            let a = find(&mut parent, w[0]);
            let b = find(&mut parent, w[1]);
            parent[a] = b;
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    // Build one CQ per group, remapping variables densely.
    let mut out = Vec::new();
    for (_, atom_idxs) in groups {
        let mut var_map: BTreeMap<Var, Var> = BTreeMap::new();
        let mut names: Vec<String> = Vec::new();
        let mut atoms: Vec<CqAtom> = Vec::new();
        for &i in &atom_idxs {
            let atom = &q.atoms[i];
            let args = atom
                .args
                .iter()
                .map(|arg| match arg {
                    VarOrConst::Const(c) => VarOrConst::Const(*c),
                    VarOrConst::Var(v) => {
                        let mapped = *var_map.entry(*v).or_insert_with(|| {
                            names.push(q.var_names[v.0 as usize].clone());
                            Var(names.len() as u32 - 1)
                        });
                        VarOrConst::Var(mapped)
                    }
                })
                .collect();
            atoms.push(CqAtom {
                rel: atom.rel,
                args,
            });
        }
        let answer_vars: Vec<Var> = q
            .answer_vars
            .iter()
            .filter_map(|v| var_map.get(v).copied())
            .collect();
        out.push(Cq::new(answer_vars, atoms, names));
    }
    out
}

/// Whether the CQ is connected (a single component).
pub fn is_connected_query(q: &Cq) -> bool {
    connected_components(q).len() <= 1
}

/// The set of variables shared between at least two atoms — useful when
/// deciding which components a squid-style decomposition must keep
/// together.
pub fn shared_vars(q: &Cq) -> BTreeSet<Var> {
    let mut counts: BTreeMap<Var, usize> = BTreeMap::new();
    for atom in &q.atoms {
        let mut seen: BTreeSet<Var> = BTreeSet::new();
        for arg in &atom.args {
            if let VarOrConst::Var(v) = arg {
                if seen.insert(*v) {
                    *counts.entry(*v).or_default() += 1;
                }
            }
        }
    }
    counts
        .into_iter()
        .filter(|(_, c)| *c >= 2)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certain::CertainEngine;
    use gomq_core::query::CqBuilder;
    use gomq_core::{Fact, Instance, Ucq, Vocab};
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;

    #[test]
    fn disconnected_query_splits() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(r, &[x, y]).atom(a, &[z]);
        let q = b.build(vec![x]);
        let comps = connected_components(&q);
        assert_eq!(comps.len(), 2);
        assert!(!is_connected_query(&q));
        // The answer variable stays with its component.
        let with_answer = comps.iter().filter(|c| !c.is_boolean()).count();
        assert_eq!(with_answer, 1);
    }

    #[test]
    fn connected_query_stays_whole() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(r, &[x, y]).atom(r, &[y, z]);
        let q = b.build(vec![x]);
        assert!(is_connected_query(&q));
        assert_eq!(shared_vars(&q).len(), 1); // y joins the two atoms
    }

    #[test]
    fn component_certainty_composes_for_materializable_ontologies() {
        // Horn O: Boolean q = (A-component) ∧ (B-component): certain iff
        // both components certain.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let c_rel = v.rel("C", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Exists(r, Box::new(Concept::Name(b_rel))),
        );
        let o = to_gf(&dl);
        let ca = v.constant("u");
        let cb = v.constant("w");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[ca]));
        d.insert(Fact::consts(c_rel, &[cb]));
        // q ← A(x) ∧ C(y): two components, both certain.
        let mut bq = CqBuilder::new();
        let x = bq.var("x");
        let y = bq.var("y");
        bq.atom(a, &[x]).atom(c_rel, &[y]);
        let q = bq.build(vec![]);
        let comps = connected_components(&q);
        assert_eq!(comps.len(), 2);
        let engine = CertainEngine::new(2);
        let whole = engine
            .certain(&o, &d, &Ucq::from_cq(q.clone()), &[], &mut v)
            .is_certain();
        let per_component = comps.iter().all(|c| {
            engine
                .certain(&o, &d, &Ucq::from_cq(c.clone()), &[], &mut v)
                .is_certain()
        });
        assert!(whole && per_component);
        // Make one component non-certain: drop C(w).
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(a, &[ca]));
        let whole2 = engine
            .certain(&o, &d2, &Ucq::from_cq(q), &[], &mut v)
            .is_certain();
        assert!(!whole2);
    }

    #[test]
    fn atomless_query_is_single_component() {
        let b = CqBuilder::new();
        let q = b.build(vec![]);
        assert_eq!(connected_components(&q).len(), 1);
    }
}
