//! # gomq-reasoning
//!
//! The reasoning engines behind the reproduction of *Dichotomies in
//! Ontology-Mediated Querying with the Guarded Fragment* (PODS 2017):
//!
//! * [`sat`] — a self-contained DPLL SAT solver (the propositional
//!   substrate for bounded countermodel search),
//! * [`ground`] — grounding GF(=)/GC₂ ontologies and (U)CQs over a finite
//!   domain into CNF,
//! * [`certain`] — certain answers and consistency by bounded countermodel
//!   search: `O,D ⊨ q(ā)` iff no model of `D` and `O` refutes `q(ā)`; the
//!   engine searches models extending `D` by at most `k` fresh elements,
//!   which is sound for "not certain" verdicts (it exhibits a countermodel)
//!   and complete up to the bound (GF has the finite-model property, and
//!   the paper's constructions need only small neighbourhoods),
//! * [`chase`] — the deterministic and the disjunctive chase for
//!   positive-existential uGF ontologies; terminates with materializations
//!   (universal models) when the ontology is materializable and the chase
//!   is bounded,
//! * [`materialize`] — materializability testing via the disjunction
//!   property (Theorem 17 of the appendix),
//! * [`unravel`] — the uGF- and uGC₂-unravellings of §4 to a given radius,
//!   with the `e↑` projection homomorphism,
//! * [`rollup`] — compiling tree-shaped queries (ELIQs/rAQs) into openGF
//!   formulas, reducing rAQ certainty to formula certainty,
//! * [`decompose`] — connected-component decomposition of CQs (the simple
//!   core of Theorem 4's squid machinery).

#![warn(missing_docs)]

pub mod certain;
pub mod chase;
pub mod decompose;
pub mod ground;
pub mod materialize;
pub mod rollup;
pub mod sat;
pub mod unravel;

pub use certain::{CertainEngine, CertainOutcome};
pub use chase::{ChaseConfig, ChaseError, ChaseResult};
