//! Certain answers and consistency by bounded countermodel search.
//!
//! `O,D ⊨ q(ā)` iff every model of `D` and `O` satisfies `q(ā)` (§2). The
//! engine decides this by searching for a *countermodel*: a model of `D`
//! and `O` refuting `q(ā)`, over domains extending `dom(D)` by
//! `0, 1, …, max_fresh` fresh labelled nulls.
//!
//! * A found countermodel is definitive: the answer is **not** certain.
//! * If no countermodel exists up to the bound, the engine reports
//!   [`CertainOutcome::Certain`]. The guarded fragment has the finite
//!   model property and the constructions in the paper only require small
//!   models, so with an adequate bound this is exact; the bound used is
//!   recorded in the outcome for honesty.
//!
//! The same machinery decides consistency (no query) and *certainty of a
//! disjunction* of queries — the primitive behind materializability
//! testing (Theorem 17: materializable ⇔ the disjunction property holds).

use crate::ground::{domain_with_fresh, Grounder};
use gomq_core::{Instance, Interpretation, Term, Ucq, Vocab};
use gomq_logic::GfOntology;
use std::collections::BTreeSet;

/// Outcome of a certain-answer check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertainOutcome {
    /// No countermodel with at most `bound` fresh elements exists.
    Certain {
        /// The fresh-element bound that was exhausted.
        bound: usize,
    },
    /// A countermodel was found; the tuple is not a certain answer.
    NotCertain(Box<Interpretation>),
}

impl CertainOutcome {
    /// Whether the outcome is `Certain`.
    pub fn is_certain(&self) -> bool {
        matches!(self, CertainOutcome::Certain { .. })
    }
}

/// Consistency verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// A model with at most `max_fresh` fresh elements exists.
    Consistent(Box<Interpretation>),
    /// No model within the bound.
    InconsistentWithinBound {
        /// The exhausted bound.
        bound: usize,
    },
}

impl Consistency {
    /// Whether a model was found.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent(_))
    }
}

/// The bounded countermodel-search engine.
///
/// ```
/// use gomq_core::{Vocab, parse::{parse_instance, parse_ucq}};
/// use gomq_dl::{parser::parse_ontology, translate::to_gf};
/// use gomq_reasoning::CertainEngine;
///
/// let mut vocab = Vocab::new();
/// let dl = parse_ontology("Manager sub Employee\n", &mut vocab).unwrap();
/// let onto = to_gf(&dl);
/// let data = parse_instance("Manager(ada)\n", &mut vocab).unwrap();
/// let query = parse_ucq("q(?x) :- Employee(?x)\n", &mut vocab).unwrap();
///
/// let engine = CertainEngine::new(2);
/// let answers = engine.certain_answers(&onto, &data, &query, &mut vocab);
/// assert_eq!(answers.len(), 1); // ada is certainly an Employee
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CertainEngine {
    /// Maximum number of fresh elements to add to the domain.
    pub max_fresh: usize,
}

impl Default for CertainEngine {
    fn default() -> Self {
        CertainEngine { max_fresh: 3 }
    }
}

impl CertainEngine {
    /// Creates an engine with the given fresh-element bound.
    pub fn new(max_fresh: usize) -> Self {
        CertainEngine { max_fresh }
    }

    /// Searches for a model of `D` and `O` (consistency of `D` w.r.t. `O`).
    pub fn consistency(&self, o: &GfOntology, d: &Instance, vocab: &mut Vocab) -> Consistency {
        for k in 0..=self.max_fresh {
            let dom = domain_with_fresh(d, k, vocab);
            let mut g = Grounder::new(dom);
            g.assert_instance(d);
            g.assert_ontology(o);
            if let Some(m) = g.solve() {
                return Consistency::Consistent(Box::new(m));
            }
        }
        Consistency::InconsistentWithinBound {
            bound: self.max_fresh,
        }
    }

    /// Decides whether `ā` is a certain answer to the UCQ `q` on `D`
    /// given `O`: searches for a model of `D` and `O` with `¬q(ā)`.
    pub fn certain(
        &self,
        o: &GfOntology,
        d: &Instance,
        q: &Ucq,
        tuple: &[Term],
        vocab: &mut Vocab,
    ) -> CertainOutcome {
        self.certain_disjunction(o, d, &[(q.clone(), tuple.to_vec())], vocab)
    }

    /// Decides whether the *disjunction* `⋁ᵢ qᵢ(āᵢ)` is certain: searches
    /// for a single model refuting every disjunct simultaneously.
    ///
    /// This is the primitive of the disjunction property (appendix
    /// Theorem 17): `O` is materializable iff certainty of a disjunction
    /// always implies certainty of some disjunct.
    pub fn certain_disjunction(
        &self,
        o: &GfOntology,
        d: &Instance,
        queries: &[(Ucq, Vec<Term>)],
        vocab: &mut Vocab,
    ) -> CertainOutcome {
        for k in 0..=self.max_fresh {
            let dom = domain_with_fresh(d, k, vocab);
            let mut g = Grounder::new(dom);
            g.assert_instance(d);
            g.assert_ontology(o);
            for (q, tuple) in queries {
                let l = g.ucq_lit(q, tuple);
                g.assert_lit(l.negate());
            }
            if let Some(m) = g.solve() {
                return CertainOutcome::NotCertain(Box::new(m));
            }
        }
        CertainOutcome::Certain {
            bound: self.max_fresh,
        }
    }

    /// Decides whether a unary GF/GC₂ formula `φ(x)` is certain at `term`:
    /// searches for a model of `D` and `O` with `¬φ(term)`. This extends
    /// certain answers beyond UCQs — the paper's marker formulas
    /// (`(= 1 P)`, `∃≥2y R(x,y)`, …) are of this shape.
    pub fn certain_formula(
        &self,
        o: &GfOntology,
        d: &Instance,
        phi: &gomq_logic::Formula,
        var: gomq_logic::LVar,
        term: Term,
        vocab: &mut Vocab,
    ) -> CertainOutcome {
        for k in 0..=self.max_fresh {
            let dom = domain_with_fresh(d, k, vocab);
            let mut g = Grounder::new(dom);
            g.assert_instance(d);
            g.assert_ontology(o);
            let mut asg = gomq_logic::eval::Assignment::new();
            asg.insert(var, term);
            let l = g.formula_lit(phi, &asg);
            g.assert_lit(l.negate());
            if let Some(m) = g.solve() {
                return CertainOutcome::NotCertain(Box::new(m));
            }
        }
        CertainOutcome::Certain {
            bound: self.max_fresh,
        }
    }

    /// All certain answers to `q` over tuples of constants from `dom(D)`.
    pub fn certain_answers(
        &self,
        o: &GfOntology,
        d: &Instance,
        q: &Ucq,
        vocab: &mut Vocab,
    ) -> BTreeSet<Vec<Term>> {
        let dom: Vec<Term> = d.dom().into_iter().collect();
        let arity = q.arity();
        let mut out = BTreeSet::new();
        let mut idx = vec![0usize; arity];
        if arity == 0 {
            if self.certain(o, d, q, &[], vocab).is_certain() {
                out.insert(Vec::new());
            }
            return out;
        }
        loop {
            let tuple: Vec<Term> = idx.iter().map(|&i| dom[i]).collect();
            if self.certain(o, d, q, &tuple, vocab).is_certain() {
                out.insert(tuple);
            }
            let mut j = 0;
            loop {
                idx[j] += 1;
                if idx[j] < dom.len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
                if j == arity {
                    return out;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::query::CqBuilder;
    use gomq_core::Fact;
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    use gomq_logic::{Formula, Guard, LVar, UgfSentence};

    /// O₂ = { Hand ⊑ ∃hasFinger.Thumb }.
    fn o2(v: &mut Vocab) -> GfOntology {
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf = Role::new(v.rel("hasFinger", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(hand),
            Concept::Exists(hf, Box::new(Concept::Name(thumb))),
        );
        to_gf(&o)
    }

    #[test]
    fn certain_atomic_answer_via_chain() {
        // O = { ∀xy(R(x,y) → (A(x) → A(y))) }, D = R-path with A at start:
        // A propagates to the end — a classically certain answer.
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let (x, y) = (LVar(0), LVar(1));
        let o = GfOntology::from_ugf(vec![UgfSentence::new(
            vec![x, y],
            Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            Formula::implies(Formula::unary(a, x), Formula::unary(a, y)),
            vec!["x".into(), "y".into()],
        )]);
        let c0 = v.constant("c0");
        let c1 = v.constant("c1");
        let c2 = v.constant("c2");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c0]));
        d.insert(Fact::consts(r, &[c0, c1]));
        d.insert(Fact::consts(r, &[c1, c2]));
        let mut b = CqBuilder::new();
        let qx = b.var("x");
        b.atom(a, &[qx]);
        let q = Ucq::from_cq(b.build(vec![qx]));
        let engine = CertainEngine::new(2);
        let ans = engine.certain_answers(&o, &d, &q, &mut v);
        let expected: BTreeSet<Vec<Term>> = [c0, c1, c2]
            .into_iter()
            .map(|c| vec![Term::Const(c)])
            .collect();
        assert_eq!(ans, expected);
    }

    #[test]
    fn existential_witness_is_not_a_named_answer() {
        // O₂, D = {Hand(h)}: "h has a finger that is a Thumb" is certain as
        // a Boolean query but Thumb(x) has no certain *named* answer.
        let mut v = Vocab::new();
        let o = o2(&mut v);
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf = v.rel("hasFinger", 2);
        let h = v.constant("h");
        let mut d = Instance::new();
        d.insert(Fact::consts(hand, &[h]));
        let engine = CertainEngine::new(2);
        // Boolean: ∃x∃y hasFinger(x,y) ∧ Thumb(y).
        let mut b = CqBuilder::new();
        let qx = b.var("x");
        let qy = b.var("y");
        b.atom(hf, &[qx, qy]).atom(thumb, &[qy]);
        let q_bool = Ucq::from_cq(b.build(vec![]));
        assert!(engine.certain(&o, &d, &q_bool, &[], &mut v).is_certain());
        // Named: Thumb(x) has no certain answer among constants.
        let mut b2 = CqBuilder::new();
        let qx2 = b2.var("x");
        b2.atom(thumb, &[qx2]);
        let q_named = Ucq::from_cq(b2.build(vec![qx2]));
        assert!(engine.certain_answers(&o, &d, &q_named, &mut v).is_empty());
    }

    #[test]
    fn hand_finger_union_disjunction_property_fails() {
        // The paper's introduction: O₁ ∪ O₂ with a hand that already has 5
        // fingers. The thumb must be one of them, but no single finger is
        // certainly a thumb: the disjunction is certain, no disjunct is.
        let mut v = Vocab::new();
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf_rel = v.rel("hasFinger", 2);
        let hf = Role::new(hf_rel);
        let mut dl = DlOntology::new();
        // O₁: a hand has exactly 5 fingers.
        dl.sub(Concept::Name(hand), Concept::exactly(5, hf, Concept::Top));
        // O₂: a hand has a thumb finger.
        dl.sub(
            Concept::Name(hand),
            Concept::Exists(hf, Box::new(Concept::Name(thumb))),
        );
        let o = to_gf(&dl);
        let h = v.constant("h");
        let mut d = Instance::new();
        d.insert(Fact::consts(hand, &[h]));
        let fingers: Vec<_> = (0..5).map(|i| v.constant(&format!("f{i}"))).collect();
        for &f in &fingers {
            d.insert(Fact::consts(hf_rel, &[h, f]));
        }
        let engine = CertainEngine::new(1);
        // Thumb(fᵢ) is not certain for any single finger…
        let mut b = CqBuilder::new();
        let qx = b.var("x");
        b.atom(thumb, &[qx]);
        let q = Ucq::from_cq(b.build(vec![qx]));
        let queries: Vec<(Ucq, Vec<Term>)> = fingers
            .iter()
            .map(|&f| (q.clone(), vec![Term::Const(f)]))
            .collect();
        for (qi, ti) in &queries {
            assert!(
                !engine.certain(&o, &d, qi, ti, &mut v).is_certain(),
                "no individual finger is certainly a thumb"
            );
        }
        // …but the disjunction over the five fingers is certain.
        assert!(engine
            .certain_disjunction(&o, &d, &queries, &mut v)
            .is_certain());
    }

    #[test]
    fn consistency_detects_clash() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let x = LVar(0);
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::Not(Box::new(Formula::unary(a, x))),
            vec!["x".into()],
        )]);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let engine = CertainEngine::new(1);
        assert!(!engine.consistency(&o, &d, &mut v).is_consistent());
        let mut d2 = Instance::new();
        let b = v.rel("B", 1);
        d2.insert(Fact::consts(b, &[c]));
        assert!(engine.consistency(&o, &d2, &mut v).is_consistent());
    }

    #[test]
    fn inconsistent_instance_makes_everything_certain() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let n = v.rel("N", 1);
        let x = LVar(0);
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::Not(Box::new(Formula::unary(a, x))),
            vec!["x".into()],
        )]);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let mut b = CqBuilder::new();
        let qx = b.var("x");
        b.atom(n, &[qx]);
        let q = Ucq::from_cq(b.build(vec![qx]));
        let engine = CertainEngine::new(1);
        assert!(engine
            .certain(&o, &d, &q, &[Term::Const(c)], &mut v)
            .is_certain());
    }
}
