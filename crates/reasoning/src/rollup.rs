//! Rolling up tree-shaped queries into openGF formulas.
//!
//! A tree-shaped CQ with one answer variable (an ELIQ, the binary-
//! signature special case of the paper's rAQs) is equivalent to an
//! openGF formula with one free variable: each child subtree becomes a
//! guarded existential. Combined with
//! [`crate::CertainEngine::certain_formula`], this reduces rAQ certain
//! answers to "concept-style" certainty — the paper's standard rolling-up
//! technique.

use gomq_core::{Cq, VarOrConst};
use gomq_logic::{Formula, Guard, LVar};
use std::collections::BTreeSet;

/// Rolling-up failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollupError {
    /// The query has no single answer variable.
    NotUnary,
    /// An atom has arity > 2 or mentions constants.
    UnsupportedAtom,
    /// The query graph is not a tree rooted at the answer variable.
    NotTree,
}

impl std::fmt::Display for RollupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollupError::NotUnary => write!(f, "query must have exactly one answer variable"),
            RollupError::UnsupportedAtom => {
                write!(f, "atoms must be unary or binary over variables")
            }
            RollupError::NotTree => write!(f, "query graph must be a tree"),
        }
    }
}

impl std::error::Error for RollupError {}

/// Rolls a tree-shaped unary CQ up into an openGF formula `φ(x)` with
/// free variable `LVar(0)`, such that for all interpretations `A` and
/// elements `a`: `A ⊨ q(a)` iff `A ⊨ φ(a)`.
///
/// The formula re-uses variables along a two-variable alternation only
/// when the tree is a path; in general each level introduces the next
/// `LVar`, bounded by the tree depth + 1.
pub fn rollup(q: &Cq) -> Result<Formula, RollupError> {
    let [root] = q.answer_vars.as_slice() else {
        return Err(RollupError::NotUnary);
    };
    // Collect edges and unary labels.
    struct EdgeInfo {
        rel: gomq_core::RelId,
        from: gomq_core::query::Var,
        to: gomq_core::query::Var,
    }
    let mut edges: Vec<EdgeInfo> = Vec::new();
    let mut unary: Vec<(gomq_core::RelId, gomq_core::query::Var)> = Vec::new();
    for atom in &q.atoms {
        let vars: Result<Vec<gomq_core::query::Var>, RollupError> = atom
            .args
            .iter()
            .map(|a| match a {
                VarOrConst::Var(v) => Ok(*v),
                VarOrConst::Const(_) => Err(RollupError::UnsupportedAtom),
            })
            .collect();
        let vars = vars?;
        match vars.as_slice() {
            [v] => unary.push((atom.rel, *v)),
            [v, w] => {
                if v == w {
                    return Err(RollupError::NotTree); // self-loop
                }
                edges.push(EdgeInfo {
                    rel: atom.rel,
                    from: *v,
                    to: *w,
                });
            }
            _ => return Err(RollupError::UnsupportedAtom),
        }
    }
    // Check the collapsed graph is a tree rooted at the answer variable.
    let all_vars: BTreeSet<_> = q.all_vars();
    let mut visited: BTreeSet<gomq_core::query::Var> = BTreeSet::new();
    // Recursive build.
    fn build(
        v: gomq_core::query::Var,
        parent: Option<gomq_core::query::Var>,
        depth: u32,
        edges: &[EdgeInfo],
        unary: &[(gomq_core::RelId, gomq_core::query::Var)],
        visited: &mut BTreeSet<gomq_core::query::Var>,
    ) -> Result<Formula, RollupError> {
        visited.insert(v);
        let me = LVar(depth);
        let mut conjuncts: Vec<Formula> = unary
            .iter()
            .filter(|(_, w)| *w == v)
            .map(|(rel, _)| Formula::unary(*rel, me))
            .collect();
        // Group child edges by neighbour variable.
        let mut neighbours: Vec<gomq_core::query::Var> = Vec::new();
        for e in edges {
            if e.from == v && Some(e.to) != parent && !neighbours.contains(&e.to) {
                neighbours.push(e.to);
            }
            if e.to == v && Some(e.from) != parent && !neighbours.contains(&e.from) {
                neighbours.push(e.from);
            }
        }
        for w in neighbours {
            if visited.contains(&w) {
                return Err(RollupError::NotTree); // cycle
            }
            let child_var = LVar(depth + 1);
            // All atoms between v and w; the first becomes the guard.
            let mut between: Vec<Formula> = Vec::new();
            let mut guard: Option<Guard> = None;
            for e in edges {
                let (is_between, args) = if e.from == v && e.to == w {
                    (true, vec![me, child_var])
                } else if e.from == w && e.to == v {
                    (true, vec![child_var, me])
                } else {
                    (false, Vec::new())
                };
                if is_between {
                    if guard.is_none() {
                        guard = Some(Guard::Atom { rel: e.rel, args });
                    } else {
                        between.push(Formula::Atom { rel: e.rel, args });
                    }
                }
            }
            let sub = build(w, Some(v), depth + 1, edges, unary, visited)?;
            between.push(sub);
            conjuncts.push(Formula::Exists {
                qvars: vec![child_var],
                guard: guard.expect("at least one edge to the child"),
                body: Box::new(if between.len() == 1 {
                    between.pop().expect("non-empty")
                } else {
                    Formula::And(between)
                }),
            });
        }
        Ok(match conjuncts.len() {
            0 => Formula::True,
            1 => conjuncts.pop().expect("non-empty"),
            _ => Formula::And(conjuncts),
        })
    }
    let formula = build(*root, None, 0, &edges, &unary, &mut visited)?;
    if visited.len() != all_vars.len() {
        return Err(RollupError::NotTree); // disconnected
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certain::CertainEngine;
    use gomq_core::query::CqBuilder;
    use gomq_core::{Fact, Instance, Ucq, Vocab};
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    use gomq_logic::eval::{eval, Assignment};

    #[test]
    fn path_query_rolls_up() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a_rel = v.rel("A", 1);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(r, &[x, y]).atom(r, &[y, z]).atom(a_rel, &[z]);
        let q = b.build(vec![x]);
        let phi = rollup(&q).expect("tree query");
        assert!(phi.is_open_gf());
        assert!(phi.is_well_guarded());
        // Evaluate on a concrete instance and compare with the CQ.
        let c0 = v.constant("c0");
        let c1 = v.constant("c1");
        let c2 = v.constant("c2");
        let d = Instance::from_facts(vec![
            Fact::consts(r, &[c0, c1]),
            Fact::consts(r, &[c1, c2]),
            Fact::consts(a_rel, &[c2]),
        ]);
        for elem in d.dom() {
            let mut asg = Assignment::new();
            asg.insert(LVar(0), elem);
            assert_eq!(
                eval(&phi, &d, &asg),
                q.holds(&d, &[elem]),
                "agreement at {elem:?}"
            );
        }
    }

    #[test]
    fn branching_and_inverse_edges() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let a_rel = v.rel("A", 1);
        // q(x) ← R(x,y) ∧ S(z,x) ∧ A(z): one child via R, one parent via S.
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(r, &[x, y]).atom(s, &[z, x]).atom(a_rel, &[z]);
        let q = b.build(vec![x]);
        let phi = rollup(&q).expect("tree query");
        let c0 = v.constant("d0");
        let c1 = v.constant("d1");
        let c2 = v.constant("d2");
        let d = Instance::from_facts(vec![
            Fact::consts(r, &[c0, c1]),
            Fact::consts(s, &[c2, c0]),
            Fact::consts(a_rel, &[c2]),
        ]);
        for elem in d.dom() {
            let mut asg = Assignment::new();
            asg.insert(LVar(0), elem);
            assert_eq!(eval(&phi, &d, &asg), q.holds(&d, &[elem]));
        }
    }

    #[test]
    fn cyclic_query_is_rejected() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(r, &[x, y]).atom(r, &[y, z]).atom(r, &[z, x]);
        let q = b.build(vec![x]);
        assert_eq!(rollup(&q), Err(RollupError::NotTree));
    }

    #[test]
    fn multi_edge_between_same_pair() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(r, &[x, y]).atom(s, &[x, y]);
        let q = b.build(vec![x]);
        let phi = rollup(&q).expect("multi-edges are fine");
        let c0 = v.constant("m0");
        let c1 = v.constant("m1");
        let both =
            Instance::from_facts(vec![Fact::consts(r, &[c0, c1]), Fact::consts(s, &[c0, c1])]);
        let only_r = Instance::from_facts(vec![Fact::consts(r, &[c0, c1])]);
        let mut asg = Assignment::new();
        asg.insert(LVar(0), gomq_core::Term::Const(c0));
        assert!(eval(&phi, &both, &asg));
        assert!(!eval(&phi, &only_r, &asg));
    }

    #[test]
    fn rolled_up_certainty_matches_query_certainty() {
        // O₂ = Hand ⊑ ∃hasFinger.Thumb; q(x) ← hasFinger(x,y) ∧ Thumb(y).
        let mut v = Vocab::new();
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf = v.rel("hasFinger", 2);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(hand),
            Concept::Exists(Role::new(hf), Box::new(Concept::Name(thumb))),
        );
        let o = to_gf(&dl);
        let h = v.constant("hq");
        let d = Instance::from_facts(vec![Fact::consts(hand, &[h])]);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(hf, &[x, y]).atom(thumb, &[y]);
        let q = b.build(vec![x]);
        let phi = rollup(&q).expect("tree");
        let engine = CertainEngine::new(2);
        let t = gomq_core::Term::Const(h);
        let via_query = engine
            .certain(&o, &d, &Ucq::from_cq(q), &[t], &mut v)
            .is_certain();
        let via_formula = engine
            .certain_formula(&o, &d, &phi, LVar(0), t, &mut v)
            .is_certain();
        assert!(via_query && via_formula, "both routes certain");
    }
}
