//! Materializability testing via the disjunction property.
//!
//! By appendix Theorem 17, an ontology `O` is (U)CQ-materializable iff it
//! has the *disjunction property*: whenever `O,D ⊨ q₁(d̄₁) ∨ … ∨ qₙ(d̄ₙ)`,
//! some disjunct is already certain. Non-materializability is therefore
//! *witnessed* by an instance `D` and queries whose disjunction is certain
//! while no disjunct is — and by Theorem 3, such a witness implies that
//! query evaluation w.r.t. `O` is coNP-hard (for uGF(=)/uGC₂(=)
//! ontologies, which are invariant under disjoint unions).
//!
//! Deciding materializability outright is a meta problem (undecidable in
//! general, §7); this module provides witness *search* over caller-supplied
//! or generated candidate instances and queries.

use crate::certain::{CertainEngine, CertainOutcome};
use gomq_core::query::CqBuilder;
use gomq_core::{Instance, Term, Ucq, Vocab};
use gomq_logic::GfOntology;

/// A witness that the disjunction property fails on an instance.
#[derive(Clone, Debug)]
pub struct DisjunctionWitness {
    /// The instance.
    pub instance: Instance,
    /// The disjuncts (query, answer tuple), none of which is certain…
    pub queries: Vec<(Ucq, Vec<Term>)>,
}

/// Searches for a disjunction-property violation of `O` on the single
/// instance `D` over the given candidate queries: is some subset of
/// non-certain disjuncts jointly certain?
///
/// Testing the full set of non-certain disjuncts suffices: if the
/// disjunction over all candidates is refutable in one model, so is every
/// subset; conversely a certain disjunction over any subset makes the full
/// disjunction certain.
pub fn find_disjunction_witness(
    o: &GfOntology,
    d: &Instance,
    candidates: &[(Ucq, Vec<Term>)],
    engine: &CertainEngine,
    vocab: &mut Vocab,
) -> Option<DisjunctionWitness> {
    // Keep only candidates that are not individually certain.
    let open: Vec<(Ucq, Vec<Term>)> = candidates
        .iter()
        .filter(|(q, t)| !engine.certain(o, d, q, t, vocab).is_certain())
        .cloned()
        .collect();
    if open.len() < 2 {
        return None;
    }
    match engine.certain_disjunction(o, d, &open, vocab) {
        CertainOutcome::Certain { .. } => Some(DisjunctionWitness {
            instance: d.clone(),
            queries: open,
        }),
        CertainOutcome::NotCertain(_) => None,
    }
}

/// Whether `O` is materializable *on the given instance* w.r.t. the given
/// candidate query family: no disjunction-property violation is found.
pub fn materializable_on(
    o: &GfOntology,
    d: &Instance,
    candidates: &[(Ucq, Vec<Term>)],
    engine: &CertainEngine,
    vocab: &mut Vocab,
) -> bool {
    find_disjunction_witness(o, d, candidates, engine, vocab).is_none()
}

/// Generates the atomic candidate queries `A(x̄)` for every relation of
/// the signature, instantiated at every tuple over `dom(D)` (arity ≤ 2 to
/// keep the candidate family small; this covers the paper's examples,
/// whose witnesses are atomic).
pub fn atomic_candidates(o: &GfOntology, d: &Instance, vocab: &Vocab) -> Vec<(Ucq, Vec<Term>)> {
    let dom: Vec<Term> = d.dom().into_iter().collect();
    let mut out = Vec::new();
    for rel in o.sig() {
        let arity = vocab.arity(rel);
        if arity == 0 || arity > 2 {
            continue;
        }
        let mut b = CqBuilder::new();
        let vars: Vec<_> = (0..arity).map(|i| b.var(&format!("x{i}"))).collect();
        b.atom(rel, &vars);
        let q = Ucq::from_cq(b.build(vars.clone()));
        // All tuples over dom(D).
        let mut idx = vec![0usize; arity];
        loop {
            let tuple: Vec<Term> = idx.iter().map(|&i| dom[i]).collect();
            out.push((q.clone(), tuple));
            let mut j = 0;
            loop {
                idx[j] += 1;
                if idx[j] < dom.len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
                if j == arity {
                    break;
                }
            }
            if j == arity {
                break;
            }
        }
    }
    out
}

/// Checks whether `b` is a Q-materialization of `O` and `D` w.r.t. the
/// given query family (Definition 2): `b` must be a model of `D` and `O`,
/// and for every `(q, ā)` in the family, `b ⊨ q(ā)` iff `ā` is a certain
/// answer.
pub fn is_materialization(
    b: &gomq_core::Interpretation,
    o: &GfOntology,
    d: &Instance,
    queries: &[(Ucq, Vec<Term>)],
    engine: &CertainEngine,
    vocab: &mut Vocab,
) -> bool {
    if !b.models_instance(d) || !gomq_logic::eval::satisfies_ontology(b, o) {
        return false;
    }
    queries.iter().all(|(q, tuple)| {
        let in_b = q.holds(b, tuple);
        let certain = engine.certain(o, d, q, tuple, vocab).is_certain();
        in_b == certain
    })
}

/// Boolean candidate queries `∃x̄ R(x̄)` for every relation of the
/// signature — these catch disjunction-property failures at anonymous
/// elements (e.g. the paper's Example 7, where the entailed disjunction
/// `R′(x,y) ∨ S′(x,y)` lives entirely in the anonymous part).
pub fn boolean_candidates(o: &GfOntology, vocab: &Vocab) -> Vec<(Ucq, Vec<Term>)> {
    let mut out = Vec::new();
    for rel in o.sig() {
        let arity = vocab.arity(rel);
        if arity == 0 || arity > 3 {
            continue;
        }
        let mut b = CqBuilder::new();
        let vars: Vec<_> = (0..arity).map(|i| b.var(&format!("x{i}"))).collect();
        b.atom(rel, &vars);
        out.push((Ucq::from_cq(b.build(vec![])), Vec::new()));
    }
    out
}

/// Depth-1 ELIQ candidates `q(x) ← R(x,y) [∧ A(y)]` and the inverse
/// direction, instantiated at every element of `dom(D)`.
pub fn eliq_candidates(o: &GfOntology, d: &Instance, vocab: &Vocab) -> Vec<(Ucq, Vec<Term>)> {
    let dom: Vec<Term> = d.dom().into_iter().collect();
    let unary: Vec<_> = o
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 1)
        .collect();
    let binary: Vec<_> = o
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 2)
        .collect();
    let mut queries: Vec<Ucq> = Vec::new();
    for &r in &binary {
        for fwd in [true, false] {
            // q(x) ← R(x,y) / R(y,x)
            let mut b = CqBuilder::new();
            let x = b.var("x");
            let y = b.var("y");
            if fwd {
                b.atom(r, &[x, y]);
            } else {
                b.atom(r, &[y, x]);
            }
            queries.push(Ucq::from_cq(b.build(vec![x])));
            for &a in &unary {
                let mut b = CqBuilder::new();
                let x = b.var("x");
                let y = b.var("y");
                if fwd {
                    b.atom(r, &[x, y]);
                } else {
                    b.atom(r, &[y, x]);
                }
                b.atom(a, &[y]);
                queries.push(Ucq::from_cq(b.build(vec![x])));
            }
        }
    }
    let mut out = Vec::new();
    for q in queries {
        for &t in &dom {
            out.push((q.clone(), vec![t]));
        }
    }
    out
}

/// The combined candidate family used by the meta decision procedures:
/// atomic + ELIQ + Boolean candidates.
pub fn standard_candidates(o: &GfOntology, d: &Instance, vocab: &Vocab) -> Vec<(Ucq, Vec<Term>)> {
    let mut out = atomic_candidates(o, d, vocab);
    out.extend(eliq_candidates(o, d, vocab));
    out.extend(boolean_candidates(o, vocab));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Fact;
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;

    fn hand_setup(v: &mut Vocab, n_fingers: usize) -> (GfOntology, GfOntology, Instance) {
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf_rel = v.rel("hasFinger", 2);
        let hf = Role::new(hf_rel);
        let mut dl1 = DlOntology::new();
        dl1.sub(
            Concept::Name(hand),
            Concept::exactly(n_fingers as u32, hf, Concept::Top),
        );
        let mut dl2 = DlOntology::new();
        dl2.sub(
            Concept::Name(hand),
            Concept::Exists(hf, Box::new(Concept::Name(thumb))),
        );
        let h = v.constant("h");
        let mut d = Instance::new();
        d.insert(Fact::consts(hand, &[h]));
        for i in 0..n_fingers {
            let f = v.constant(&format!("f{i}"));
            d.insert(Fact::consts(hf_rel, &[h, f]));
        }
        (to_gf(&dl1), to_gf(&dl2), d)
    }

    #[test]
    fn o1_and_o2_separately_pass_o1_union_o2_fails() {
        let mut v = Vocab::new();
        // Three fingers keep the search space small; the phenomenon is the
        // same as with five.
        let (o1, o2, d) = hand_setup(&mut v, 3);
        let engine = CertainEngine::new(1);
        let candidates = atomic_candidates(&o1.union(&o2), &d, &v);
        assert!(materializable_on(&o1, &d, &candidates, &engine, &mut v));
        assert!(materializable_on(&o2, &d, &candidates, &engine, &mut v));
        let union = o1.union(&o2);
        let w = find_disjunction_witness(&union, &d, &candidates, &engine, &mut v)
            .expect("O1 ∪ O2 violates the disjunction property");
        assert!(w.queries.len() >= 3);
    }

    #[test]
    fn horn_ontology_is_materializable_on_instances() {
        use gomq_logic::{Formula, Guard, LVar, UgfSentence};
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a, x),
                Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::unary(b, y)),
                },
            ),
            vec!["x".into(), "y".into()],
        )]);
        let c = v.constant("c");
        let cc = v.constant("d");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        d.insert(Fact::consts(r, &[c, cc]));
        let engine = CertainEngine::new(2);
        let candidates = atomic_candidates(&o, &d, &v);
        assert!(materializable_on(&o, &d, &candidates, &engine, &mut v));
    }

    #[test]
    fn disjunctive_ontology_fails_on_trigger_instance() {
        use gomq_logic::{Formula, LVar, UgfSentence};
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c_rel = v.rel("C", 1);
        let x = LVar(0);
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a, x),
                Formula::Or(vec![Formula::unary(b, x), Formula::unary(c_rel, x)]),
            ),
            vec!["x".into()],
        )]);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let engine = CertainEngine::new(1);
        let candidates = atomic_candidates(&o, &d, &v);
        let w = find_disjunction_witness(&o, &d, &candidates, &engine, &mut v)
            .expect("A ⊑ B ⊔ C is not materializable");
        assert_eq!(w.queries.len(), 2);
    }
}
