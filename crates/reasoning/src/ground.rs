//! Grounding GF(=)/GC₂ ontologies and queries over a finite domain.
//!
//! A model of an ontology `O` and instance `D` whose domain is a fixed
//! finite set of terms is exactly a truth assignment to the propositional
//! variables "`fact f` holds" satisfying the grounding of `O`'s sentences,
//! the positivity of `D`'s facts, and the functionality constraints. The
//! [`Grounder`] performs Tseitin conversion into CNF for the [`crate::sat`]
//! solver; counting quantifiers use a sequential-counter ladder.

use crate::sat::{Cnf, Lit};
use gomq_core::{Fact, Instance, Interpretation, Term, Ucq, Vocab};
use gomq_logic::eval::Assignment;
use gomq_logic::{Formula, GfOntology, Guard, LVar};
use std::collections::BTreeMap;

/// Grounds formulas over a fixed domain into a CNF.
pub struct Grounder {
    domain: Vec<Term>,
    cnf: Cnf,
    fact_vars: BTreeMap<Fact, u32>,
    true_lit: Lit,
}

impl Grounder {
    /// Creates a grounder over the given (non-empty, duplicate-free)
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics on an empty domain (interpretations are non-empty).
    pub fn new(domain: Vec<Term>) -> Self {
        assert!(!domain.is_empty(), "domain must be non-empty");
        let mut cnf = Cnf::new();
        let t = cnf.fresh_var();
        cnf.add_unit(Lit::pos(t));
        Grounder {
            domain,
            cnf,
            fact_vars: BTreeMap::new(),
            true_lit: Lit::pos(t),
        }
    }

    /// The domain being grounded over.
    pub fn domain(&self) -> &[Term] {
        &self.domain
    }

    fn false_lit(&self) -> Lit {
        self.true_lit.negate()
    }

    /// The propositional variable of a ground fact.
    pub fn fact_lit(&mut self, fact: Fact) -> Lit {
        if let Some(&v) = self.fact_vars.get(&fact) {
            return Lit::pos(v);
        }
        let v = self.cnf.fresh_var();
        self.fact_vars.insert(fact, v);
        Lit::pos(v)
    }

    /// Tseitin definition `v ↔ ⋀ lits`.
    fn and_of(&mut self, lits: Vec<Lit>) -> Lit {
        if lits.is_empty() {
            return self.true_lit;
        }
        if lits.len() == 1 {
            return lits[0];
        }
        let v = Lit::pos(self.cnf.fresh_var());
        for &l in &lits {
            self.cnf.add_clause(vec![v.negate(), l]);
        }
        let mut big: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
        big.push(v);
        self.cnf.add_clause(big);
        v
    }

    /// Tseitin definition `v ↔ ⋁ lits`.
    fn or_of(&mut self, lits: Vec<Lit>) -> Lit {
        if lits.is_empty() {
            return self.false_lit();
        }
        if lits.len() == 1 {
            return lits[0];
        }
        let v = Lit::pos(self.cnf.fresh_var());
        for &l in &lits {
            self.cnf.add_clause(vec![v, l.negate()]);
        }
        let mut big = lits;
        big.push(v.negate());
        self.cnf.add_clause(big);
        v
    }

    /// "At least `n` of `lits`" via a sequential-counter ladder
    /// (equivalence-preserving).
    fn at_least(&mut self, n: u32, lits: Vec<Lit>) -> Lit {
        if n == 0 {
            return self.true_lit;
        }
        if (lits.len() as u32) < n {
            return self.false_lit();
        }
        // prev[j] = at least j true among the first i literals.
        let n = n as usize;
        let mut prev: Vec<Lit> = vec![self.true_lit];
        prev.extend(std::iter::repeat_n(self.false_lit(), n));
        for &w in &lits {
            let mut cur = vec![self.true_lit];
            for j in 1..=n {
                let carry = self.and_of(vec![prev[j - 1], w]);
                let at_least_j = self.or_of(vec![prev[j], carry]);
                cur.push(at_least_j);
            }
            prev = cur;
        }
        prev[n]
    }

    /// Grounds a formula under an assignment into a literal.
    pub fn formula_lit(&mut self, f: &Formula, asg: &Assignment) -> Lit {
        match f {
            Formula::True => self.true_lit,
            Formula::False => self.false_lit(),
            Formula::Atom { rel, args } => {
                let fact = Fact::new(*rel, args.iter().map(|v| asg[v]).collect());
                self.fact_lit(fact)
            }
            Formula::Eq(x, y) => {
                if asg[x] == asg[y] {
                    self.true_lit
                } else {
                    self.false_lit()
                }
            }
            Formula::Not(g) => self.formula_lit(g, asg).negate(),
            Formula::And(fs) => {
                let lits = fs.iter().map(|g| self.formula_lit(g, asg)).collect();
                self.and_of(lits)
            }
            Formula::Or(fs) => {
                let lits = fs.iter().map(|g| self.formula_lit(g, asg)).collect();
                self.or_of(lits)
            }
            Formula::Forall { qvars, guard, body } => {
                let mut parts = Vec::new();
                self.for_assignments(qvars, asg, &mut |g, ext| {
                    let guard_lit = g.guard_lit(guard, ext);
                    let body_lit = g.formula_lit(body, ext);
                    parts.push(g.or_of(vec![guard_lit.negate(), body_lit]));
                });
                self.and_of(parts)
            }
            Formula::Exists { qvars, guard, body } => {
                let mut parts = Vec::new();
                self.for_assignments(qvars, asg, &mut |g, ext| {
                    let guard_lit = g.guard_lit(guard, ext);
                    let body_lit = g.formula_lit(body, ext);
                    parts.push(g.and_of(vec![guard_lit, body_lit]));
                });
                self.or_of(parts)
            }
            Formula::CountExists {
                n,
                qvar,
                guard,
                body,
            } => {
                let mut witnesses = Vec::new();
                self.for_assignments(&[*qvar], asg, &mut |g, ext| {
                    let guard_lit = g.guard_lit(guard, ext);
                    let body_lit = g.formula_lit(body, ext);
                    witnesses.push(g.and_of(vec![guard_lit, body_lit]));
                });
                self.at_least(*n, witnesses)
            }
        }
    }

    fn guard_lit(&mut self, guard: &Guard, asg: &Assignment) -> Lit {
        match guard {
            Guard::Atom { rel, args } => {
                let fact = Fact::new(*rel, args.iter().map(|v| asg[v]).collect());
                self.fact_lit(fact)
            }
            Guard::Eq(x, y) => {
                if asg[x] == asg[y] {
                    self.true_lit
                } else {
                    self.false_lit()
                }
            }
        }
    }

    /// Enumerates all assignments of `qvars` over the domain, extending
    /// `base` (quantified variables shadow outer bindings).
    fn for_assignments(
        &mut self,
        qvars: &[LVar],
        base: &Assignment,
        cb: &mut dyn FnMut(&mut Self, &Assignment),
    ) {
        let d = self.domain.clone();
        let k = qvars.len();
        if k == 0 {
            cb(self, base);
            return;
        }
        let mut idx = vec![0usize; k];
        loop {
            let mut ext = base.clone();
            for (q, &i) in qvars.iter().zip(idx.iter()) {
                ext.insert(*q, d[i]);
            }
            cb(self, &ext);
            // Increment the mixed-radix counter.
            let mut j = 0;
            loop {
                idx[j] += 1;
                if idx[j] < d.len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
                if j == k {
                    return;
                }
            }
        }
    }

    /// Asserts all sentences and functionality declarations of an ontology.
    pub fn assert_ontology(&mut self, o: &GfOntology) {
        for s in &o.ugf_sentences {
            let lit = self.formula_lit(&s.to_formula(), &Assignment::new());
            self.cnf.add_unit(lit);
        }
        for s in &o.other_sentences {
            let lit = self.formula_lit(&s.formula, &Assignment::new());
            self.cnf.add_unit(lit);
        }
        let domain = self.domain.clone();
        for &r in &o.functional {
            for &a in &domain {
                for (i, &b1) in domain.iter().enumerate() {
                    for &b2 in &domain[i + 1..] {
                        let l1 = self.fact_lit(Fact::new(r, vec![a, b1]));
                        let l2 = self.fact_lit(Fact::new(r, vec![a, b2]));
                        self.cnf.add_clause(vec![l1.negate(), l2.negate()]);
                    }
                }
            }
        }
        for &r in &o.transitive {
            for &a in &domain {
                for &b in &domain {
                    for &c in &domain {
                        let l1 = self.fact_lit(Fact::new(r, vec![a, b]));
                        let l2 = self.fact_lit(Fact::new(r, vec![b, c]));
                        let l3 = self.fact_lit(Fact::new(r, vec![a, c]));
                        self.cnf.add_clause(vec![l1.negate(), l2.negate(), l3]);
                    }
                }
            }
        }
        for &r in &o.inverse_functional {
            for &b in &domain {
                for (i, &a1) in domain.iter().enumerate() {
                    for &a2 in &domain[i + 1..] {
                        let l1 = self.fact_lit(Fact::new(r, vec![a1, b]));
                        let l2 = self.fact_lit(Fact::new(r, vec![a2, b]));
                        self.cnf.add_clause(vec![l1.negate(), l2.negate()]);
                    }
                }
            }
        }
    }

    /// Asserts that every fact of the instance holds (open-world: other
    /// facts remain free).
    pub fn assert_instance(&mut self, d: &Instance) {
        for f in d.iter() {
            let l = self.fact_lit(f.to_fact());
            self.cnf.add_unit(l);
        }
    }

    /// The literal for `q(ā)` (existential variables grounded over the
    /// domain, answer variables bound to `tuple`).
    pub fn ucq_lit(&mut self, q: &Ucq, tuple: &[Term]) -> Lit {
        let mut disjunct_lits = Vec::new();
        for cq in &q.disjuncts {
            let mut base = Assignment::new();
            let mut consistent = true;
            for (v, &t) in cq.answer_vars.iter().zip(tuple.iter()) {
                // Map CQ variables into logic variables by index.
                let lv = LVar(v.0);
                match base.get(&lv) {
                    Some(&prev) if prev != t => {
                        consistent = false;
                        break;
                    }
                    _ => {
                        base.insert(lv, t);
                    }
                }
            }
            if !consistent {
                continue;
            }
            let evars: Vec<LVar> = cq
                .all_vars()
                .into_iter()
                .filter(|v| !cq.answer_vars.contains(v))
                .map(|v| LVar(v.0))
                .collect();
            let mut matches = Vec::new();
            self.for_assignments(&evars, &base, &mut |g, ext| {
                let mut atom_lits = Vec::new();
                for atom in &cq.atoms {
                    let fact = Fact::new(
                        atom.rel,
                        atom.args
                            .iter()
                            .map(|arg| match arg {
                                gomq_core::VarOrConst::Var(v) => ext[&LVar(v.0)],
                                gomq_core::VarOrConst::Const(c) => Term::Const(*c),
                            })
                            .collect(),
                    );
                    atom_lits.push(g.fact_lit(fact));
                }
                matches.push(g.and_of(atom_lits));
            });
            disjunct_lits.push(self.or_of(matches));
        }
        self.or_of(disjunct_lits)
    }

    /// Asserts a literal.
    pub fn assert_lit(&mut self, l: Lit) {
        self.cnf.add_unit(l);
    }

    /// Solves the accumulated constraints; on success decodes the model
    /// into an interpretation (the set of true fact variables).
    pub fn solve(&self) -> Option<Interpretation> {
        let model = self.cnf.solve()?;
        let mut interp = Interpretation::new();
        for (fact, &v) in &self.fact_vars {
            if model[v as usize] {
                interp.insert(fact.clone());
            }
        }
        Some(interp)
    }

    /// Clause count (for diagnostics and benches).
    pub fn num_clauses(&self) -> usize {
        self.cnf.clauses.len()
    }
}

/// Convenience: the domain of `d` extended with `k` fresh nulls.
pub fn domain_with_fresh(d: &Instance, k: usize, vocab: &mut Vocab) -> Vec<Term> {
    let mut dom: Vec<Term> = d.dom().into_iter().collect();
    for _ in 0..k {
        dom.push(Term::Null(vocab.fresh_null()));
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::query::CqBuilder;
    use gomq_core::Cq;
    use gomq_logic::eval::satisfies_ontology;
    use gomq_logic::UgfSentence;

    /// O = { ∀x(A(x) → ∃y(R(x,y) ∧ B(y))) }.
    fn simple_ontology(v: &mut Vocab) -> GfOntology {
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a, x),
                Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::unary(b, y)),
                },
            ),
            vec!["x".into(), "y".into()],
        )])
    }

    #[test]
    fn grounding_finds_model_satisfying_ontology() {
        let mut v = Vocab::new();
        let o = simple_ontology(&mut v);
        let a_rel = v.rel("A", 1);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[c]));
        let dom = domain_with_fresh(&d, 1, &mut v);
        let mut g = Grounder::new(dom);
        g.assert_instance(&d);
        g.assert_ontology(&o);
        let m = g.solve().expect("satisfiable");
        assert!(m.models_instance(&d));
        assert!(satisfies_ontology(&m, &o));
    }

    #[test]
    fn no_fresh_elements_can_force_unsat_with_negation() {
        // O forces an R-successor in B, but we also forbid B everywhere and
        // give no fresh elements: with domain = {c}, either R(c,c)∧B(c)
        // (forbidden) or violation.
        let mut v = Vocab::new();
        let mut o = simple_ontology(&mut v);
        let b = v.rel("B", 1);
        let x = LVar(0);
        o.push(UgfSentence::forall_one(
            x,
            Formula::Not(Box::new(Formula::unary(b, x))),
            vec!["x".into()],
        ));
        let a_rel = v.rel("A", 1);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[c]));
        let dom = domain_with_fresh(&d, 0, &mut v);
        let mut g = Grounder::new(dom);
        g.assert_instance(&d);
        g.assert_ontology(&o);
        assert!(g.solve().is_none());
    }

    #[test]
    fn functionality_constraints_respected() {
        let mut v = Vocab::new();
        let r = v.rel("F", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(r, &[a, b]));
        d.insert(Fact::consts(r, &[a, c]));
        let mut o = GfOntology::new();
        o.declare_functional(r);
        let mut g = Grounder::new(d.dom().into_iter().collect());
        g.assert_instance(&d);
        g.assert_ontology(&o);
        assert!(g.solve().is_none());
    }

    #[test]
    fn counting_quantifier_grounding() {
        // ∀x(Hand(x) → ∃≥3 y hasF(x,y)) with 2 available fresh elements and
        // the hand itself: 3 distinct targets exist (h, n1, n2), so SAT.
        let mut v = Vocab::new();
        let hand = v.rel("Hand", 1);
        let hf = v.rel("hasF", 2);
        let (x, y) = (LVar(0), LVar(1));
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(hand, x),
                Formula::CountExists {
                    n: 3,
                    qvar: y,
                    guard: Guard::Atom {
                        rel: hf,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::True),
                },
            ),
            vec!["x".into(), "y".into()],
        )]);
        let h = v.constant("h");
        let mut d = Instance::new();
        d.insert(Fact::consts(hand, &[h]));
        // With 2 fresh nulls the domain has 3 elements: enough.
        let dom3 = domain_with_fresh(&d, 2, &mut v);
        let mut g3 = Grounder::new(dom3);
        g3.assert_instance(&d);
        g3.assert_ontology(&o);
        let m = g3.solve().expect("3 targets available");
        assert!(satisfies_ontology(&m, &o));
        // With only 1 fresh null (2 elements) it is unsatisfiable.
        let dom2 = domain_with_fresh(&d, 1, &mut v);
        let mut g2 = Grounder::new(dom2);
        g2.assert_instance(&d);
        g2.assert_ontology(&o);
        assert!(g2.solve().is_none());
    }

    #[test]
    fn query_literal_blocks_countermodels() {
        // With O = A ⊑ ∃R.B, D = {A(c)}: q(x) ← R(x,y) is certain at c?
        // No ontology forces R from c... actually it does: assert ¬q(c) and
        // expect UNSAT because every model needs an R-successor of c.
        let mut v = Vocab::new();
        let o = simple_ontology(&mut v);
        let a_rel = v.rel("A", 1);
        let r = v.rel("R", 2);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[c]));
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(r, &[x, y]);
        let q: Cq = b.build(vec![x]);
        let ucq = Ucq::from_cq(q);
        for k in 0..3 {
            let dom = domain_with_fresh(&d, k, &mut v);
            let mut g = Grounder::new(dom);
            g.assert_instance(&d);
            g.assert_ontology(&o);
            let ql = g.ucq_lit(&ucq, &[Term::Const(c)]);
            g.assert_lit(ql.negate());
            assert!(g.solve().is_none(), "no countermodel with {k} fresh");
        }
    }

    #[test]
    fn at_least_encoding_edge_cases() {
        let mut g = Grounder::new(vec![Term::Const(gomq_core::ConstId(0))]);
        // at_least(0, []) is true; at_least(1, []) is false.
        let t = g.at_least(0, vec![]);
        let f = g.at_least(1, vec![]);
        g.assert_lit(t);
        assert!(g.solve().is_some());
        g.assert_lit(f);
        assert!(g.solve().is_none());
    }
}
