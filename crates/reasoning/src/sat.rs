//! A small DPLL SAT solver.
//!
//! Used as the propositional substrate for bounded countermodel search:
//! the grounding of a GF ontology over a finite domain is a propositional
//! formula whose models are exactly the interpretations over that domain
//! satisfying the ontology. The solver implements DPLL with unit
//! propagation, pure-literal elimination at the root, and a
//! most-occurrences branching heuristic — ample for the clause counts
//! produced by the paper's constructions.

use std::fmt;

/// A propositional literal: variable index with sign. `Lit::pos(v)` is `v`,
/// `Lit::neg(v)` is `¬v`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is negative.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A CNF formula under construction.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// The clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Lit>>,
    num_vars: u32,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Adds a clause. An empty clause makes the formula unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        lits.sort();
        lits.dedup();
        // Drop tautological clauses (contain v and ¬v).
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() && w[0] != w[1] {
                return;
            }
        }
        self.clauses.push(lits);
    }

    /// Adds the unit clause `l`.
    pub fn add_unit(&mut self, l: Lit) {
        self.clauses.push(vec![l]);
    }

    /// Solves the formula; returns a satisfying assignment (indexed by
    /// variable, `true` = positive) or `None` if unsatisfiable.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut solver = Solver::new(self);
        solver.solve()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Unset,
    True,
    False,
}

struct Solver<'a> {
    cnf: &'a Cnf,
    assign: Vec<Val>,
    /// For each variable, the indices of clauses containing it.
    occurs: Vec<Vec<u32>>,
    trail: Vec<u32>,
}

impl<'a> Solver<'a> {
    fn new(cnf: &'a Cnf) -> Self {
        let n = cnf.num_vars as usize;
        let mut occurs = vec![Vec::new(); n];
        for (ci, c) in cnf.clauses.iter().enumerate() {
            for &l in c {
                occurs[l.var() as usize].push(ci as u32);
            }
        }
        Solver {
            cnf,
            assign: vec![Val::Unset; n],
            occurs,
            trail: Vec::new(),
        }
    }

    fn lit_val(&self, l: Lit) -> Val {
        match self.assign[l.var() as usize] {
            Val::Unset => Val::Unset,
            Val::True => {
                if l.is_neg() {
                    Val::False
                } else {
                    Val::True
                }
            }
            Val::False => {
                if l.is_neg() {
                    Val::True
                } else {
                    Val::False
                }
            }
        }
    }

    fn set(&mut self, l: Lit) {
        self.assign[l.var() as usize] = if l.is_neg() { Val::False } else { Val::True };
        self.trail.push(l.var());
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("non-empty trail");
            self.assign[v as usize] = Val::Unset;
        }
    }

    /// Unit propagation over clauses touched by the trail suffix; returns
    /// `false` on conflict.
    fn propagate(&mut self) -> bool {
        let mut head = self.trail.len().saturating_sub(1);
        // Also run once over all clauses initially (head == 0 case handled
        // by caller passing after first set; simplest: scan all clauses in
        // a loop until fixpoint).
        loop {
            let mut changed = false;
            // Scan clauses adjacent to recently assigned vars, falling back
            // to a full scan the first time.
            let clause_range: Vec<u32> = if head == 0 && self.trail.is_empty() {
                (0..self.cnf.clauses.len() as u32).collect()
            } else {
                let mut v: Vec<u32> = Vec::new();
                for &var in &self.trail[head.min(self.trail.len())..] {
                    v.extend(self.occurs[var as usize].iter().copied());
                }
                if v.is_empty() {
                    (0..self.cnf.clauses.len() as u32).collect()
                } else {
                    v.sort_unstable();
                    v.dedup();
                    v
                }
            };
            head = self.trail.len();
            for ci in clause_range {
                let clause = &self.cnf.clauses[ci as usize];
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in clause {
                    match self.lit_val(l) {
                        Val::True => {
                            satisfied = true;
                            break;
                        }
                        Val::Unset => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        Val::False => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return false, // conflict
                    1 => {
                        self.set(unassigned.expect("one unassigned literal"));
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn pick_branch_var(&self) -> Option<u32> {
        // Most occurrences in not-yet-satisfied clauses (approximated by
        // total occurrences among unset variables).
        let mut best: Option<(usize, u32)> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == Val::Unset {
                let score = self.occurs[v].len();
                if best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, v as u32));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    fn solve(&mut self) -> Option<Vec<bool>> {
        if !self.propagate() {
            return None;
        }
        self.dpll()
            .then(|| self.assign.iter().map(|&v| v == Val::True).collect())
    }

    fn dpll(&mut self) -> bool {
        let Some(v) = self.pick_branch_var() else {
            return true; // all assigned, all clauses satisfied by propagation
        };
        for &first in &[Lit::pos(v), Lit::neg(v)] {
            let mark = self.trail.len();
            self.set(first);
            if self.propagate() && self.dpll() {
                return true;
            }
            self.undo_to(mark);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        if i > 0 {
            Lit::pos((i - 1) as u32)
        } else {
            Lit::neg((-i - 1) as u32)
        }
    }

    fn cnf(num_vars: u32, clauses: &[&[i32]]) -> Cnf {
        let mut c = Cnf::new();
        for _ in 0..num_vars {
            c.fresh_var();
        }
        for cl in clauses {
            c.add_clause(cl.iter().map(|&i| lit(i)).collect());
        }
        c
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(cnf(1, &[&[1]]).solve().is_some());
        assert!(cnf(1, &[&[1], &[-1]]).solve().is_none());
        assert!(cnf(0, &[]).solve().is_some());
        assert!(cnf(1, &[&[]]).solve().is_none());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let f = cnf(4, &[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3, 4], &[-4, 1]]);
        let m = f.solve().expect("satisfiable");
        for cl in &f.clauses {
            assert!(cl.iter().any(|l| m[l.var() as usize] != l.is_neg()));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars 1..=6 (3 pigeons × 2 holes).
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(cnf(6, &refs).solve().is_none());
    }

    #[test]
    fn tautological_clauses_are_dropped() {
        let mut c = Cnf::new();
        let v = c.fresh_var();
        c.add_clause(vec![Lit::pos(v), Lit::neg(v)]);
        assert!(c.clauses.is_empty());
        assert!(c.solve().is_some());
    }

    #[test]
    fn chained_implications_propagate() {
        // x1 ∧ (x1→x2) ∧ … ∧ (x9→x10) ∧ ¬x10 is unsat.
        let mut clauses: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..10 {
            clauses.push(vec![-i, i + 1]);
        }
        clauses.push(vec![-10]);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(cnf(10, &refs).solve().is_none());
        // Dropping the last clause makes it satisfiable with all-true.
        let refs2: Vec<&[i32]> = clauses[..10].iter().map(|c| c.as_slice()).collect();
        let m = cnf(10, &refs2).solve().expect("satisfiable");
        assert!(m.iter().all(|&b| b));
    }

    #[test]
    fn random_3sat_agreement_with_brute_force() {
        // Deterministic pseudo-random small 3-SAT instances, cross-checked
        // against exhaustive enumeration.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..50 {
            let n = 6;
            let m = 18;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n) as i32 + 1;
                    let s = if next() % 2 == 0 { 1 } else { -1 };
                    cl.push(v * s);
                }
                clauses.push(cl);
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let f = cnf(n, &refs);
            let dpll_sat = f.solve().is_some();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0u32..(1 << n) {
                for cl in &clauses {
                    let ok = cl.iter().any(|&l| {
                        let v = l.unsigned_abs() - 1;
                        let val = bits & (1 << v) != 0;
                        (l > 0) == val
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            assert_eq!(dpll_sat, brute_sat);
        }
    }
}
