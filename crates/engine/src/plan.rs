//! Compiled OMQ plans.
//!
//! An [`OmqPlan`] packages everything the serving layer needs to answer
//! an ontology-mediated query `(O, q)` against arbitrary ABoxes:
//!
//! * the **classification verdict** ([`OntologyReport`]) — the
//!   executable Figure-1 zone/fragment report from `gomq-rewriting`,
//! * the **compiled Datalog≠ rewriting** (Theorem 5: one `elim_θ`
//!   predicate per surviving element type), already `optimize()`d,
//! * the rewriting pre-**stratified** into SCC strata ([`Strata`]), so
//!   evaluation never pays the stratification cost per request,
//! * the **canonical cache key** ([`canonical_omq_hash`]) under which
//!   the plan is stored.
//!
//! Compilation is the expensive part of serving (type elimination is
//! exponential in the signature); the whole point of the engine is to
//! pay it once per distinct OMQ.

use crate::exec::Strata;
use gomq_core::{RelId, Vocab};
use gomq_datalog::Program;
use gomq_logic::GfOntology;
use gomq_reasoning::CertainEngine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::{
    canonical_omq_hash, canonical_omq_text, classify_ontology, emit_sql, ElementTypeSystem,
    OntologyReport, RewriteError, SqlEmitError, SqlPlan,
};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The ontology is outside the element-type rewritable class — the
    /// engine cannot compile a Datalog≠ plan for it (it may well be
    /// coNP-hard by the dichotomy; the report's zone says more).
    NotRewritable(RewriteError),
    /// The plan compiled, but its Datalog≠ rewriting is recursive, so
    /// the SQL backend cannot run it (SQL without recursive CTEs is
    /// non-recursive). The serving layer reports
    /// `"status": "non-rewritable-to-sql"`; the native backend remains
    /// available for the same plan.
    NotSqlRewritable(SqlEmitError),
    /// A malformed serving request (bad JSON, unknown relation, parse
    /// failure in the ontology or ABox text).
    BadRequest(String),
    /// Evaluation gave up because its resource budget (rounds, derived
    /// facts or wall-clock deadline) ran out. The session stays healthy;
    /// the serving layer reports `"status": "overloaded"`.
    Overloaded(gomq_datalog::BudgetExceeded),
    /// A panic was caught and isolated (compilation or evaluation); the
    /// payload is the panic message. The session stays healthy.
    Internal(String),
    /// The plan's circuit breaker is open: evaluation failed (panicked
    /// or blew its budget) this many times, so the engine refuses to
    /// evaluate it again. The serving layer reports
    /// `"status": "quarantined"`.
    Quarantined(u32),
    /// The request violated the transport framing (e.g. a line past the
    /// configured byte cap). The serving layer reports
    /// `"status": "malformed"` — distinct from [`EngineError::BadRequest`]
    /// so operators can tell protocol abuse from bad payloads.
    Malformed(String),
    /// Session persistence failed (WAL append, snapshot, recovery). The
    /// mutation was not applied; queries keep working.
    Persist(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NotRewritable(e) => {
                write!(f, "OMQ is not element-type rewritable: {e}")
            }
            EngineError::NotSqlRewritable(e) => {
                write!(f, "plan is not rewritable to SQL: {e}")
            }
            EngineError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EngineError::Overloaded(e) => write!(f, "overloaded: {e}"),
            EngineError::Internal(msg) => write!(f, "internal error (panic isolated): {msg}"),
            EngineError::Quarantined(n) => {
                write!(f, "plan quarantined after {n} evaluation failures")
            }
            EngineError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            EngineError::Persist(msg) => write!(f, "persistence error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RewriteError> for EngineError {
    fn from(e: RewriteError) -> Self {
        EngineError::NotRewritable(e)
    }
}

impl From<crate::session::SessionError> for EngineError {
    fn from(e: crate::session::SessionError) -> Self {
        match e {
            crate::session::SessionError::UnknownMark(id) => {
                EngineError::BadRequest(format!("unknown mark {id}"))
            }
            other => EngineError::Persist(other.to_string()),
        }
    }
}

/// A compiled, cacheable plan for one OMQ.
#[derive(Clone, Debug)]
pub struct OmqPlan {
    /// The plan-cache key: [`canonical_omq_hash`] of `(O, q)`.
    pub key: u64,
    /// The canonical OMQ text the key hashes (kept for diagnostics and
    /// collision checks).
    pub canonical_text: String,
    /// The queried relation.
    pub query: RelId,
    /// The classification verdict for the ontology.
    pub report: OntologyReport,
    /// The Datalog≠ rewriting (goal = the emitted `_goal` relation).
    pub program: Program,
    /// The rewriting's rules pre-partitioned into SCC strata — the
    /// backend-agnostic [`gomq_datalog::ir::PlanIr`] every executor
    /// consumes (`Strata` is its engine-historical name).
    pub strata: Strata,
    /// The plan lowered to portable SQL, or the typed reason it cannot
    /// be (recursive rewriting). Emitted eagerly at compile time: the
    /// text is ABox-independent, so cached plans serve SQL-backend
    /// requests with zero additional compilation work.
    pub sql: Result<SqlPlan, SqlEmitError>,
    /// The element-type system the rewriting was emitted from, with its
    /// bitset propagation kernel pre-built — the fast path
    /// [`crate::Engine::answer_typed`] evaluates directly against it.
    pub types: Arc<ElementTypeSystem>,
}

impl OmqPlan {
    /// Compiles a plan: classifies the ontology, builds the element-type
    /// system, emits and optimizes the Datalog≠ rewriting, and
    /// stratifies it.
    ///
    /// Interns fresh `_elim`/`_dom`/`_goal` relations in `vocab`; a
    /// cached plan must only be reused with the same vocabulary.
    pub fn compile(
        o: &GfOntology,
        query: RelId,
        vocab: &mut Vocab,
    ) -> Result<OmqPlan, EngineError> {
        let key = canonical_omq_hash(o, query, vocab);
        let canonical_text = canonical_omq_text(o, query, vocab);
        // Classification without materializability probes: the serving
        // layer only needs the syntactic verdict (zone, fragment,
        // rewritability); probing is a research-tool concern.
        let report = classify_ontology(o, &[], &CertainEngine::new(1), vocab);
        let sys = ElementTypeSystem::build(o, vocab)?;
        let program = emit_datalog(&sys, query, vocab).optimize();
        let strata = Strata::of(&program);
        let sql = emit_sql(&strata, vocab);
        let types = Arc::new(sys);
        // Build the bitset kernel now, while we are paying compilation
        // cost anyway, so cached plans serve typed requests without a
        // first-request construction stall.
        types.kernel();
        Ok(OmqPlan {
            key,
            canonical_text,
            query,
            report,
            program,
            strata,
            sql,
            types,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;

    #[test]
    fn compile_horn_ontology() {
        let mut v = Vocab::new();
        let dl = parse_ontology("A sub B\nB sub C\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let c = v.find_rel("C").unwrap();
        let plan = OmqPlan::compile(&o, c, &mut v).unwrap();
        assert!(plan.report.type_rewritable);
        assert!(!plan.program.is_empty());
        assert!(!plan.strata.is_empty());
        assert_eq!(plan.key, canonical_omq_hash(&o, c, &v));
        assert!(plan.canonical_text.contains("query: C"));
    }

    #[test]
    fn transitive_ontology_is_rejected_with_report_intact() {
        let mut v = Vocab::new();
        let dl = parse_ontology("A sub ex R.B\n", &mut v).unwrap();
        let mut o = to_gf(&dl);
        let r = v.find_rel("R").unwrap();
        o.transitive.insert(r);
        let b = v.find_rel("B").unwrap();
        let err = OmqPlan::compile(&o, b, &mut v).unwrap_err();
        assert!(matches!(err, EngineError::NotRewritable(_)));
        assert!(format!("{err}").contains("not element-type rewritable"));
    }
}
