//! # gomq-engine
//!
//! A caching, indexed, parallel OMQ serving engine on top of the
//! dichotomy machinery.
//!
//! The research crates answer one OMQ against one instance from
//! scratch: classify the ontology, run type elimination, emit the
//! Datalog≠ rewriting (Theorem 5), evaluate. A serving workload poses
//! the *same* few OMQs against a *stream* of ABoxes, which makes that
//! pipeline mostly redundant work. This crate restructures it:
//!
//! * [`plan`] — an [`OmqPlan`] bundles the classification verdict, the
//!   optimized rewriting, and its SCC stratification; compiled once.
//! * [`cache`] — a [`PlanCache`] keyed by the canonical OMQ hash
//!   (`gomq_rewriting::canonical_omq_hash`) but *verified* against the
//!   full canonical text (hash collisions can never serve the wrong
//!   plan), with negative caching of non-rewritable OMQs, single-flight
//!   deduplication of concurrent compilations, and a capacity bound
//!   enforced by LRU eviction.
//! * [`backend`] — the executors behind one backend-agnostic
//!   [`gomq_datalog::ir::PlanIr`]: [`backend::native`], stratified
//!   semi-naive evaluation over [`gomq_core::IndexedInstance`]
//!   (first-argument hash probes, scoped-thread parallelism across
//!   rule partitions within a round and across ABoxes within a batch,
//!   governed by a cooperative [`gomq_datalog::Budget`]), and
//!   [`backend::sql`], which runs the plan's emitted portable SQL via
//!   the dependency-free `gomq-sqlexec` executor (recursive plans are
//!   refused with a typed status). [`exec`] re-exports the native path
//!   under its historical name.
//! * [`engine`] — the [`Engine`] facade tying cache, executor and
//!   [`EngineStats`] together.
//! * [`serve`] + the `gomq-serve` binary — a JSONL stdin/stdout
//!   protocol: one `{ontology, query, abox}` request per line (optional
//!   per-request `"limits"`), one answer+stats response per line.
//!   Blown budgets answer `"status": "overloaded"`; panics in
//!   compilation or evaluation are caught and isolated, and poisoned
//!   locks are recovered, so a hostile line can never take the session
//!   down or wedge its siblings.
//! * [`net`] + [`drain`] — the TCP front end (`gomq-serve --listen`):
//!   a multi-connection accept loop speaking the same JSONL protocol,
//!   a bounded worker pool with a backpressure queue (full ⇒ typed
//!   `"overloaded"` refusals), connection caps, idle timeouts, and
//!   graceful drain on SIGTERM ([`DrainToken`]): in-flight requests
//!   finish, the WAL is fsynced and a final snapshot cut.
//! * [`repl`] — primary/replica replication (`gomq-serve
//!   --replicate-to` / `--follow`): the primary ships checksummed WAL
//!   frames (snapshot bootstrap for replicas behind the retained log),
//!   replicas serve session reads with a per-request `"staleness"` lsn
//!   lag bounded by `--max-staleness-lsn`, and failover promotes a
//!   replica via a `promote` op or `--promote-on-disconnect`, stamping
//!   an epoch into the WAL that fences the old primary.
//!
//! The executor is answer-equivalent to the reference
//! [`gomq_datalog::Program::eval`]; `tests/engine_props.rs` checks this
//! property on random programs and instances, including across
//! cache-hit re-evaluation.

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod certify;
pub mod drain;
pub mod engine;
pub mod exec;
pub mod faults;
pub mod json;
pub mod net;
pub mod plan;
pub mod repl;
pub mod serve;
pub mod session;
pub mod stats;
pub mod wal;

pub use backend::Backend;
pub use cache::{PlanCache, PlanOutcome};
pub use certify::{emit_certificate, CertSource, CertifyError};
pub use drain::DrainToken;
pub use engine::Engine;
pub use exec::{
    eval_batch, eval_batch_budgeted, eval_plain, eval_program, eval_strata, eval_strata_budgeted,
    Strata,
};
pub use gomq_datalog::{Budget, BudgetExceeded, LimitKind};
pub use net::{NetConfig, NetReport, NetServer};
pub use plan::{EngineError, OmqPlan};
pub use repl::{FollowConfig, ReplContext, ReplHub, ReplServer, Role};
pub use serve::{
    handle_connection, read_line_capped, resolve_view_flags, CappedLineReader, ConnClose,
    ConnControl, ConnOutcome, Limits, LineRead, ServeConfig, ServeSession, ServeShared,
};
pub use session::{
    DurableSession, MutationInfo, PersistOptions, RecoveryInfo, SessionError, ViewMaintenance,
    ViewRegistry, DEFAULT_MAX_VIEWS,
};
pub use stats::{EngineStats, RequestStats};
pub use wal::{SymFact, SymTerm, Wal, WalRecord};
