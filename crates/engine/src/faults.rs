//! Deterministic fault injection, re-exported from `gomq_core::faults`.
//!
//! The injection machinery lives in the core crate so every layer
//! (store interning, Datalog rounds, WAL I/O) can place seams without a
//! dependency cycle; the engine re-exports it here so the serve binary
//! and the chaos harness have a single import path. All entry points
//! compile to inlined no-ops unless the `chaos` cargo feature is on.

pub use gomq_core::faults::*;

/// Installs the standard chaos plan (see [`FaultPlan::standard`]) for
/// the given seed. The serve binary calls this for `--chaos-seed`.
pub fn install_standard(seed: u64) {
    install(FaultPlan::standard(seed));
}
