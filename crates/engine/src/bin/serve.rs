//! `gomq-serve`: JSONL OMQ answering over stdin/stdout or TCP.
//!
//! Reads one JSON request object per line and writes one JSON response
//! per line (see `gomq_engine::serve` for the protocol). By default the
//! transport is stdin/stdout; with `--listen ADDR` the same protocol is
//! served over TCP to many concurrent connections, backed by a bounded
//! worker pool (`gomq_engine::net`). Plans are cached across lines and
//! connections, so a stream of requests posing the same OMQ compiles it
//! once. With `--data-dir` the session ABox (`"op": "assert"` /
//! `"mark"` / `"rollback"`) is journaled to a write-ahead log and
//! periodically snapshotted, so a crash — even a SIGKILL mid-write —
//! loses at most the un-acknowledged mutation and a restart over the
//! same directory resumes with the exact same store. A TCP server
//! drains gracefully on SIGTERM/SIGINT: in-flight requests finish, the
//! WAL is fsynced, and a final snapshot is cut. A final statistics
//! summary goes to stderr at exit.
//!
//! ```text
//! $ echo '{"ontology": "A sub B", "query": "B", "abox": "A(ada)"}' | gomq-serve
//! {"status": "ok", "cached": false, ..., "answers": [["ada"]], ...}
//! ```

use gomq_engine::{
    handle_connection, resolve_view_flags, ConnClose, ConnControl, DrainToken, NetConfig,
    NetServer, ServeConfig, ServeSession, ServeShared,
};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "gomq-serve — JSONL OMQ answering over stdin/stdout or TCP

Usage: gomq-serve [--threads N] [--cache N] [--max-rounds N]
                  [--max-derived N] [--timeout-ms N] [--data-dir PATH]
                  [--snapshot-every N] [--fsync] [--quarantine-after N]
                  [--max-line-bytes N] [--chaos-seed N]
                  [--views on|off] [--max-views N]
                  [--backend native|sql]
                  [--listen ADDR] [--workers N] [--queue-depth N]
                  [--max-conns N] [--max-conns-per-ip N]
                  [--idle-timeout-ms N] [--drain-timeout-ms N]
                  [--replicate-to ADDR | --follow ADDR]
                  [--promote-on-disconnect] [--max-staleness-lsn N]
                  [--epoch N]

  --threads N          worker threads for evaluation (default: all cores;
                       0 also means all cores, with a warning)
  --cache N            plan-cache capacity; older plans are LRU-evicted
  --max-rounds N       per-request fixpoint-round ceiling
  --max-derived N      per-request derived-fact ceiling (per ABox in a batch)
  --timeout-ms N       per-request wall-clock deadline in milliseconds
  --data-dir PATH      persist the session ABox: WAL + snapshots in PATH,
                       recovered on startup (exact pre-crash store)
  --snapshot-every N   snapshot after N journaled mutations (default 64;
                       0 disables periodic snapshots)
  --fsync              fsync the WAL after every journaled record
  --quarantine-after N open a plan's circuit breaker after N evaluation
                       failures (default 3; 0 disables quarantine)
  --max-line-bytes N   refuse request lines longer than N bytes as
                       \"malformed\" (default 16777216)
  --chaos-seed N       install the standard deterministic fault plan with
                       seed N (needs a build with the `chaos` feature)
  --views on|off       incremental view maintenance for session queries:
                       repeat \"session\": true queries are answered from
                       a maintained materialization in O(changed facts)
                       instead of a from-scratch fixpoint (default: on)
  --max-views N        maintained materializations kept per session,
                       LRU-evicted beyond N (default 8). N must be at
                       least 1 — to disable maintenance say --views off,
                       not --max-views 0; combining --views off with
                       --max-views is a usage error
  --backend native|sql default backend for queries without a per-request
                       \"backend\" field (default: native). The sql
                       backend executes each plan's emitted portable SQL
                       in-process; recursive plans answer
                       {\"status\": \"non-rewritable-to-sql\"}

TCP mode (the flags below require --listen):
  --listen ADDR        serve the JSONL protocol over TCP on ADDR (e.g.
                       127.0.0.1:7401; port 0 binds an ephemeral port,
                       printed to stderr as \"listening on <addr>\").
                       SIGTERM/SIGINT drain gracefully: in-flight
                       requests finish, the WAL is fsynced, and a final
                       snapshot is cut before exit
  --workers N          request-executing worker threads (default: all
                       cores)
  --queue-depth N      backpressure bound: requests queued beyond N are
                       refused with {\"status\": \"overloaded\",
                       \"limit\": \"queue\"} (default: 16 x workers,
                       at least 64)
  --max-conns N        refuse connections beyond N open at once
                       (default 1024)
  --max-conns-per-ip N refuse connections beyond N open per peer IP
                       (default 1024)
  --idle-timeout-ms N  hang up on a connection idle for N ms (default:
                       never)
  --drain-timeout-ms N at shutdown, wait at most N ms for open
                       connections to finish before abandoning them
                       (default 5000)

Replication (requires --listen and --data-dir):
  --replicate-to ADDR  primary: accept replica connections on ADDR and
                       ship every journaled WAL frame (port 0 binds an
                       ephemeral port, printed to stderr as
                       \"replication listening on <addr>\"). Drain
                       waits for replicas to acknowledge before exit
  --follow ADDR        follower: bootstrap from the primary's
                       replication listener at ADDR (snapshot if
                       behind, then tail the log), serve reads locally,
                       and refuse writes with \"status\": \"read-only\".
                       {\"op\": \"promote\"} promotes this node: it
                       stamps the next epoch into its WAL and fences
                       the old primary
  --promote-on-disconnect
                       with --follow: promote automatically once the
                       primary has been unreachable past the reconnect
                       window (8 x 125ms)
  --max-staleness-lsn N
                       with --follow: refuse session reads lagging more
                       than N lsns behind the primary with \"status\":
                       \"stale\" (default: serve at any lag; the lag is
                       always reported as \"staleness\")
  --epoch N            start with epoch floor N (operator override for
                       resurrecting a node at a known fencing point)

Each request line is a JSON object:
  {\"ontology\": \"<dl axioms>\", \"query\": \"<relation>\", \"abox\": \"<facts>\"}
with optional \"id\", optional \"limits\" ({\"max_rounds\", \"max_derived\",
\"timeout_ms\"}; clamped by the session limits above) and, instead of
\"abox\", a batched \"aboxes\": [\"<facts>\", ...] or \"session\": true to
query the session store. Session mutations: {\"op\": \"assert\", \"abox\":
...}, {\"op\": \"mark\"}, {\"op\": \"rollback\", \"mark\": N}. One JSON
response per line; a blown limit answers {\"status\": \"overloaded\", ...},
a quarantined plan {\"status\": \"quarantined\", ...}.
";

fn usage_error(message: &str) -> ! {
    eprintln!("gomq-serve: {message}");
    eprintln!("run gomq-serve --help for usage");
    std::process::exit(2);
}

fn numeric(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    let Some(value) = args.next() else {
        usage_error(&format!("{flag} needs a non-negative integer"));
    };
    match value.parse::<u64>() {
        Ok(n) => n,
        Err(_) => usage_error(&format!(
            "{flag} needs a non-negative integer, got {value:?}"
        )),
    }
}

fn main() {
    let mut config = ServeConfig::default();
    // --views / --max-views are collected and resolved together after
    // the loop (resolve_view_flags), so the outcome is order-independent
    // and the ambiguous "--max-views 0" spelling is a typed usage error.
    let mut views_flag: Option<bool> = None;
    let mut max_views_flag: Option<u64> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut listen: Option<String> = None;
    let mut replicate_to: Option<String> = None;
    let mut follow: Option<String> = None;
    let mut promote_on_disconnect = false;
    let mut epoch_floor: Option<u64> = None;
    let mut net = NetConfig::default();
    // Flags that only make sense with --listen, remembered for the
    // "--workers requires --listen" usage error.
    let mut net_flag: Option<&'static str> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--threads" => {
                let n = numeric(&mut args, "--threads");
                if n == 0 {
                    eprintln!(
                        "gomq-serve: --threads 0 means \"all cores\" ({} here)",
                        config.threads
                    );
                } else {
                    config.threads = n as usize;
                }
            }
            "--cache" => config.cache_capacity = numeric(&mut args, "--cache") as usize,
            "--max-rounds" => {
                config.limits.max_rounds = Some(numeric(&mut args, "--max-rounds") as usize)
            }
            "--max-derived" => {
                config.limits.max_derived = Some(numeric(&mut args, "--max-derived") as usize)
            }
            "--timeout-ms" => {
                config.limits.timeout =
                    Some(Duration::from_millis(numeric(&mut args, "--timeout-ms")))
            }
            "--data-dir" => {
                let Some(path) = args.next() else {
                    usage_error("--data-dir needs a path");
                };
                config.data_dir = Some(path.into());
            }
            "--snapshot-every" => config.snapshot_every = numeric(&mut args, "--snapshot-every"),
            "--fsync" => config.fsync = true,
            "--quarantine-after" => {
                config.quarantine_after = numeric(&mut args, "--quarantine-after") as u32
            }
            "--max-line-bytes" => {
                config.max_line_bytes = numeric(&mut args, "--max-line-bytes").max(1) as usize
            }
            "--chaos-seed" => chaos_seed = Some(numeric(&mut args, "--chaos-seed")),
            "--views" => match args.next().as_deref() {
                Some("on") => views_flag = Some(true),
                Some("off") => views_flag = Some(false),
                _ => usage_error("--views needs \"on\" or \"off\""),
            },
            "--max-views" => max_views_flag = Some(numeric(&mut args, "--max-views")),
            "--backend" => {
                let Some(name) = args.next() else {
                    usage_error("--backend needs \"native\" or \"sql\"");
                };
                match gomq_engine::Backend::from_name(&name) {
                    Ok(backend) => config.default_backend = backend,
                    Err(e) => usage_error(&e),
                }
            }
            "--listen" => {
                let Some(addr) = args.next() else {
                    usage_error("--listen needs an address, e.g. 127.0.0.1:7401");
                };
                listen = Some(addr);
            }
            "--workers" => {
                net_flag = Some("--workers");
                match numeric(&mut args, "--workers") as usize {
                    0 => usage_error("--workers must be at least 1"),
                    n => net.workers = n,
                }
            }
            "--queue-depth" => {
                net_flag = Some("--queue-depth");
                match numeric(&mut args, "--queue-depth") as usize {
                    0 => usage_error("--queue-depth must be at least 1"),
                    n => net.queue_depth = n,
                }
            }
            "--max-conns" => {
                net_flag = Some("--max-conns");
                match numeric(&mut args, "--max-conns") as usize {
                    0 => usage_error("--max-conns must be at least 1"),
                    n => net.max_conns = n,
                }
            }
            "--max-conns-per-ip" => {
                net_flag = Some("--max-conns-per-ip");
                match numeric(&mut args, "--max-conns-per-ip") as usize {
                    0 => usage_error("--max-conns-per-ip must be at least 1"),
                    n => net.max_conns_per_ip = n,
                }
            }
            "--idle-timeout-ms" => {
                net_flag = Some("--idle-timeout-ms");
                net.idle_timeout = Some(Duration::from_millis(numeric(
                    &mut args,
                    "--idle-timeout-ms",
                )));
            }
            "--drain-timeout-ms" => {
                net_flag = Some("--drain-timeout-ms");
                net.drain_timeout = Duration::from_millis(numeric(&mut args, "--drain-timeout-ms"));
            }
            "--replicate-to" => {
                let Some(addr) = args.next() else {
                    usage_error("--replicate-to needs an address, e.g. 127.0.0.1:7402");
                };
                replicate_to = Some(addr);
            }
            "--follow" => {
                let Some(addr) = args.next() else {
                    usage_error("--follow needs the primary's replication address");
                };
                follow = Some(addr);
            }
            "--promote-on-disconnect" => promote_on_disconnect = true,
            "--max-staleness-lsn" => {
                config.max_staleness_lsn = Some(numeric(&mut args, "--max-staleness-lsn"))
            }
            "--epoch" => epoch_floor = Some(numeric(&mut args, "--epoch")),
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if listen.is_none() {
        if let Some(flag) = net_flag {
            usage_error(&format!("{flag} requires --listen"));
        }
        if replicate_to.is_some() {
            usage_error("--replicate-to requires --listen");
        }
        if follow.is_some() {
            usage_error("--follow requires --listen");
        }
    }
    if replicate_to.is_some() && follow.is_some() {
        usage_error("--replicate-to and --follow are mutually exclusive (one role per node)");
    }
    if (replicate_to.is_some() || follow.is_some()) && config.data_dir.is_none() {
        usage_error("replication ships the WAL: --replicate-to/--follow require --data-dir");
    }
    if promote_on_disconnect && follow.is_none() {
        usage_error("--promote-on-disconnect requires --follow");
    }
    if config.max_staleness_lsn.is_some() && follow.is_none() {
        usage_error("--max-staleness-lsn requires --follow");
    }
    if epoch_floor.is_some() && replicate_to.is_none() && follow.is_none() {
        usage_error("--epoch requires --replicate-to or --follow");
    }
    match resolve_view_flags(views_flag, max_views_flag) {
        Ok(n) => config.max_views = n,
        Err(e) => usage_error(&e),
    }
    if let Some(seed) = chaos_seed {
        if cfg!(feature = "chaos") {
            gomq_engine::faults::install_standard(seed);
            eprintln!("gomq-serve: chaos plan installed (seed {seed})");
        } else {
            eprintln!("gomq-serve: --chaos-seed ignored (built without the chaos feature)");
        }
    }
    // Follower bootstrap runs before the session opens: if the local
    // log is behind the primary's retained window, the shipped snapshot
    // replaces the data directory's contents and recovery below starts
    // from it ("copy immutable objects, then flip HEAD").
    if let Some(addr) = &follow {
        let dir = config.data_dir.clone().expect("validated above");
        match gomq_engine::repl::bootstrap_follower(&dir, addr) {
            Ok((lsn, epoch)) => {
                eprintln!("gomq-serve: follower bootstrapped at lsn {lsn} (epoch {epoch})")
            }
            Err(e) => {
                eprintln!("gomq-serve: cannot bootstrap from {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let (shared, recovery) = match ServeShared::try_with_config(config) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("gomq-serve: cannot open data dir: {e}");
            std::process::exit(1);
        }
    };
    if let Some(info) = recovery {
        eprintln!(
            "gomq-serve: recovered session: {} facts from snapshot, {} WAL records \
             replayed ({} facts){}",
            info.snapshot_facts,
            info.replayed_records,
            info.replayed_facts,
            if info.truncated_tail {
                ", torn WAL tail truncated"
            } else {
                ""
            },
        );
    }
    let shared = Arc::new(shared);
    if let Some(epoch) = epoch_floor {
        gomq_engine::repl::force_epoch(&shared, epoch);
        eprintln!("gomq-serve: epoch floor forced to {epoch}");
    }
    let repl = ReplOptions {
        replicate_to,
        follow,
        promote_on_disconnect,
    };
    match listen {
        Some(addr) => serve_tcp(&addr, shared.clone(), net, repl),
        None => serve_stdin(shared.clone()),
    }
    print_summary(&shared);
}

/// Replication role flags forwarded into TCP mode.
struct ReplOptions {
    replicate_to: Option<String>,
    follow: Option<String>,
    promote_on_disconnect: bool,
}

/// TCP mode: accept loop + worker pool until SIGTERM/SIGINT, then a
/// graceful drain (finish in-flight, fsync WAL, final snapshot).
fn serve_tcp(addr: &str, shared: Arc<ServeShared>, net: NetConfig, repl: ReplOptions) {
    let drain = match DrainToken::with_signals() {
        Ok(token) => token,
        Err(e) => {
            eprintln!("gomq-serve: cannot install signal handlers: {e}");
            std::process::exit(1);
        }
    };
    let server = match NetServer::bind(addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gomq-serve: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("gomq-serve: listening on {}", server.local_addr());
    if let Some(repl_addr) = &repl.replicate_to {
        match gomq_engine::repl::start_primary(&shared, repl_addr, drain.clone()) {
            Ok(bound) => eprintln!("gomq-serve: replication listening on {bound}"),
            Err(e) => {
                eprintln!("gomq-serve: cannot listen for replicas on {repl_addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(primary) = &repl.follow {
        gomq_engine::repl::start_follower(
            &shared,
            gomq_engine::repl::FollowConfig {
                addr: primary.clone(),
                promote_on_disconnect: repl.promote_on_disconnect,
            },
            drain.clone(),
        );
        eprintln!("gomq-serve: following {primary}");
    }
    match server.serve(shared, net, drain) {
        Ok(report) => {
            eprintln!(
                "gomq-serve: drained: {} connections accepted, {} refused{}{}",
                report.conns_accepted,
                report.conns_refused,
                if report.drain_timed_out {
                    ", drain timed out (stragglers abandoned)"
                } else {
                    ""
                },
                if report.final_snapshot {
                    ", final snapshot cut"
                } else {
                    ""
                },
            );
        }
        Err(e) => {
            eprintln!("gomq-serve: listener failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Stdin mode: one session over stdin/stdout, sharing the TCP code
/// path via `handle_connection`. EOF finalizes durable sessions the
/// same way a TCP drain does.
fn serve_stdin(shared: Arc<ServeShared>) {
    let mut session = ServeSession::with_shared(shared.clone());
    let max_line = shared.max_line_bytes();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let control = ConnControl {
        draining: None,
        idle_timeout: None,
    };
    let outcome = handle_connection(stdin.lock(), stdout.lock(), max_line, &control, |line| {
        session.handle_line(line)
    });
    match outcome.close {
        ConnClose::Read(e) => eprintln!("stdin error: {e}"),
        ConnClose::Write(_) => {} // downstream closed the pipe
        ConnClose::Eof | ConnClose::Drained | ConnClose::Idle => {}
    }
    if let Err(e) = shared.drain_persist() {
        eprintln!("gomq-serve: final session flush failed: {e}");
    }
}

fn print_summary(shared: &ServeShared) {
    let stats = shared.engine().stats();
    eprintln!(
        "gomq-serve: {} requests, {} cache hits / {} misses, {} rounds, \
         {} facts derived, compile {:?}, eval {:?}, {} cached plans \
         ({} evicted, {} in-flight waits), {} overloaded, {} panics isolated, \
         {} WAL records ({} bytes), {} snapshots, {} quarantined \
         ({} breakers tripped), {} faults injected, {} conns accepted \
         ({} refused), {} queue rejects, {} drains, {} maintained hits, \
         {} views active ({} evicted), {} certificates ({} bytes), \
         {} SQL answers, {} SQL refusals, {} repl frames shipped \
         ({} bytes, {} snapshots), {} repl records applied, \
         {} reconnects, {} promotions, {} write refusals ({} stale), \
         lag {}",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.rounds,
        stats.derived,
        stats.compile_time,
        stats.eval_time,
        stats.cache_size,
        stats.cache_evictions,
        stats.inflight_waits,
        stats.overloaded,
        stats.panics,
        stats.wal_records,
        stats.wal_bytes,
        stats.snapshots,
        stats.quarantined,
        stats.breaker_trips,
        stats.faults_injected,
        stats.conns_accepted,
        stats.conns_refused,
        stats.queue_rejects,
        stats.drains,
        stats.ivm_maintained_hits,
        stats.views_active,
        stats.views_evicted,
        stats.certs_emitted,
        stats.cert_bytes,
        stats.sql_compiles,
        stats.sql_refusals,
        stats.repl_frames_shipped,
        stats.repl_bytes_shipped,
        stats.repl_snapshots_shipped,
        stats.repl_records_applied,
        stats.repl_reconnects,
        stats.repl_promotions,
        stats.repl_write_refusals,
        stats.repl_stale_refusals,
        stats.repl_lag_lsn,
    );
}
