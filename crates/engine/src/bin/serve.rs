//! `gomq-serve`: JSONL OMQ answering over stdin/stdout.
//!
//! Reads one JSON request object per line from stdin and writes one
//! JSON response per line to stdout (see `gomq_engine::serve` for the
//! protocol). Plans are cached across lines, so a stream of requests
//! posing the same OMQ compiles it once. A final statistics summary
//! goes to stderr at EOF.
//!
//! ```text
//! $ echo '{"ontology": "A sub B", "query": "B", "abox": "A(ada)"}' | gomq-serve
//! {"status": "ok", "cached": false, ..., "answers": [["ada"]], ...}
//! ```

use gomq_engine::{ServeConfig, ServeSession};
use std::io::{BufRead, Write};
use std::time::Duration;

const USAGE: &str = "gomq-serve — JSONL OMQ answering over stdin/stdout

Usage: gomq-serve [--threads N] [--cache N] [--max-rounds N]
                  [--max-derived N] [--timeout-ms N]

  --threads N      worker threads for evaluation (default: all cores)
  --cache N        plan-cache capacity; older plans are LRU-evicted
  --max-rounds N   per-request fixpoint-round ceiling
  --max-derived N  per-request derived-fact ceiling (per ABox in a batch)
  --timeout-ms N   per-request wall-clock deadline in milliseconds

Each stdin line is a JSON object:
  {\"ontology\": \"<dl axioms>\", \"query\": \"<relation>\", \"abox\": \"<facts>\"}
with optional \"id\", optional \"limits\" ({\"max_rounds\", \"max_derived\",
\"timeout_ms\"}; clamped by the session limits above) and, instead of
\"abox\", a batched \"aboxes\": [\"<facts>\", ...]. One JSON response per
line on stdout; a blown limit answers {\"status\": \"overloaded\", ...}.
";

fn numeric(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a non-negative integer");
            std::process::exit(2);
        })
}

fn main() {
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--threads" => config.threads = numeric(&mut args, "--threads").max(1) as usize,
            "--cache" => config.cache_capacity = numeric(&mut args, "--cache") as usize,
            "--max-rounds" => {
                config.limits.max_rounds = Some(numeric(&mut args, "--max-rounds") as usize)
            }
            "--max-derived" => {
                config.limits.max_derived = Some(numeric(&mut args, "--max-derived") as usize)
            }
            "--timeout-ms" => {
                config.limits.timeout =
                    Some(Duration::from_millis(numeric(&mut args, "--timeout-ms")))
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let mut session = ServeSession::with_config(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = session.handle_line(&line);
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break; // downstream closed the pipe
        }
    }
    let stats = session.engine().stats();
    eprintln!(
        "gomq-serve: {} requests, {} cache hits / {} misses, {} rounds, \
         {} facts derived, compile {:?}, eval {:?}, {} cached plans \
         ({} evicted, {} in-flight waits), {} overloaded, {} panics isolated",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.rounds,
        stats.derived,
        stats.compile_time,
        stats.eval_time,
        stats.cache_size,
        stats.cache_evictions,
        stats.inflight_waits,
        stats.overloaded,
        stats.panics,
    );
}
