//! `gomq-serve`: JSONL OMQ answering over stdin/stdout.
//!
//! Reads one JSON request object per line from stdin and writes one
//! JSON response per line to stdout (see `gomq_engine::serve` for the
//! protocol). Plans are cached across lines, so a stream of requests
//! posing the same OMQ compiles it once. A final statistics summary
//! goes to stderr at EOF.
//!
//! ```text
//! $ echo '{"ontology": "A sub B", "query": "B", "abox": "A(ada)"}' | gomq-serve
//! {"status": "ok", "cached": false, ..., "answers": [["ada"]], ...}
//! ```

use gomq_engine::ServeSession;
use std::io::{BufRead, Write};

const USAGE: &str = "gomq-serve — JSONL OMQ answering over stdin/stdout

Usage: gomq-serve [--threads N]

Each stdin line is a JSON object:
  {\"ontology\": \"<dl axioms>\", \"query\": \"<relation>\", \"abox\": \"<facts>\"}
with optional \"id\" and, instead of \"abox\", a batched
\"aboxes\": [\"<facts>\", ...]. One JSON response per line on stdout.
";

fn main() {
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let mut session = match threads {
        Some(n) => ServeSession::with_threads(n),
        None => ServeSession::new(),
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = session.handle_line(&line);
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break; // downstream closed the pipe
        }
    }
    let stats = session.engine().stats();
    eprintln!(
        "gomq-serve: {} requests, {} cache hits / {} misses, {} rounds, \
         {} facts derived, compile {:?}, eval {:?}",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.rounds,
        stats.derived,
        stats.compile_time,
        stats.eval_time,
    );
}
