//! `gomq-serve`: JSONL OMQ answering over stdin/stdout.
//!
//! Reads one JSON request object per line from stdin and writes one
//! JSON response per line to stdout (see `gomq_engine::serve` for the
//! protocol). Plans are cached across lines, so a stream of requests
//! posing the same OMQ compiles it once. With `--data-dir` the session
//! ABox (`"op": "assert"` / `"mark"` / `"rollback"`) is journaled to a
//! write-ahead log and periodically snapshotted, so a crash — even a
//! SIGKILL mid-write — loses at most the un-acknowledged mutation and a
//! restart over the same directory resumes with the exact same store.
//! A final statistics summary goes to stderr at EOF.
//!
//! ```text
//! $ echo '{"ontology": "A sub B", "query": "B", "abox": "A(ada)"}' | gomq-serve
//! {"status": "ok", "cached": false, ..., "answers": [["ada"]], ...}
//! ```

use gomq_engine::{read_line_capped, LineRead, ServeConfig, ServeSession, ServeShared};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "gomq-serve — JSONL OMQ answering over stdin/stdout

Usage: gomq-serve [--threads N] [--cache N] [--max-rounds N]
                  [--max-derived N] [--timeout-ms N] [--data-dir PATH]
                  [--snapshot-every N] [--fsync] [--quarantine-after N]
                  [--max-line-bytes N] [--chaos-seed N]

  --threads N          worker threads for evaluation (default: all cores)
  --cache N            plan-cache capacity; older plans are LRU-evicted
  --max-rounds N       per-request fixpoint-round ceiling
  --max-derived N      per-request derived-fact ceiling (per ABox in a batch)
  --timeout-ms N       per-request wall-clock deadline in milliseconds
  --data-dir PATH      persist the session ABox: WAL + snapshots in PATH,
                       recovered on startup (exact pre-crash store)
  --snapshot-every N   snapshot after N journaled mutations (default 64;
                       0 disables periodic snapshots)
  --fsync              fsync the WAL after every journaled record
  --quarantine-after N open a plan's circuit breaker after N evaluation
                       failures (default 3; 0 disables quarantine)
  --max-line-bytes N   refuse request lines longer than N bytes as
                       \"malformed\" (default 16777216)
  --chaos-seed N       install the standard deterministic fault plan with
                       seed N (needs a build with the `chaos` feature)

Each stdin line is a JSON object:
  {\"ontology\": \"<dl axioms>\", \"query\": \"<relation>\", \"abox\": \"<facts>\"}
with optional \"id\", optional \"limits\" ({\"max_rounds\", \"max_derived\",
\"timeout_ms\"}; clamped by the session limits above) and, instead of
\"abox\", a batched \"aboxes\": [\"<facts>\", ...] or \"session\": true to
query the session store. Session mutations: {\"op\": \"assert\", \"abox\":
...}, {\"op\": \"mark\"}, {\"op\": \"rollback\", \"mark\": N}. One JSON
response per line on stdout; a blown limit answers {\"status\":
\"overloaded\", ...}, a quarantined plan {\"status\": \"quarantined\", ...}.
";

fn numeric(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a non-negative integer");
            std::process::exit(2);
        })
}

fn main() {
    let mut config = ServeConfig::default();
    let mut chaos_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--threads" => config.threads = numeric(&mut args, "--threads").max(1) as usize,
            "--cache" => config.cache_capacity = numeric(&mut args, "--cache") as usize,
            "--max-rounds" => {
                config.limits.max_rounds = Some(numeric(&mut args, "--max-rounds") as usize)
            }
            "--max-derived" => {
                config.limits.max_derived = Some(numeric(&mut args, "--max-derived") as usize)
            }
            "--timeout-ms" => {
                config.limits.timeout =
                    Some(Duration::from_millis(numeric(&mut args, "--timeout-ms")))
            }
            "--data-dir" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--data-dir needs a path");
                    std::process::exit(2);
                });
                config.data_dir = Some(path.into());
            }
            "--snapshot-every" => config.snapshot_every = numeric(&mut args, "--snapshot-every"),
            "--fsync" => config.fsync = true,
            "--quarantine-after" => {
                config.quarantine_after = numeric(&mut args, "--quarantine-after") as u32
            }
            "--max-line-bytes" => {
                config.max_line_bytes = numeric(&mut args, "--max-line-bytes").max(1) as usize
            }
            "--chaos-seed" => chaos_seed = Some(numeric(&mut args, "--chaos-seed")),
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(seed) = chaos_seed {
        if cfg!(feature = "chaos") {
            gomq_engine::faults::install_standard(seed);
            eprintln!("gomq-serve: chaos plan installed (seed {seed})");
        } else {
            eprintln!("gomq-serve: --chaos-seed ignored (built without the chaos feature)");
        }
    }
    let (shared, recovery) = match ServeShared::try_with_config(config) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("gomq-serve: cannot open data dir: {e}");
            std::process::exit(1);
        }
    };
    if let Some(info) = recovery {
        eprintln!(
            "gomq-serve: recovered session: {} facts from snapshot, {} WAL records \
             replayed ({} facts){}",
            info.snapshot_facts,
            info.replayed_records,
            info.replayed_facts,
            if info.truncated_tail {
                ", torn WAL tail truncated"
            } else {
                ""
            },
        );
    }
    let max_line = shared.max_line_bytes();
    let mut session = ServeSession::with_shared(Arc::new(shared));
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        let response = match read_line_capped(&mut input, max_line) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                session.handle_line(&line)
            }
            Ok(LineRead::TooLong { limit }) => session.refuse_oversized_line(limit),
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        };
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break; // downstream closed the pipe
        }
    }
    let stats = session.engine().stats();
    eprintln!(
        "gomq-serve: {} requests, {} cache hits / {} misses, {} rounds, \
         {} facts derived, compile {:?}, eval {:?}, {} cached plans \
         ({} evicted, {} in-flight waits), {} overloaded, {} panics isolated, \
         {} WAL records ({} bytes), {} snapshots, {} quarantined \
         ({} breakers tripped), {} faults injected",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.rounds,
        stats.derived,
        stats.compile_time,
        stats.eval_time,
        stats.cache_size,
        stats.cache_evictions,
        stats.inflight_waits,
        stats.overloaded,
        stats.panics,
        stats.wal_records,
        stats.wal_bytes,
        stats.snapshots,
        stats.quarantined,
        stats.breaker_trips,
        stats.faults_injected,
    );
}
