//! `gomq-sql`: print the portable SQL rewriting of an OMQ.
//!
//! Compiles `(ontology, query)` exactly like the serving engine and
//! prints the plan's emitted SQL text — one CTE per stratum, portable
//! `WITH`/`UNION`/`NOT EXISTS` dialect — so the certain-answer
//! rewriting can be carried to any SQL database. The header comments
//! list the base tables the statement expects (`-- requires table
//! ...`); load the ABox into those tables and run the statement as-is.
//!
//! A recursive rewriting cannot be expressed in this dialect; the tool
//! then prints the typed `non-rewritable-to-sql` reason to stderr and
//! exits 1 (the native backend of `gomq-serve` still answers such
//! plans).
//!
//! ```text
//! $ gomq-sql --ontology company.dl --query Employee
//! -- certain-answer rewriting for goal "_goal" (1 columns)
//! ...
//! $ gomq-sql --ontology company.dl --query Employee --abox staff.abox --execute
//! ```

use gomq_core::parse::parse_instance;
use gomq_core::{IndexedInstance, Vocab};
use gomq_datalog::Budget;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::plan::EngineError;
use gomq_engine::OmqPlan;

const USAGE: &str = "gomq-sql — print the portable SQL rewriting of an OMQ

Usage: gomq-sql --ontology FILE --query REL [--abox FILE] [--execute]

  --ontology FILE  DL ontology axioms (same syntax as gomq-serve's
                   \"ontology\" field); \"-\" reads stdin
  --query REL      the queried relation name
  --abox FILE      ABox facts, one R(a) or R(a,b) per line; only
                   meaningful with --execute
  --execute        additionally run the emitted SQL on the in-process
                   executor over the ABox (empty without --abox) and
                   print the answer rows after the statement

The SQL goes to stdout. A recursive rewriting is refused with
\"non-rewritable-to-sql\" on stderr and exit status 1; the native
backend of gomq-serve still answers such plans.
";

fn usage_error(message: &str) -> ! {
    eprintln!("gomq-sql: {message}");
    eprintln!("run gomq-sql --help for usage");
    std::process::exit(2);
}

/// Resolved command line: ontology path, query relation, optional ABox
/// path, whether to execute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Cli {
    ontology: String,
    query: String,
    abox: Option<String>,
    execute: bool,
    help: bool,
}

/// Pure argument resolution, separated from `main` so the usage errors
/// are unit-testable: `Err` is the usage message to die with.
fn resolve_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                cli.help = true;
                return Ok(cli);
            }
            "--ontology" => match args.next() {
                Some(path) => cli.ontology = path,
                None => return Err("--ontology needs a file path".into()),
            },
            "--query" => match args.next() {
                Some(rel) => cli.query = rel,
                None => return Err("--query needs a relation name".into()),
            },
            "--abox" => match args.next() {
                Some(path) => cli.abox = Some(path),
                None => return Err("--abox needs a file path".into()),
            },
            "--execute" => cli.execute = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if cli.ontology.is_empty() {
        return Err("--ontology FILE is required".into());
    }
    if cli.query.is_empty() {
        return Err("--query REL is required".into());
    }
    if cli.abox.is_some() && !cli.execute {
        return Err("--abox is only meaningful with --execute".into());
    }
    Ok(cli)
}

fn read_input(path: &str) -> String {
    let result = if path == "-" {
        std::io::read_to_string(std::io::stdin())
    } else {
        std::fs::read_to_string(path)
    };
    match result {
        Ok(text) => text,
        Err(e) => {
            eprintln!("gomq-sql: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = match resolve_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(message) => usage_error(&message),
    };
    if cli.help {
        print!("{USAGE}");
        return;
    }
    let text = read_input(&cli.ontology);
    let mut vocab = Vocab::new();
    let dl = match parse_ontology(&text, &mut vocab) {
        Ok(dl) => dl,
        Err(e) => {
            eprintln!("gomq-sql: cannot parse ontology: {e}");
            std::process::exit(1);
        }
    };
    let o = to_gf(&dl);
    let Some(query) = vocab.find_rel(&cli.query) else {
        eprintln!(
            "gomq-sql: query relation {:?} does not occur in the ontology",
            cli.query
        );
        std::process::exit(1);
    };
    let plan = match OmqPlan::compile(&o, query, &mut vocab) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("gomq-sql: {e}");
            std::process::exit(1);
        }
    };
    let sql = match &plan.sql {
        Ok(sql) => sql,
        Err(e) => {
            // The typed refusal: same verdict the serving layer reports
            // as "status": "non-rewritable-to-sql".
            eprintln!("gomq-sql: non-rewritable-to-sql: {e}");
            eprintln!(
                "gomq-sql: (zone: {}; the native backend of gomq-serve still answers this plan)",
                plan.report.zone
            );
            std::process::exit(1);
        }
    };
    print!("{}", sql.sql);
    if !cli.execute {
        return;
    }
    let abox_text = cli.abox.as_deref().map(read_input).unwrap_or_default();
    let abox = match parse_instance(&abox_text, &mut vocab) {
        Ok(abox) => abox,
        Err(e) => {
            eprintln!("gomq-sql: cannot parse ABox: {e}");
            std::process::exit(1);
        }
    };
    let indexed = IndexedInstance::from_interpretation(&abox);
    let answers = match gomq_engine::backend::sql::eval_sql_budgeted(
        sql,
        &indexed,
        &vocab,
        &Budget::UNLIMITED,
    ) {
        Ok(answers) => answers,
        Err(EngineError::Overloaded(e)) => {
            eprintln!("gomq-sql: execution overloaded: {e}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("gomq-sql: execution failed: {e}");
            std::process::exit(1);
        }
    };
    println!("-- {} answer row(s):", answers.len());
    for row in &answers {
        let cells: Vec<String> = row.iter().map(|t| t.display(&vocab).to_string()).collect();
        println!("-- ({})", cells.join(", "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> impl Iterator<Item = String> {
        items
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn full_command_line_resolves() {
        let cli = resolve_args(strs(&[
            "--ontology",
            "o.dl",
            "--query",
            "C",
            "--abox",
            "a.abox",
            "--execute",
        ]))
        .unwrap();
        assert_eq!(cli.ontology, "o.dl");
        assert_eq!(cli.query, "C");
        assert_eq!(cli.abox.as_deref(), Some("a.abox"));
        assert!(cli.execute);
    }

    #[test]
    fn missing_inputs_are_usage_errors() {
        assert_eq!(
            resolve_args(strs(&["--query", "C"])).unwrap_err(),
            "--ontology FILE is required"
        );
        assert_eq!(
            resolve_args(strs(&["--ontology", "o.dl"])).unwrap_err(),
            "--query REL is required"
        );
        assert_eq!(
            resolve_args(strs(&["--ontology"])).unwrap_err(),
            "--ontology needs a file path"
        );
        assert_eq!(
            resolve_args(strs(&[
                "--ontology",
                "o.dl",
                "--query",
                "C",
                "--frobnicate"
            ]))
            .unwrap_err(),
            "unknown argument: --frobnicate"
        );
    }

    #[test]
    fn abox_without_execute_is_refused() {
        assert_eq!(
            resolve_args(strs(&[
                "--ontology",
                "o.dl",
                "--query",
                "C",
                "--abox",
                "a.abox"
            ]))
            .unwrap_err(),
            "--abox is only meaningful with --execute"
        );
    }

    #[test]
    fn help_short_circuits_required_flags() {
        assert!(resolve_args(strs(&["--help"])).unwrap().help);
    }
}
