//! `gomq-bench`: an open-loop load generator for `gomq-serve --listen`.
//!
//! Drives a running listener with a seeded, mixed OMQ/session workload
//! at a fixed arrival rate across N concurrent connections, and records
//! latency percentiles (p50/p99/p999) and throughput per concurrency
//! level into a JSON report (`BENCH_serve.json` by default).
//!
//! The generator is *open-loop*: every request has a scheduled send
//! instant (`start + i/rate`) independent of how fast the server
//! answers, and latency is measured from that **scheduled** instant to
//! response receipt — so server-side queueing shows up in the tail
//! percentiles instead of silently throttling the offered load
//! (coordinated omission).
//!
//! Every response is validated: it must parse as JSON, carry a
//! `"status"`, and echo the request's `"id"` in order. Lost or
//! malformed responses fail the run (nonzero exit); `"overloaded"` and
//! `"error"` statuses are tallied but tolerated, so the harness can
//! also drive chaos-enabled servers.
//!
//! `gomq-bench --validate FILE` re-reads a report and checks its
//! structure, giving CI a dependency-free "the artifact parses" gate.

use gomq_engine::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const USAGE: &str = "gomq-bench — open-loop JSONL load generator for gomq-serve --listen

Usage: gomq-bench --addr ADDR [--rate N] [--duration-ms N] [--conns LIST]
                  [--session-frac-pct N] [--assert-frac-pct N] [--seed N]
                  [--target primary|replica] [--out FILE]
       gomq-bench --validate FILE

  --addr ADDR          the gomq-serve listener, e.g. 127.0.0.1:7401
  --target KIND        what the address points at (default primary). With
                       \"replica\" the session slice of the workload is all
                       \"session\": true queries — a read replica refuses
                       asserts — and every scenario in the report carries a
                       \"target\" label
  --rate N             offered load in requests/second, spread across the
                       connections (default 200)
  --duration-ms N      length of each scenario in milliseconds (default 2000)
  --conns LIST         comma-separated concurrency levels; one scenario is
                       run per level (default 1,4)
  --session-frac-pct N percentage of requests that are session traffic
                       (asserts + session queries) instead of one-shot OMQ
                       evaluation (default 25)
  --assert-frac-pct N  within session traffic, percentage that are asserts;
                       the rest are \"session\": true queries (default 70).
                       Low values make a query-heavy stream that shows off
                       maintained views; high values stress maintenance
                       itself
  --seed N             workload RNG seed — same seed, same request stream
                       (default 42)
  --out FILE           where to write the JSON report (default
                       BENCH_serve.json)
  --validate FILE      instead of benching, parse FILE and verify it is a
                       well-formed report with zero lost/malformed
                       responses; exit 0/1

Exit status is nonzero if any response is lost, fails to parse, echoes
the wrong id, or a connection errors. \"overloaded\"/\"error\" statuses
are tallied in the report but do not fail the run.
";

fn usage_error(message: &str) -> ! {
    eprintln!("gomq-bench: {message}");
    eprintln!("run gomq-bench --help for usage");
    std::process::exit(2);
}

fn numeric(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    let Some(value) = args.next() else {
        usage_error(&format!("{flag} needs a non-negative integer"));
    };
    match value.parse::<u64>() {
        Ok(n) => n,
        Err(_) => usage_error(&format!(
            "{flag} needs a non-negative integer, got {value:?}"
        )),
    }
}

/// splitmix64 — tiny, seedable, good enough to shuffle a workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// The OMQ pool: a few distinct (ontology, query) pairs so the plan
/// cache sees hits *and* competition, with ABoxes varied per request.
const OMQS: &[(&str, &str)] = &[
    ("A sub B", "B"),
    (r"Manager sub Employee\nEmployee sub Staff", "Staff"),
    (r"A sub B\nB sub C", "C"),
];

/// One request line for sequence number `seq` on connection `conn`.
fn gen_request(
    rng: &mut Rng,
    conn: usize,
    seq: usize,
    session_frac_pct: u64,
    assert_frac_pct: u64,
    replica: bool,
) -> String {
    let id = format!("c{conn}-{seq}");
    if rng.below(100) < session_frac_pct {
        // A read replica refuses writes, so against a replica the whole
        // session slice turns into "session": true queries. The assert
        // draw still happens, keeping the RNG stream aligned with a
        // primary-targeted run of the same seed.
        if rng.below(100) < assert_frac_pct && !replica {
            let k = rng.below(50);
            format!(r#"{{"id": "{id}", "op": "assert", "abox": "Manager(m{k})\nStaff(s{k})"}}"#)
        } else {
            let (ontology, query) = OMQS[1];
            format!(
                r#"{{"id": "{id}", "ontology": "{ontology}", "query": "{query}", "session": true}}"#
            )
        }
    } else {
        let (ontology, query) = OMQS[rng.below(OMQS.len() as u64) as usize];
        let k = rng.below(1000);
        let abox = match query {
            "B" => format!("A(c{k})"),
            "Staff" => format!(r"Manager(m{k})\nEmployee(e{k})"),
            _ => format!(r"A(d{k})\nB(e{k})"),
        };
        format!(
            r#"{{"id": "{id}", "ontology": "{ontology}", "query": "{query}", "abox": "{abox}"}}"#
        )
    }
}

/// What one connection observed: per-request latencies and the tallied
/// response statuses.
#[derive(Default)]
struct ConnResult {
    latencies_us: Vec<u64>,
    statuses: Vec<(String, u64)>,
    sent: u64,
    received: u64,
    malformed: u64,
    error: Option<String>,
}

impl ConnResult {
    fn tally(&mut self, status: &str) {
        if let Some((_, n)) = self.statuses.iter_mut().find(|(s, _)| s == status) {
            *n += 1;
        } else {
            self.statuses.push((status.to_owned(), 1));
        }
    }

    fn failed(message: String) -> ConnResult {
        ConnResult {
            error: Some(message),
            ..ConnResult::default()
        }
    }
}

/// One connection's slice of the open-loop schedule: requests `conn`,
/// `conn + conns`, `conn + 2*conns`, … of the global stream, each sent
/// at `start + i * interval`.
#[derive(Clone, Copy)]
struct ConnPlan {
    start: Instant,
    interval: Duration,
    conn: usize,
    conns: usize,
    total: usize,
    seed: u64,
    session_frac_pct: u64,
    assert_frac_pct: u64,
    replica: bool,
}

/// Runs one connection's slice of the open-loop schedule.
fn run_connection(addr: &str, plan: ConnPlan) -> ConnResult {
    let ConnPlan {
        start,
        interval,
        conn,
        conns,
        total,
        seed,
        session_frac_pct,
        assert_frac_pct,
        replica,
    } = plan;
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return ConnResult::failed(format!("connect {addr}: {e}")),
    };
    let _ = stream.set_nodelay(true);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => return ConnResult::failed(format!("clone socket: {e}")),
    };
    // The reader runs concurrently so a slow response never delays the
    // *sending* schedule (that would be closed-loop coordination).
    let reader = std::thread::spawn(move || -> Vec<(Instant, String)> {
        let mut responses = Vec::new();
        let mut lines = BufReader::new(read_half);
        loop {
            let mut line = String::new();
            match lines.read_line(&mut line) {
                Ok(0) | Err(_) => return responses,
                Ok(_) => responses.push((Instant::now(), line.trim_end().to_owned())),
            }
        }
    });

    // Each connection derives its own RNG stream from (seed, conn) so
    // the workload is reproducible regardless of thread interleaving.
    let mut rng = Rng(seed ^ (conn as u64).wrapping_mul(0xa076_1d64_78bd_642f));
    let mut result = ConnResult::default();
    let mut writer = stream;
    let mut scheduled = Vec::new();
    let mut seq = 0usize;
    let mut global = conn;
    while global < total {
        let at = start + interval * global as u32;
        if let Some(wait) = at.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let line = gen_request(
            &mut rng,
            conn,
            seq,
            session_frac_pct,
            assert_frac_pct,
            replica,
        );
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| {
            writer.write_all(b"\n")?;
            writer.flush()
        }) {
            result.error = Some(format!("send: {e}"));
            break;
        }
        scheduled.push((at, format!("c{conn}-{seq}")));
        result.sent += 1;
        seq += 1;
        global += conns;
    }
    // Half-close: the server answers everything already received, then
    // closes, which ends the reader at EOF.
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let responses = reader.join().unwrap_or_default();

    result.received = responses.len() as u64;
    for ((at, id), (received, line)) in scheduled.iter().zip(&responses) {
        match json::parse(line) {
            Ok(Json::Obj(obj)) => {
                let status = obj.get("status").and_then(Json::as_str);
                let echoed = obj.get("id").and_then(Json::as_str);
                match (status, echoed) {
                    (Some(status), Some(echoed)) if echoed == id => {
                        result.tally(status);
                        let latency = received.saturating_duration_since(*at);
                        result.latencies_us.push(latency.as_micros() as u64);
                    }
                    _ => result.malformed += 1,
                }
            }
            _ => result.malformed += 1,
        }
    }
    result
}

/// One concurrency level's aggregated outcome.
struct Scenario {
    target: &'static str,
    conns: usize,
    offered: usize,
    sent: u64,
    received: u64,
    lost: u64,
    malformed: u64,
    statuses: Vec<(String, u64)>,
    latencies_us: Vec<u64>,
    wall: Duration,
    errors: Vec<String>,
}

/// The workload knobs shared by every scenario of a run.
#[derive(Clone, Copy)]
struct Workload {
    rate: u64,
    duration_ms: u64,
    seed: u64,
    session_frac_pct: u64,
    assert_frac_pct: u64,
    target: &'static str,
}

fn run_scenario(addr: &str, conns: usize, w: Workload) -> Scenario {
    let total = ((w.rate * w.duration_ms) / 1000).max(conns as u64) as usize;
    let interval = Duration::from_secs_f64(1.0 / w.rate as f64);
    let start = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.to_owned();
            let plan = ConnPlan {
                start,
                interval,
                conn: c,
                conns,
                total,
                seed: w.seed,
                session_frac_pct: w.session_frac_pct,
                assert_frac_pct: w.assert_frac_pct,
                replica: w.target == "replica",
            };
            std::thread::spawn(move || run_connection(&addr, plan))
        })
        .collect();
    let mut scenario = Scenario {
        target: w.target,
        conns,
        offered: total,
        sent: 0,
        received: 0,
        lost: 0,
        malformed: 0,
        statuses: Vec::new(),
        latencies_us: Vec::new(),
        wall: Duration::ZERO,
        errors: Vec::new(),
    };
    for worker in workers {
        let conn = worker
            .join()
            .unwrap_or_else(|_| ConnResult::failed("connection thread panicked".into()));
        scenario.sent += conn.sent;
        scenario.received += conn.received;
        scenario.malformed += conn.malformed;
        scenario.latencies_us.extend(conn.latencies_us);
        for (status, n) in conn.statuses {
            if let Some((_, total)) = scenario.statuses.iter_mut().find(|(s, _)| *s == status) {
                *total += n;
            } else {
                scenario.statuses.push((status, n));
            }
        }
        if let Some(e) = conn.error {
            scenario.errors.push(e);
        }
    }
    scenario.wall = start.elapsed();
    scenario.lost = scenario.sent.saturating_sub(scenario.received);
    scenario.latencies_us.sort_unstable();
    scenario.statuses.sort();
    scenario
}

/// `q` in [0, 1]; nearest-rank on the sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn scenario_json(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str("    {");
    out.push_str(&format!(
        "\"target\": \"{}\", \"conns\": {}, \"offered\": {}, \"sent\": {}, \
         \"received\": {}, \"lost\": {}, \"malformed\": {}, ",
        s.target, s.conns, s.offered, s.sent, s.received, s.lost, s.malformed
    ));
    out.push_str("\"statuses\": {");
    for (i, (status, n)) in s.statuses.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_str(&mut out, status);
        out.push_str(&format!(": {n}"));
    }
    out.push_str("}, ");
    let l = &s.latencies_us;
    out.push_str(&format!(
        "\"latency_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}, ",
        percentile(l, 0.50),
        percentile(l, 0.99),
        percentile(l, 0.999),
        l.last().copied().unwrap_or(0),
    ));
    let secs = s.wall.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "\"wall_ms\": {}, \"throughput_rps\": {:.1}",
        s.wall.as_millis(),
        s.received as f64 / secs
    ));
    out.push('}');
    out
}

fn report_json(addr: &str, w: Workload, scenarios: &[Scenario]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"gomq-serve\",\n  \"addr\": ");
    json::write_str(&mut out, addr);
    out.push_str(&format!(
        ",\n  \"target\": \"{}\",\n  \
         \"rate_hz\": {},\n  \"duration_ms\": {},\n  \
         \"seed\": {},\n  \"session_frac_pct\": {},\n  \
         \"assert_frac_pct\": {},\n  \"scenarios\": [\n",
        w.target, w.rate, w.duration_ms, w.seed, w.session_frac_pct, w.assert_frac_pct
    ));
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&scenario_json(s));
        if i + 1 < scenarios.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `--validate FILE` gate: the report parses, has ≥1 scenario, each
/// with percentiles + throughput and zero lost/malformed responses.
fn validate(path: &str) -> ! {
    let fail = |message: String| -> ! {
        eprintln!("gomq-bench: {path}: {message}");
        std::process::exit(1);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(format!("cannot read: {e}")),
    };
    let parsed = match json::parse(&text) {
        Ok(p) => p,
        Err(e) => fail(format!("not valid JSON: {e}")),
    };
    let Json::Obj(report) = parsed else {
        fail("report is not a JSON object".into())
    };
    let Some(scenarios) = report.get("scenarios").and_then(Json::as_arr) else {
        fail("missing \"scenarios\" array".into())
    };
    if scenarios.is_empty() {
        fail("empty \"scenarios\" array".into());
    }
    let num = |obj: &std::collections::BTreeMap<String, Json>, key: &str| -> f64 {
        match obj.get(key) {
            Some(Json::Num(n)) => *n,
            _ => fail(format!("scenario missing numeric {key:?}")),
        }
    };
    for scenario in scenarios {
        let Json::Obj(s) = scenario else {
            fail("scenario is not an object".into())
        };
        if num(s, "lost") != 0.0 {
            fail("scenario reports lost responses".into());
        }
        if num(s, "malformed") != 0.0 {
            fail("scenario reports malformed responses".into());
        }
        if num(s, "received") <= 0.0 {
            fail("scenario received no responses".into());
        }
        let Some(Json::Obj(latency)) = s.get("latency_us") else {
            fail("scenario missing \"latency_us\"".into())
        };
        for key in ["p50", "p99", "p999"] {
            num(latency, key);
        }
        num(s, "throughput_rps");
        num(s, "conns");
        if let Some(target) = s.get("target") {
            match target.as_str() {
                Some("primary" | "replica") => {}
                _ => fail("scenario \"target\" must be \"primary\" or \"replica\"".into()),
            }
        }
    }
    eprintln!(
        "gomq-bench: {path}: valid report, {} scenario(s)",
        scenarios.len()
    );
    std::process::exit(0);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut rate = 200u64;
    let mut duration_ms = 2000u64;
    let mut conns_list = vec![1usize, 4];
    let mut session_frac_pct = 25u64;
    let mut assert_frac_pct = 70u64;
    let mut seed = 42u64;
    let mut target: &'static str = "primary";
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--validate" => {
                let Some(path) = args.next() else {
                    usage_error("--validate needs a file path");
                };
                validate(&path);
            }
            "--addr" => {
                let Some(a) = args.next() else {
                    usage_error("--addr needs an address, e.g. 127.0.0.1:7401");
                };
                addr = Some(a);
            }
            "--rate" => match numeric(&mut args, "--rate") {
                0 => usage_error("--rate must be at least 1"),
                n => rate = n,
            },
            "--duration-ms" => match numeric(&mut args, "--duration-ms") {
                0 => usage_error("--duration-ms must be at least 1"),
                n => duration_ms = n,
            },
            "--conns" => {
                let Some(list) = args.next() else {
                    usage_error("--conns needs a comma-separated list, e.g. 1,4,16");
                };
                conns_list = list
                    .split(',')
                    .map(|part| match part.trim().parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => usage_error(&format!("bad --conns entry {part:?}")),
                    })
                    .collect();
                if conns_list.is_empty() {
                    usage_error("--conns needs at least one level");
                }
            }
            "--session-frac-pct" => match numeric(&mut args, "--session-frac-pct") {
                n if n > 100 => usage_error("--session-frac-pct must be ≤ 100"),
                n => session_frac_pct = n,
            },
            "--assert-frac-pct" => match numeric(&mut args, "--assert-frac-pct") {
                n if n > 100 => usage_error("--assert-frac-pct must be ≤ 100"),
                n => assert_frac_pct = n,
            },
            "--seed" => seed = numeric(&mut args, "--seed"),
            "--target" => {
                target = match args.next().as_deref() {
                    Some("primary") => "primary",
                    Some("replica") => "replica",
                    other => usage_error(&format!(
                        "--target must be primary or replica, got {other:?}"
                    )),
                };
            }
            "--out" => {
                let Some(path) = args.next() else {
                    usage_error("--out needs a file path");
                };
                out_path = path;
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = addr else {
        usage_error("--addr is required (the gomq-serve --listen address)");
    };

    let workload = Workload {
        rate,
        duration_ms,
        seed,
        session_frac_pct,
        assert_frac_pct,
        target,
    };
    let mut scenarios = Vec::new();
    let mut failures = 0u64;
    for &conns in &conns_list {
        eprintln!(
            "gomq-bench: {addr} ({target}): {conns} conn(s), {rate} req/s offered for \
             {duration_ms} ms (seed {seed}, {session_frac_pct}% session traffic, \
             {assert_frac_pct}% of it asserts)"
        );
        let s = run_scenario(&addr, conns, workload);
        let l = &s.latencies_us;
        eprintln!(
            "gomq-bench:   sent {} received {} lost {} malformed {} | p50 {}us p99 {}us \
             p999 {}us | {:.1} req/s",
            s.sent,
            s.received,
            s.lost,
            s.malformed,
            percentile(l, 0.50),
            percentile(l, 0.99),
            percentile(l, 0.999),
            s.received as f64 / s.wall.as_secs_f64().max(1e-9),
        );
        for e in &s.errors {
            eprintln!("gomq-bench:   connection error: {e}");
        }
        failures += s.lost + s.malformed + s.errors.len() as u64;
        scenarios.push(s);
    }
    let report = report_json(&addr, workload, &scenarios);
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("gomq-bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("gomq-bench: report written to {out_path}");
    if failures > 0 {
        eprintln!("gomq-bench: FAILED: {failures} lost/malformed/errored responses");
        std::process::exit(1);
    }
}
