//! The plan cache: canonical-hash-keyed storage of compiled plans.

use crate::plan::{EngineError, OmqPlan};
use gomq_core::{RelId, Vocab};
use gomq_logic::GfOntology;
use gomq_rewriting::canonical_omq_hash;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread-safe cache of compiled [`OmqPlan`]s keyed by
/// [`canonical_omq_hash`].
///
/// Failed compilations are *negatively* cached too (keyed the same
/// way), so a stream of requests posing a non-rewritable OMQ does not
/// re-run type elimination every time.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<u64, Result<Arc<OmqPlan>, EngineError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks the OMQ up by canonical hash, compiling (and storing the
    /// outcome) on a miss. The boolean is `true` on a cache hit.
    ///
    /// The same `vocab` must be used for every call on one cache: plans
    /// hold interned relation ids.
    pub fn get_or_compile(
        &self,
        o: &GfOntology,
        query: RelId,
        vocab: &mut Vocab,
    ) -> (Result<Arc<OmqPlan>, EngineError>, bool) {
        let key = canonical_omq_hash(o, query, vocab);
        if let Some(cached) = self.plans.lock().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (cached.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = OmqPlan::compile(o, query, vocab).map(Arc::new);
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .insert(key, outcome.clone());
        (outcome, false)
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (compilations attempted) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries (successful and negative).
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;

    #[test]
    fn second_lookup_is_a_hit_with_identical_plan() {
        let mut v = Vocab::new();
        let cache = PlanCache::new();
        let dl = parse_ontology("A sub B\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let b = v.find_rel("B").unwrap();
        let (p1, hit1) = cache.get_or_compile(&o, b, &mut v);
        let (p2, hit2) = cache.get_or_compile(&o, b, &mut v);
        assert!(!hit1);
        assert!(hit2);
        let (p1, p2) = (p1.unwrap(), p2.unwrap());
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        // Re-parsing the same text into the same vocab hits as well.
        let dl2 = parse_ontology("A sub B\n", &mut v).unwrap();
        let o2 = to_gf(&dl2);
        let (p3, hit3) = cache.get_or_compile(&o2, b, &mut v);
        assert!(hit3);
        assert!(Arc::ptr_eq(&p1, &p3.unwrap()));
    }

    #[test]
    fn failures_are_negatively_cached() {
        let mut v = Vocab::new();
        let cache = PlanCache::new();
        let dl = parse_ontology("A sub ex R.B\n", &mut v).unwrap();
        let mut o = to_gf(&dl);
        o.transitive.insert(v.find_rel("R").unwrap());
        let b = v.find_rel("B").unwrap();
        let (r1, hit1) = cache.get_or_compile(&o, b, &mut v);
        let (r2, hit2) = cache.get_or_compile(&o, b, &mut v);
        assert!(r1.is_err() && r2.is_err());
        assert!(!hit1);
        assert!(hit2, "the failure itself must be cached");
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_queries_get_distinct_plans() {
        let mut v = Vocab::new();
        let cache = PlanCache::new();
        let dl = parse_ontology("A sub B\nB sub C\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let b = v.find_rel("B").unwrap();
        let c = v.find_rel("C").unwrap();
        cache.get_or_compile(&o, b, &mut v).0.unwrap();
        let (_, hit) = cache.get_or_compile(&o, c, &mut v);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }
}
