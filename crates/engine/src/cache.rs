//! The plan cache: verified, single-flight, bounded LRU storage of
//! compiled plans.
//!
//! Three hardening guarantees on top of a plain hash map:
//!
//! 1. **Collision safety.** Entries are *keyed* by the 64-bit
//!    [`canonical_omq_hash`] but *verified* against the full canonical
//!    OMQ text on every lookup, so two OMQs whose hashes collide can
//!    never be served each other's plan (which would mean silently
//!    wrong certain answers). Colliding entries coexist in one bucket.
//! 2. **Single flight.** A miss installs an in-flight marker before
//!    compiling outside the lock; concurrent requests for the same OMQ
//!    wait on a condvar for the leader's result instead of compiling
//!    the same plan N times. Compilation panics are caught, reported as
//!    [`EngineError::Internal`], and *not* cached — the marker is
//!    removed so a later request retries.
//! 3. **Bounded size.** The cache holds at most `capacity` entries;
//!    overflow evicts the least-recently-used ready entry (in-flight
//!    markers are never evicted) and counts the eviction.
//!
//! Failed compilations are *negatively* cached (keyed the same way), so
//! a stream of requests posing a non-rewritable OMQ does not re-run
//! type elimination every time. All internal locks recover from
//! poisoning: one panicked request cannot permanently kill the serving
//! loop.

use crate::plan::{EngineError, OmqPlan};
use gomq_core::{RelId, Vocab};
use gomq_logic::GfOntology;
use gomq_rewriting::{canonical_omq_text, fnv1a};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The outcome of a plan lookup: the shared plan, or the (cached)
/// compilation error.
pub type PlanOutcome = Result<Arc<OmqPlan>, EngineError>;

/// Default number of cached plans (positive and negative entries).
pub const DEFAULT_CAPACITY: usize = 256;

/// Locks a mutex, recovering the guard from a poisoned lock. A poisoned
/// mutex means some request panicked mid-update; the cache's state is
/// still structurally sound (every transition is a single insert/replace
/// under the lock), so serving must continue rather than panic forever.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders a caught panic payload as a message string.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// One cached slot: being compiled right now, or done.
enum Slot {
    /// Some request is compiling this OMQ; wait for the condvar.
    InFlight,
    /// The compilation outcome (success or negatively cached failure).
    Ready(PlanOutcome),
}

/// One cache entry: the full canonical text it was keyed under (the
/// collision check), an LRU stamp, and the slot.
struct Entry {
    text: String,
    last_used: u64,
    slot: Slot,
}

/// Mutable cache state behind the one lock.
#[derive(Default)]
struct CacheState {
    /// Hash → colliding entries (almost always a single-element bucket).
    entries: HashMap<u64, Vec<Entry>>,
    /// Monotone LRU clock.
    tick: u64,
    /// Total entries across all buckets.
    len: usize,
}

/// A thread-safe, verified, single-flight, bounded LRU cache of
/// compiled [`OmqPlan`]s keyed by [`canonical_omq_hash`]
/// (`fnv1a(canonical_omq_text)`) and verified against the full text.
///
/// [`canonical_omq_hash`]: gomq_rewriting::canonical_omq_hash
pub struct PlanCache {
    state: Mutex<CacheState>,
    ready: Condvar,
    capacity: usize,
    hasher: fn(&str) -> u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inflight_waits: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

fn default_hasher(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

impl PlanCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_hasher(capacity, default_hasher)
    }

    /// An empty cache with an explicit key-hash function. The production
    /// hasher is FNV-1a over the canonical text; tests inject a constant
    /// function to force every OMQ into one bucket and prove that the
    /// full-text verification never serves a colliding OMQ the wrong
    /// plan.
    pub fn with_capacity_and_hasher(capacity: usize, hasher: fn(&str) -> u64) -> Self {
        PlanCache {
            state: Mutex::new(CacheState::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            hasher,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
        }
    }

    /// Looks the OMQ up by canonical hash + full canonical text,
    /// compiling (and storing the outcome) on a miss. The boolean is
    /// `true` on a cache hit.
    ///
    /// Concurrent callers requesting the same new OMQ compile it once:
    /// the first becomes the leader, the rest block until the leader's
    /// outcome is published. The same `vocab` must be used for every
    /// call on one cache: plans hold interned relation ids.
    pub fn get_or_compile(
        &self,
        o: &GfOntology,
        query: RelId,
        vocab: &Mutex<Vocab>,
    ) -> (PlanOutcome, bool) {
        let text = {
            let v = lock_recover(vocab);
            canonical_omq_text(o, query, &v)
        };
        let key = (self.hasher)(&text);

        let mut state = lock_recover(&self.state);
        let mut waited = false;
        loop {
            let st = &mut *state;
            st.tick += 1;
            let tick = st.tick;
            let bucket = st.entries.entry(key).or_default();
            match bucket.iter_mut().find(|e| e.text == text) {
                Some(entry) => {
                    entry.last_used = tick;
                    if let Slot::Ready(outcome) = &entry.slot {
                        let outcome = outcome.clone();
                        drop(state);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (outcome, true);
                    }
                    // Slot::InFlight: fall through and wait below.
                }
                None => {
                    bucket.push(Entry {
                        text: text.clone(),
                        last_used: tick,
                        slot: Slot::InFlight,
                    });
                    st.len += 1;
                    break;
                }
            }
            if !waited {
                waited = true;
                self.inflight_waits.fetch_add(1, Ordering::Relaxed);
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        drop(state);
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Leader path: compile outside the cache lock (the vocab lock is
        // held only for the compilation itself), with panic isolation.
        let compiled = catch_unwind(AssertUnwindSafe(|| {
            gomq_core::faults::point(gomq_core::faults::CACHE_COMPILE);
            let mut v = lock_recover(vocab);
            OmqPlan::compile(o, query, &mut v)
        }));

        let mut state = lock_recover(&self.state);
        let outcome = match compiled {
            Ok(result) => {
                let outcome = result.map(Arc::new);
                if let Some(entry) = state
                    .entries
                    .get_mut(&key)
                    .and_then(|b| b.iter_mut().find(|e| e.text == text))
                {
                    entry.slot = Slot::Ready(outcome.clone());
                }
                self.evict_over_capacity(&mut state, key, &text);
                outcome
            }
            Err(payload) => {
                // Panics are not cached: drop the in-flight marker so a
                // later request retries, and surface a structured error.
                let st = &mut *state;
                if let Some(bucket) = st.entries.get_mut(&key) {
                    if let Some(i) = bucket.iter().position(|e| e.text == text) {
                        bucket.remove(i);
                        st.len -= 1;
                    }
                    if bucket.is_empty() {
                        st.entries.remove(&key);
                    }
                }
                Err(EngineError::Internal(format!(
                    "plan compilation panicked: {}",
                    panic_message(payload)
                )))
            }
        };
        drop(state);
        self.ready.notify_all();
        (outcome, false)
    }

    /// Evicts least-recently-used ready entries until the size respects
    /// the capacity. The just-inserted `(keep_key, keep_text)` entry and
    /// in-flight markers are never evicted.
    fn evict_over_capacity(&self, state: &mut CacheState, keep_key: u64, keep_text: &str) {
        while state.len > self.capacity {
            let mut victim: Option<(u64, usize, u64)> = None; // (key, index, stamp)
            for (&key, bucket) in state.entries.iter() {
                for (i, entry) in bucket.iter().enumerate() {
                    let protected = matches!(entry.slot, Slot::InFlight)
                        || (key == keep_key && entry.text == keep_text);
                    if protected {
                        continue;
                    }
                    if victim.is_none_or(|(_, _, stamp)| entry.last_used < stamp) {
                        victim = Some((key, i, entry.last_used));
                    }
                }
            }
            let Some((key, i, _)) = victim else {
                break; // everything is in flight or protected
            };
            let bucket = state.entries.get_mut(&key).expect("victim bucket exists");
            bucket.remove(i);
            if bucket.is_empty() {
                state.entries.remove(&key);
            }
            state.len -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Maximum number of cached entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (compilations attempted) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of entries evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of lookups that waited for another request's in-flight
    /// compilation instead of compiling themselves.
    pub fn inflight_waits(&self) -> u64 {
        self.inflight_waits.load(Ordering::Relaxed)
    }

    /// Number of cached entries (successful and negative).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        let mut state = lock_recover(&self.state);
        // Keep in-flight markers: their leaders will still publish.
        for bucket in state.entries.values_mut() {
            bucket.retain(|e| matches!(e.slot, Slot::InFlight));
        }
        state.entries.retain(|_, b| !b.is_empty());
        state.len = state.entries.values().map(Vec::len).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;

    fn parse_in(vocab: &Mutex<Vocab>, text: &str) -> GfOntology {
        let mut v = lock_recover(vocab);
        to_gf(&parse_ontology(text, &mut v).unwrap())
    }

    fn rel(vocab: &Mutex<Vocab>, name: &str) -> RelId {
        lock_recover(vocab).find_rel(name).unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit_with_identical_plan() {
        let v = Mutex::new(Vocab::new());
        let cache = PlanCache::new();
        let o = parse_in(&v, "A sub B\n");
        let b = rel(&v, "B");
        let (p1, hit1) = cache.get_or_compile(&o, b, &v);
        let (p2, hit2) = cache.get_or_compile(&o, b, &v);
        assert!(!hit1);
        assert!(hit2);
        let (p1, p2) = (p1.unwrap(), p2.unwrap());
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        // Re-parsing the same text into the same vocab hits as well.
        let o2 = parse_in(&v, "A sub B\n");
        let (p3, hit3) = cache.get_or_compile(&o2, b, &v);
        assert!(hit3);
        assert!(Arc::ptr_eq(&p1, &p3.unwrap()));
    }

    #[test]
    fn failures_are_negatively_cached() {
        let v = Mutex::new(Vocab::new());
        let cache = PlanCache::new();
        let mut o = parse_in(&v, "A sub ex R.B\n");
        o.transitive.insert(rel(&v, "R"));
        let b = rel(&v, "B");
        let (r1, hit1) = cache.get_or_compile(&o, b, &v);
        let (r2, hit2) = cache.get_or_compile(&o, b, &v);
        assert!(r1.is_err() && r2.is_err());
        assert!(!hit1);
        assert!(hit2, "the failure itself must be cached");
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_queries_get_distinct_plans() {
        let v = Mutex::new(Vocab::new());
        let cache = PlanCache::new();
        let o = parse_in(&v, "A sub B\nB sub C\n");
        let b = rel(&v, "B");
        let c = rel(&v, "C");
        cache.get_or_compile(&o, b, &v).0.unwrap();
        let (_, hit) = cache.get_or_compile(&o, c, &v);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    /// The collision regression: with a constant hash function *every*
    /// OMQ collides, and only the full-text verification keeps each OMQ
    /// on its own plan.
    #[test]
    fn forced_hash_collision_never_serves_the_wrong_plan() {
        let v = Mutex::new(Vocab::new());
        let cache = PlanCache::with_capacity_and_hasher(8, |_| 0x42);
        let o1 = parse_in(&v, "A sub B\n");
        let o2 = parse_in(&v, "X sub Y\n");
        let b = rel(&v, "B");
        let y = rel(&v, "Y");
        let (p1, hit1) = cache.get_or_compile(&o1, b, &v);
        let (p2, hit2) = cache.get_or_compile(&o2, y, &v);
        let (p1, p2) = (p1.unwrap(), p2.unwrap());
        // Both colliding OMQs compiled (no false hit) and kept apart.
        assert!(!hit1 && !hit2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert_ne!(p1.canonical_text, p2.canonical_text);
        assert_eq!(p1.query, b);
        assert_eq!(p2.query, y);
        // Re-lookups under the colliding key select by text, each
        // returning exactly its own plan.
        let (again1, h1) = cache.get_or_compile(&o1, b, &v);
        let (again2, h2) = cache.get_or_compile(&o2, y, &v);
        assert!(h1 && h2);
        assert!(Arc::ptr_eq(&p1, &again1.unwrap()));
        assert!(Arc::ptr_eq(&p2, &again2.unwrap()));
    }

    #[test]
    fn lru_eviction_respects_the_cap_and_recency() {
        let v = Mutex::new(Vocab::new());
        let cache = PlanCache::with_capacity(2);
        let o = parse_in(&v, "A sub B\nB sub C\nC sub D\n");
        let (b, c, d) = (rel(&v, "B"), rel(&v, "C"), rel(&v, "D"));
        cache.get_or_compile(&o, b, &v).0.unwrap();
        cache.get_or_compile(&o, c, &v).0.unwrap();
        assert_eq!(cache.len(), 2);
        // Touch B so C becomes the LRU victim.
        assert!(cache.get_or_compile(&o, b, &v).1);
        cache.get_or_compile(&o, d, &v).0.unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // B survived (hit); C was evicted (miss, recompiled).
        assert!(cache.get_or_compile(&o, b, &v).1);
        assert!(!cache.get_or_compile(&o, c, &v).1);
    }
}
