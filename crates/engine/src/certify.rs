//! Certificate assembly: turning recorded derivations into the JSON
//! certificates `gomq-cert` verifies.
//!
//! The emitter walks the derivation graph backwards from the answer
//! facts, so a certificate cites only the rules, base facts and
//! derivation steps that actually support an answer — not the whole
//! fixpoint. Steps are emitted in topological order (premises strictly
//! before use), which is exactly the order the standalone verifier
//! checks them in; a citation graph that is cyclic, that reaches a dead
//! fact, or that reaches a derived fact without a recorded witness is
//! an engine bug and surfaces here as an error instead of an invalid
//! certificate.
//!
//! This module is part of the *untrusted* prover. It deliberately
//! shares no code with `gomq-cert` — the verifier has its own JSON
//! parser and its own matching logic, so a bug here is caught there.

use crate::json;
use gomq_core::{FactId, IndexedInstance, RelId, Term, Vocab};
use gomq_datalog::{Derivation, Literal, Rule};
use std::fmt::Write as _;

/// Everything the emitter needs to know about one answered query,
/// independent of which evaluation path produced it.
pub struct CertSource<'a> {
    /// The total instance (base ∪ derived) the ids index into.
    pub instance: &'a IndexedInstance,
    /// The program rules; recorded rule indices point into this slice.
    pub rules: &'a [Rule],
    /// The goal relation.
    pub goal: RelId,
    /// Ids of the (live) goal facts backing the answer tuples.
    pub answer_ids: &'a [u32],
    /// The session position `(last lsn, base fact count)` the answer
    /// was computed at, or `None` for a self-contained request ABox.
    pub snapshot: Option<(u64, u64)>,
}

/// Why certificate assembly failed. Every variant is an engine
/// invariant violation — recorded witnesses are supposed to make these
/// impossible — so callers surface it as an internal error, never as a
/// bad request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertifyError {
    /// A derived fact in the citation graph has no recorded witness.
    MissingWitness(u32),
    /// The citation graph contains a cycle (fact id on the cycle).
    CyclicWitness(u32),
    /// A cited fact is dead in the instance (retracted by maintenance).
    DeadFact(u32),
    /// A recorded rule index is outside the program.
    BadRule(u32, u32),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::MissingWitness(id) => {
                write!(f, "derived fact {id} has no recorded witness")
            }
            CertifyError::CyclicWitness(id) => {
                write!(f, "witness citation graph is cyclic at fact {id}")
            }
            CertifyError::DeadFact(id) => write!(f, "witness cites dead fact {id}"),
            CertifyError::BadRule(id, rule) => {
                write!(f, "fact {id} cites rule {rule} outside the program")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// Assembles the version-1 certificate JSON for `source`.
///
/// `is_base` says whether a fact id is a base (EDB / session) fact —
/// base facts are cited symbolically and never need a witness, *even
/// if* a stale derivation was once recorded for the same id (a kept
/// EDB duplicate of a derived fact is justified by its presence in the
/// store, not by a derivation whose premises may since have died).
/// `derivation` returns the recorded witness of a derived fact.
pub fn emit_certificate<'d>(
    vocab: &Vocab,
    source: &CertSource<'_>,
    is_base: impl Fn(u32) -> bool,
    derivation: impl Fn(u32) -> Option<&'d Derivation>,
) -> Result<String, CertifyError> {
    let store = source.instance.store();
    let n = store.len();

    // Topological sort of the support of the answer ids: iterative DFS
    // with tri-state marks (0 unvisited, 1 in progress, 2 done). The
    // in-progress mark doubles as the cycle detector.
    let mut state = vec![0u8; n];
    let mut base_cited: Vec<u32> = Vec::new();
    let mut step_order: Vec<u32> = Vec::new();
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for &root in source.answer_ids {
        if state[root as usize] == 2 {
            continue;
        }
        stack.push((root, 0));
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            let idx = id as usize;
            if state[idx] == 2 {
                stack.pop();
                continue;
            }
            if !store.is_live(id) {
                return Err(CertifyError::DeadFact(id));
            }
            if is_base(id) {
                state[idx] = 2;
                base_cited.push(id);
                stack.pop();
                continue;
            }
            let d = derivation(id).ok_or(CertifyError::MissingWitness(id))?;
            if *next == 0 {
                state[idx] = 1;
            }
            if let Some(&p) = d.premises.get(*next) {
                *next += 1;
                match state[p as usize] {
                    1 => return Err(CertifyError::CyclicWitness(p)),
                    0 => stack.push((p, 0)),
                    _ => {}
                }
            } else {
                state[idx] = 2;
                step_order.push(id);
                stack.pop();
            }
        }
    }
    base_cited.sort_unstable();

    // Only the rules the steps actually fire go into the certificate;
    // recorded indices are remapped to the compact table (first-use
    // order).
    let mut rule_remap: Vec<Option<u32>> = vec![None; source.rules.len()];
    let mut rule_table: Vec<u32> = Vec::new();
    for &id in &step_order {
        let d = derivation(id).expect("checked during the walk");
        let ri = d.rule as usize;
        if ri >= source.rules.len() {
            return Err(CertifyError::BadRule(id, d.rule));
        }
        if rule_remap[ri].is_none() {
            rule_remap[ri] = Some(rule_table.len() as u32);
            rule_table.push(d.rule);
        }
    }

    let mut out = String::from("{\"v\": 1, \"goal\": ");
    json::write_str(&mut out, vocab.rel_name(source.goal));
    match source.snapshot {
        Some((lsn, base)) => {
            let _ = write!(out, ", \"snapshot\": {{\"lsn\": {lsn}, \"base\": {base}}}");
        }
        None => out.push_str(", \"snapshot\": null"),
    }

    out.push_str(", \"rules\": [");
    for (i, &ri) in rule_table.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_rule(&mut out, vocab, &source.rules[ri as usize]);
    }
    out.push(']');

    out.push_str(", \"base\": [");
    for (i, &id) in base_cited.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{id}, ");
        write_named_fact(
            &mut out,
            vocab,
            store.rel(FactId(id)),
            store.args(FactId(id)),
        );
        out.push(']');
    }
    out.push(']');

    out.push_str(", \"steps\": [");
    for (i, &id) in step_order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let d = derivation(id).expect("checked during the walk");
        let compact = rule_remap[d.rule as usize].expect("remapped above");
        let _ = write!(out, "[{id}, {compact}, [");
        for (j, p) in d.premises.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{p}");
        }
        out.push_str("], ");
        write_named_fact(
            &mut out,
            vocab,
            store.rel(FactId(id)),
            store.args(FactId(id)),
        );
        out.push(']');
    }
    out.push(']');

    out.push_str(", \"answers\": [");
    for (i, &id) in source.answer_ids.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{id}");
        for t in store.args(FactId(id)) {
            out.push_str(", ");
            json::write_str(&mut out, &format!("{}", t.display(vocab)));
        }
        out.push(']');
    }
    out.push_str("]}");
    Ok(out)
}

/// Writes `"Rel", arg...` (no surrounding brackets) with arguments
/// rendered exactly like the response's answer tuples.
fn write_named_fact(out: &mut String, vocab: &Vocab, rel: RelId, args: &[Term]) {
    json::write_str(out, vocab.rel_name(rel));
    for t in args {
        out.push_str(", ");
        json::write_str(out, &format!("{}", t.display(vocab)));
    }
}

/// Writes one rule object. Variables become integer slots, ground
/// terms become strings — the int/string split is what keeps the
/// encoding unambiguous for the verifier.
fn write_rule(out: &mut String, vocab: &Vocab, rule: &Rule) {
    let write_term = |out: &mut String, t: &gomq_datalog::DTerm| match t {
        gomq_datalog::DTerm::Var(v) => {
            let _ = write!(out, "{v}");
        }
        gomq_datalog::DTerm::Ground(g) => {
            json::write_str(out, &format!("{}", g.display(vocab)));
        }
    };
    let write_atom = |out: &mut String, a: &gomq_datalog::DAtom| {
        out.push('[');
        json::write_str(out, vocab.rel_name(a.rel));
        for t in &a.args {
            out.push_str(", ");
            write_term(out, t);
        }
        out.push(']');
    };
    out.push_str("{\"head\": ");
    write_atom(out, &rule.head);
    out.push_str(", \"body\": [");
    let mut first = true;
    for a in rule.positive_atoms() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        write_atom(out, a);
    }
    out.push_str("], \"neq\": [");
    let mut first = true;
    for l in &rule.body {
        if let Literal::Neq(a, b) = l {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push('[');
            write_term(out, a);
            out.push_str(", ");
            write_term(out, b);
            out.push(']');
        }
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Fact;
    use gomq_datalog::{fixpoint_traced, Budget, DAtom, DTerm};

    /// E(a,b), E(b,c) with transitive closure and an inequality-guarded
    /// goal — the same shape as the verifier's own reference test.
    fn tc_setup() -> (Vocab, Vec<Rule>, IndexedInstance, RelId) {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        let rules = vec![
            Rule::new(
                DAtom::vars(t, &[0, 1]),
                vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
            ),
            Rule::new(
                DAtom::vars(t, &[0, 2]),
                vec![
                    Literal::Pos(DAtom::vars(t, &[0, 1])),
                    Literal::Pos(DAtom::vars(e, &[1, 2])),
                ],
            ),
            Rule::new(
                DAtom::vars(g, &[0, 1]),
                vec![
                    Literal::Pos(DAtom::vars(t, &[0, 1])),
                    Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                ],
            ),
        ];
        let a = Term::Const(v.constant("a"));
        let b = Term::Const(v.constant("b"));
        let c = Term::Const(v.constant("c"));
        let mut base = IndexedInstance::new();
        base.insert(Fact::new(e, vec![a, b]));
        base.insert(Fact::new(e, vec![b, c]));
        (v, rules, base, g)
    }

    #[test]
    fn emitted_certificate_verifies_with_gomq_cert() {
        let (v, rules, base, goal) = tc_setup();
        let base_len = base.len() as u32;
        let (total, derivs, _) =
            fixpoint_traced(&rules, &base, &Budget::UNLIMITED).expect("unlimited");
        let answer_ids: Vec<u32> = (0..total.len() as u32)
            .filter(|&i| total.store().rel(FactId(i)) == goal)
            .collect();
        assert!(!answer_ids.is_empty());
        let source = CertSource {
            instance: &total,
            rules: &rules,
            goal,
            answer_ids: &answer_ids,
            snapshot: Some((7, 2)),
        };
        let cert = emit_certificate(
            &v,
            &source,
            |id| id < base_len,
            |id| derivs[id as usize].as_ref(),
        )
        .expect("emits");
        let verified = gomq_cert::verify(&cert).expect("verifies");
        assert_eq!(verified.goal, "goal");
        assert_eq!(verified.base_facts, 2);
        assert_eq!(
            verified.snapshot,
            Some(gomq_cert::Snapshot { lsn: 7, base: 2 })
        );
        let mut tuples = verified.answers.clone();
        tuples.sort();
        assert_eq!(
            tuples,
            vec![
                vec!["a".to_owned(), "b".to_owned()],
                vec!["a".to_owned(), "c".to_owned()],
                vec!["b".to_owned(), "c".to_owned()],
            ]
        );
    }

    #[test]
    fn missing_witness_is_an_internal_error_not_a_bad_certificate() {
        let (v, rules, base, goal) = tc_setup();
        let base_len = base.len() as u32;
        let (total, _, _) = fixpoint_traced(&rules, &base, &Budget::UNLIMITED).expect("unlimited");
        let answer_ids: Vec<u32> = (0..total.len() as u32)
            .filter(|&i| total.store().rel(FactId(i)) == goal)
            .collect();
        let source = CertSource {
            instance: &total,
            rules: &rules,
            goal,
            answer_ids: &answer_ids,
            snapshot: None,
        };
        let got = emit_certificate(&v, &source, |id| id < base_len, |_| None);
        assert!(matches!(got, Err(CertifyError::MissingWitness(_))));
    }

    #[test]
    fn cyclic_witnesses_are_rejected_at_emission() {
        let (v, rules, base, goal) = tc_setup();
        let base_len = base.len() as u32;
        let (total, derivs, _) =
            fixpoint_traced(&rules, &base, &Budget::UNLIMITED).expect("unlimited");
        let answer_ids: Vec<u32> = (0..total.len() as u32)
            .filter(|&i| total.store().rel(FactId(i)) == goal)
            .collect();
        // Corrupt one witness to cite the fact it derives.
        let victim = answer_ids[0] as usize;
        let mut bad = derivs.clone();
        if let Some(d) = bad[victim].as_mut() {
            d.premises = vec![victim as u32];
        }
        let source = CertSource {
            instance: &total,
            rules: &rules,
            goal,
            answer_ids: &answer_ids,
            snapshot: None,
        };
        let got = emit_certificate(
            &v,
            &source,
            |id| id < base_len,
            |id| bad[id as usize].as_ref(),
        );
        assert!(matches!(got, Err(CertifyError::CyclicWitness(_))));
    }
}
