//! A minimal JSON reader/writer for the serving protocol.
//!
//! The container has no serde, so `gomq-serve` carries its own ~150-line
//! JSON layer: enough of RFC 8259 for one request object per line
//! (strings with escapes, arrays, numbers, booleans, null, nesting) and
//! an escaping string writer for responses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; the protocol only uses small ints).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order irrelevant to the protocol).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = read_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: combine with the following
                            // \uXXXX low surrogate into one astral-plane
                            // scalar; a lone surrogate becomes U+FFFD.
                            if b.get(*pos + 1..*pos + 3) == Some(b"\\u".as_slice()) {
                                let lo = read_hex4(b, *pos + 3)?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                    *pos += 6;
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push('\u{fffd}');
                            }
                        } else {
                            // Lone low surrogates also land here and map
                            // to the replacement character.
                            out.push(char::from_u32(hi).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads four hex digits starting at byte `at`.
fn read_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("truncated \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shape() {
        let j = parse(
            r#"{"ontology": "A sub B\nB sub C", "query": "C", "abox": "A(ada)", "id": "r1"}"#,
        )
        .unwrap();
        let Json::Obj(o) = j else {
            panic!("not an object")
        };
        assert_eq!(o["ontology"].as_str(), Some("A sub B\nB sub C"));
        assert_eq!(o["query"].as_str(), Some("C"));
        assert_eq!(o["id"].as_str(), Some("r1"));
    }

    #[test]
    fn parses_arrays_numbers_bools() {
        let j = parse(r#"{"aboxes": ["A(x)", "A(y)"], "n": 3, "flag": true, "z": null}"#).unwrap();
        let Json::Obj(o) = j else { panic!() };
        assert_eq!(o["aboxes"].as_arr().unwrap().len(), 2);
        assert_eq!(o["n"], Json::Num(3.0));
        assert_eq!(o["flag"], Json::Bool(true));
        assert_eq!(o["z"], Json::Null);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}é");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}é"));
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_scalars() {
        // U+1F600 encoded as the escaped surrogate pair D83D/DE00.
        let escaped_emoji = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped_emoji).unwrap().as_str(), Some("\u{1f600}"));
        // Mixed with surrounding text; D800/DF48 is U+10348.
        let escaped_hwair = "\"a\\ud800\\udf48b\"";
        assert_eq!(parse(escaped_hwair).unwrap().as_str(), Some("a\u{10348}b"));
        // Literal (unescaped) astral characters still pass through.
        assert_eq!(parse("\"\u{1f600}\"").unwrap().as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn astral_chars_roundtrip_through_write_str() {
        let original = "emoji \u{1f600} and gothic \u{10348}";
        let mut out = String::new();
        write_str(&mut out, original);
        assert_eq!(parse(&out).unwrap().as_str(), Some(original));
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // Lone high surrogate at end of string.
        assert_eq!(parse("\"\\ud83d\"").unwrap().as_str(), Some("\u{fffd}"));
        // Lone high surrogate followed by an ordinary character.
        assert_eq!(parse("\"\\ud83dx\"").unwrap().as_str(), Some("\u{fffd}x"));
        // Lone low surrogate.
        assert_eq!(parse("\"\\ude00\"").unwrap().as_str(), Some("\u{fffd}"));
        // High surrogate followed by a non-surrogate escape: both kept.
        assert_eq!(
            parse("\"\\ud83d\\u0041\"").unwrap().as_str(),
            Some("\u{fffd}A")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} x"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }
}
