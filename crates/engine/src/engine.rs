//! The engine facade: cache + executor + statistics.

use crate::cache::{lock_recover, PlanCache, PlanOutcome};
use crate::exec::{eval_batch_budgeted, eval_strata_budgeted};
use crate::plan::{EngineError, OmqPlan};
use crate::stats::{EngineStats, RequestStats};
use gomq_core::{FactId, IndexedInstance, Instance, RelId, Term, Vocab};
use gomq_datalog::Budget;
use gomq_logic::GfOntology;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-plan circuit-breaker state: consecutive evaluation failures and
/// whether the breaker has latched open.
#[derive(Clone, Copy, Debug, Default)]
struct Breaker {
    failures: u32,
    open: bool,
}

/// Per-ABox answer sets (input order) plus one aggregate
/// [`RequestStats`] — the result of a batch evaluation.
pub type BatchAnswers = (Vec<BTreeSet<Vec<Term>>>, RequestStats);

/// A caching, indexed, parallel OMQ serving engine.
///
/// One `Engine` owns a [`PlanCache`] and a thread budget; it is shared
/// per serving process, together with a single [`Vocab`] (plans hold
/// interned relation ids, so a plan compiled under one vocabulary must
/// not be evaluated under another). For concurrent use, share the vocab
/// behind a [`Mutex`] and plan through [`Engine::plan_shared`] — the
/// cache deduplicates concurrent compilations of the same OMQ.
pub struct Engine {
    cache: PlanCache,
    threads: usize,
    stats: Mutex<EngineStats>,
    /// Plan key → breaker state. A plan whose evaluation fails
    /// (panics or blows its budget) `quarantine_after` times is refused
    /// further evaluation ([`EngineError::Quarantined`]); the breaker is
    /// sticky for the engine's lifetime.
    breakers: Mutex<HashMap<u64, Breaker>>,
    /// Failures before a plan's breaker opens; 0 disables quarantine.
    quarantine_after: AtomicU32,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_threads(threads)
    }

    /// An engine with an explicit worker budget (1 = sequential).
    pub fn with_threads(threads: usize) -> Self {
        Self::with_cache(threads, PlanCache::new())
    }

    /// An engine with an explicit worker budget and plan cache (used to
    /// configure the cache capacity, and by tests to inject a colliding
    /// hash function).
    pub fn with_cache(threads: usize, cache: PlanCache) -> Self {
        Engine {
            cache,
            threads: threads.max(1),
            stats: Mutex::new(EngineStats::default()),
            breakers: Mutex::new(HashMap::new()),
            quarantine_after: AtomicU32::new(0),
        }
    }

    /// Sets how many evaluation failures open a plan's circuit breaker
    /// (0 disables quarantine — the default for directly constructed
    /// engines; the serving layer enables it).
    pub fn set_quarantine_after(&self, n: u32) {
        self.quarantine_after.store(n, Ordering::Relaxed);
    }

    /// Checks the plan's circuit breaker before evaluation. Returns the
    /// failure count if the breaker is open (the request must be refused
    /// with [`EngineError::Quarantined`]); counts the refusal.
    pub fn quarantine_reject(&self, key: u64) -> Option<u32> {
        let b = *lock_recover(&self.breakers).get(&key)?;
        if !b.open {
            return None;
        }
        let mut stats = lock_recover(&self.stats);
        stats.quarantined = stats.quarantined.saturating_add(1);
        Some(b.failures)
    }

    /// Attributes one evaluation failure (panic or blown budget) to a
    /// plan. Returns `true` if this failure tripped the breaker open.
    pub fn record_eval_failure(&self, key: u64) -> bool {
        let threshold = self.quarantine_after.load(Ordering::Relaxed);
        if threshold == 0 {
            return false;
        }
        let mut breakers = lock_recover(&self.breakers);
        let b = breakers.entry(key).or_default();
        b.failures = b.failures.saturating_add(1);
        if !b.open && b.failures >= threshold {
            b.open = true;
            drop(breakers);
            let mut stats = lock_recover(&self.stats);
            stats.breaker_trips = stats.breaker_trips.saturating_add(1);
            return true;
        }
        false
    }

    /// Records a successful evaluation: resets the plan's failure count
    /// unless its breaker already latched open (quarantine is sticky).
    pub fn record_eval_success(&self, key: u64) {
        let mut breakers = lock_recover(&self.breakers);
        if let Some(b) = breakers.get_mut(&key) {
            if !b.open {
                b.failures = 0;
            }
        }
    }

    /// The engine's plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Fetches or compiles the plan for `(o, query)`. The boolean is
    /// `true` on a cache hit; compile wall time is accounted either way.
    ///
    /// Convenience wrapper over [`Engine::plan_shared`] for exclusive
    /// (single-threaded) vocabulary access.
    pub fn plan(
        &self,
        o: &GfOntology,
        query: RelId,
        vocab: &mut Vocab,
    ) -> (PlanOutcome, bool, std::time::Duration) {
        let shared = Mutex::new(std::mem::take(vocab));
        let result = self.plan_shared(o, query, &shared);
        *vocab = shared.into_inner().unwrap_or_else(|e| e.into_inner());
        result
    }

    /// Fetches or compiles the plan for `(o, query)` against a shared
    /// vocabulary. Concurrent requests for the same new OMQ compile it
    /// exactly once (single flight); the vocab lock is held only while
    /// hashing and compiling, never while waiting.
    pub fn plan_shared(
        &self,
        o: &GfOntology,
        query: RelId,
        vocab: &Mutex<Vocab>,
    ) -> (PlanOutcome, bool, std::time::Duration) {
        let t0 = Instant::now();
        let (outcome, hit) = self.cache.get_or_compile(o, query, vocab);
        (outcome, hit, t0.elapsed())
    }

    /// Answers one plan against one plain ABox.
    pub fn answer(&self, plan: &OmqPlan, abox: &Instance) -> (BTreeSet<Vec<Term>>, RequestStats) {
        self.answer_indexed(plan, &IndexedInstance::from_interpretation(abox))
    }

    /// Answers one plan against one pre-indexed ABox.
    pub fn answer_indexed(
        &self,
        plan: &OmqPlan,
        abox: &IndexedInstance,
    ) -> (BTreeSet<Vec<Term>>, RequestStats) {
        self.answer_indexed_budgeted(plan, abox, &Budget::UNLIMITED)
            .expect("the unlimited budget cannot be exceeded")
    }

    /// Answers one plan against one pre-indexed ABox under a cooperative
    /// resource [`Budget`]; a blown budget returns
    /// [`EngineError::Overloaded`] and counts in
    /// [`EngineStats::overloaded`], leaving the engine fully serviceable.
    pub fn answer_indexed_budgeted(
        &self,
        plan: &OmqPlan,
        abox: &IndexedInstance,
        budget: &Budget,
    ) -> Result<(BTreeSet<Vec<Term>>, RequestStats), EngineError> {
        let t0 = Instant::now();
        match eval_strata_budgeted(&plan.strata, plan.program.goal, abox, self.threads, budget) {
            Ok((answers, eval_stats)) => {
                let stats = RequestStats {
                    eval: t0.elapsed(),
                    rounds: eval_stats.rounds,
                    derived: eval_stats.derived,
                    answers: answers.len(),
                    store: eval_stats.store,
                    ..RequestStats::default()
                };
                lock_recover(&self.stats).absorb(&stats);
                Ok((answers, stats))
            }
            Err(e) => {
                self.record_overloaded();
                Err(EngineError::Overloaded(e))
            }
        }
    }

    /// Answers one plan against one pre-indexed ABox through the SQL
    /// backend: the plan's eagerly emitted SQL text runs on the
    /// in-process `gomq-sqlexec` executor. A recursive plan (no SQL
    /// text) is refused with [`EngineError::NotSqlRewritable`] and
    /// counted in [`EngineStats::sql_refusals`] — the native backend
    /// remains available for the same plan. The vocabulary is locked
    /// only while rendering the ABox to strings and mapping answer rows
    /// back, never across a compile.
    pub fn answer_indexed_sql(
        &self,
        plan: &OmqPlan,
        abox: &IndexedInstance,
        budget: &Budget,
        vocab: &Mutex<Vocab>,
    ) -> Result<(BTreeSet<Vec<Term>>, RequestStats), EngineError> {
        let sql = match &plan.sql {
            Ok(sql) => sql,
            Err(e) => {
                self.record_sql_refusal();
                return Err(EngineError::NotSqlRewritable(e.clone()));
            }
        };
        let t0 = Instant::now();
        let answers = {
            let vocab = lock_recover(vocab);
            crate::backend::sql::eval_sql_budgeted(sql, abox, &vocab, budget)
        };
        match answers {
            Ok(answers) => {
                let stats = RequestStats {
                    eval: t0.elapsed(),
                    answers: answers.len(),
                    ..RequestStats::default()
                };
                {
                    let mut totals = lock_recover(&self.stats);
                    totals.absorb(&stats);
                    totals.sql_compiles = totals.sql_compiles.saturating_add(1);
                }
                Ok((answers, stats))
            }
            Err(e) => {
                if matches!(e, EngineError::Overloaded(_)) {
                    self.record_overloaded();
                }
                Err(e)
            }
        }
    }

    /// Answers one plan against one pre-indexed ABox with a derivation
    /// certificate attached. Evaluation runs the *traced* flat fixpoint
    /// (answer-equivalent to the stratified path — strata only order
    /// work) recording one witness per derived fact; the certificate is
    /// then assembled by walking the witnesses backwards from the goal
    /// facts. `snapshot` is the session position to bind the
    /// certificate to, or `None` when the ABox came with the request.
    /// The vocabulary is locked only during certificate rendering,
    /// never across evaluation.
    pub fn answer_indexed_certified(
        &self,
        plan: &OmqPlan,
        abox: &IndexedInstance,
        budget: &Budget,
        vocab: &Mutex<Vocab>,
        snapshot: Option<(u64, u64)>,
    ) -> Result<(BTreeSet<Vec<Term>>, String, RequestStats), EngineError> {
        let (answers, cert, stats) = self.certified_eval(plan, abox, budget, vocab, snapshot)?;
        lock_recover(&self.stats).absorb(&stats);
        Ok((answers, cert, stats))
    }

    /// The traced evaluation + certificate assembly shared by the
    /// certified entry points. Does *not* fold the request into the
    /// cumulative totals — each public caller absorbs exactly once.
    fn certified_eval(
        &self,
        plan: &OmqPlan,
        abox: &IndexedInstance,
        budget: &Budget,
        vocab: &Mutex<Vocab>,
        snapshot: Option<(u64, u64)>,
    ) -> Result<(BTreeSet<Vec<Term>>, String, RequestStats), EngineError> {
        let t0 = Instant::now();
        let base_len = abox.len() as u32;
        let (total, derivs, eval_stats) =
            gomq_datalog::fixpoint_traced(&plan.program.rules, abox, budget).map_err(|e| {
                self.record_overloaded();
                EngineError::Overloaded(e)
            })?;
        let goal = plan.program.goal;
        let answer_ids: Vec<u32> = (0..total.len() as u32)
            .filter(|&i| total.store().rel(FactId(i)) == goal)
            .collect();
        let answers: BTreeSet<Vec<Term>> = answer_ids
            .iter()
            .map(|&i| total.store().args(FactId(i)).to_vec())
            .collect();
        let source = crate::certify::CertSource {
            instance: &total,
            rules: &plan.program.rules,
            goal,
            answer_ids: &answer_ids,
            snapshot,
        };
        let cert = {
            let vocab = lock_recover(vocab);
            crate::certify::emit_certificate(
                &vocab,
                &source,
                |id| id < base_len,
                |id| derivs[id as usize].as_ref(),
            )
            .map_err(|e| EngineError::Internal(format!("certificate assembly: {e}")))?
        };
        let stats = RequestStats {
            eval: t0.elapsed(),
            rounds: eval_stats.rounds,
            derived: eval_stats.derived,
            answers: answers.len(),
            store: eval_stats.store,
            cert_bytes: cert.len(),
            ..RequestStats::default()
        };
        Ok((answers, cert, stats))
    }

    /// Answers one plan against one plain ABox through the plan's bitset
    /// type kernel instead of Datalog evaluation: one AC-3 propagation
    /// over the ABox, then certain-answer extraction. Agrees with
    /// [`Engine::answer`] (both realize the Theorem-5 computation) while
    /// skipping fact materialization entirely; requires a unary query
    /// relation.
    pub fn answer_typed(
        &self,
        plan: &OmqPlan,
        abox: &Instance,
    ) -> (BTreeSet<Vec<Term>>, RequestStats) {
        let t0 = Instant::now();
        let (elems, type_stats) = plan.types.certain_unary_with_stats(abox, plan.query);
        let answers: BTreeSet<Vec<Term>> = elems.into_iter().map(|t| vec![t]).collect();
        let stats = RequestStats {
            eval: t0.elapsed(),
            answers: answers.len(),
            typed: true,
            type_stats,
            ..RequestStats::default()
        };
        lock_recover(&self.stats).absorb(&stats);
        (answers, stats)
    }

    /// Answers one plan through the bitset type kernel *with* a
    /// derivation certificate. The kernel itself materializes no facts
    /// and so cannot witness its answers; instead a traced reference
    /// fixpoint runs alongside it, the two answer sets are
    /// cross-checked (a divergence is an engine bug and comes back as
    /// [`EngineError::Internal`] — never a silently wrong certificate),
    /// and the certificate is emitted from the reference derivation.
    pub fn answer_typed_certified(
        &self,
        plan: &OmqPlan,
        abox: &Instance,
        budget: &Budget,
        vocab: &Mutex<Vocab>,
    ) -> Result<(BTreeSet<Vec<Term>>, String, RequestStats), EngineError> {
        let t0 = Instant::now();
        let (elems, type_stats) = plan.types.certain_unary_with_stats(abox, plan.query);
        let typed_answers: BTreeSet<Vec<Term>> = elems.into_iter().map(|t| vec![t]).collect();
        let indexed = IndexedInstance::from_interpretation(abox);
        let (answers, cert, _) = self.certified_eval(plan, &indexed, budget, vocab, None)?;
        if typed_answers != answers {
            return Err(EngineError::Internal(format!(
                "typed kernel diverges from traced evaluation: {} vs {} answers",
                typed_answers.len(),
                answers.len()
            )));
        }
        let stats = RequestStats {
            eval: t0.elapsed(),
            answers: answers.len(),
            typed: true,
            type_stats,
            cert_bytes: cert.len(),
            ..RequestStats::default()
        };
        lock_recover(&self.stats).absorb(&stats);
        Ok((answers, cert, stats))
    }

    /// Answers one plan against a batch of ABoxes concurrently (one
    /// worker per ABox, work-stealing). Returns per-ABox answer sets in
    /// input order plus one aggregate [`RequestStats`].
    pub fn answer_batch(&self, plan: &OmqPlan, aboxes: &[IndexedInstance]) -> BatchAnswers {
        self.answer_batch_budgeted(plan, aboxes, &Budget::UNLIMITED)
            .expect("the unlimited budget cannot be exceeded")
    }

    /// Answers one plan against a batch of ABoxes under a per-ABox
    /// resource [`Budget`] (the deadline is shared across the batch); the
    /// first blown budget fails the whole batch with
    /// [`EngineError::Overloaded`].
    pub fn answer_batch_budgeted(
        &self,
        plan: &OmqPlan,
        aboxes: &[IndexedInstance],
        budget: &Budget,
    ) -> Result<BatchAnswers, EngineError> {
        let t0 = Instant::now();
        match eval_batch_budgeted(
            &plan.strata,
            plan.program.goal,
            aboxes,
            self.threads,
            budget,
        ) {
            Ok(results) => {
                let mut stats = RequestStats {
                    eval: t0.elapsed(),
                    ..RequestStats::default()
                };
                let mut answers = Vec::with_capacity(results.len());
                for (ans, es) in results {
                    stats.rounds += es.rounds;
                    stats.derived += es.derived;
                    stats.answers += ans.len();
                    stats.store.absorb(&es.store);
                    answers.push(ans);
                }
                lock_recover(&self.stats).absorb(&stats);
                Ok((answers, stats))
            }
            Err(e) => {
                self.record_overloaded();
                Err(EngineError::Overloaded(e))
            }
        }
    }

    /// A snapshot of the cumulative statistics (cache counters included).
    pub fn stats(&self) -> EngineStats {
        let mut snap = *lock_recover(&self.stats);
        snap.cache_hits = self.cache.hits();
        snap.cache_misses = self.cache.misses();
        snap.cache_evictions = self.cache.evictions();
        snap.inflight_waits = self.cache.inflight_waits();
        snap.cache_size = self.cache.len() as u64;
        snap.faults_injected = gomq_core::faults::injected();
        snap
    }

    /// Folds externally measured compile time into the totals (used by
    /// the serving layer, which times [`Engine::plan`] per request).
    pub fn record_compile(&self, elapsed: std::time::Duration) {
        let mut stats = lock_recover(&self.stats);
        stats.compile_time = stats.compile_time.saturating_add(elapsed);
    }

    /// Records one isolated panic (caught by the serving layer's
    /// `catch_unwind` fence).
    pub fn record_panic(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.panics = stats.panics.saturating_add(1);
    }

    /// Records a request refused at admission or aborted mid-evaluation
    /// because its budget was already (or became) exhausted.
    pub fn record_overloaded(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.overloaded = stats.overloaded.saturating_add(1);
    }

    /// Records one SQL-backend request refused because the plan's
    /// rewriting is recursive (`"status": "non-rewritable-to-sql"`).
    pub fn record_sql_refusal(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.sql_refusals = stats.sql_refusals.saturating_add(1);
    }

    /// Records journaled WAL activity (records and frame bytes).
    pub fn record_wal(&self, records: u64, bytes: u64) {
        let mut stats = lock_recover(&self.stats);
        stats.wal_records = stats.wal_records.saturating_add(records);
        stats.wal_bytes = stats.wal_bytes.saturating_add(bytes);
    }

    /// Records one snapshot written.
    pub fn record_snapshot(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.snapshots = stats.snapshots.saturating_add(1);
    }

    /// Records one accepted network connection (bumps the cumulative
    /// accept count and the active-connection gauge).
    pub fn record_conn_open(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.conns_accepted = stats.conns_accepted.saturating_add(1);
        stats.conns_active = stats.conns_active.saturating_add(1);
    }

    /// Records one closed network connection (decrements the gauge).
    pub fn record_conn_close(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.conns_active = stats.conns_active.saturating_sub(1);
    }

    /// Records one connection refused at accept time (connection caps).
    pub fn record_conn_refused(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.conns_refused = stats.conns_refused.saturating_add(1);
    }

    /// Samples the worker pool's queue depth (jobs queued or executing).
    pub fn record_queue_depth(&self, depth: u64) {
        lock_recover(&self.stats).queue_depth = depth;
    }

    /// Records one request refused because the worker queue was full.
    pub fn record_queue_reject(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.queue_rejects = stats.queue_rejects.saturating_add(1);
    }

    /// Records one graceful drain initiated.
    pub fn record_drain(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.drains = stats.drains.saturating_add(1);
    }

    /// Folds one request's statistics into the totals — used by the
    /// serving layer for requests answered outside the engine's own
    /// evaluation entry points (session queries served from or building
    /// a maintained materialization).
    pub fn record_request(&self, stats: &RequestStats) {
        lock_recover(&self.stats).absorb(stats);
    }

    /// Samples the maintained-view registry: active views (gauge) and
    /// cumulative LRU evictions (the registry's counter is
    /// authoritative, so the total is overwritten, not added).
    pub fn record_views(&self, active: u64, evicted: u64) {
        let mut stats = lock_recover(&self.stats);
        stats.views_active = active;
        stats.views_evicted = evicted;
    }

    /// Records view-maintenance work done outside a query (the eager
    /// DRed pass a session rollback runs over every registered view).
    pub fn record_ivm_maintenance(&self, deleted: u64, rederived: u64) {
        let mut stats = lock_recover(&self.stats);
        stats.ivm_deleted = stats.ivm_deleted.saturating_add(deleted);
        stats.ivm_rederived = stats.ivm_rederived.saturating_add(rederived);
    }

    /// Records record frames shipped to a replica (primary side).
    pub fn record_repl_ship(&self, frames: u64, bytes: u64) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_frames_shipped = stats.repl_frames_shipped.saturating_add(frames);
        stats.repl_bytes_shipped = stats.repl_bytes_shipped.saturating_add(bytes);
    }

    /// Records one bootstrap snapshot shipped to a replica.
    pub fn record_repl_snapshot_shipped(&self, bytes: u64) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_snapshots_shipped = stats.repl_snapshots_shipped.saturating_add(1);
        stats.repl_bytes_shipped = stats.repl_bytes_shipped.saturating_add(bytes);
    }

    /// Records one replicated record processed by a follower: `fresh`
    /// is 1 unless the record was a duplicate re-shipped after a
    /// reconnect; `lag` samples the lsn gap behind the primary.
    pub fn record_repl_apply(&self, fresh: u64, bytes: u64, lag: u64) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_records_applied = stats.repl_records_applied.saturating_add(fresh);
        stats.repl_bytes_applied = stats.repl_bytes_applied.saturating_add(bytes);
        stats.repl_lag_lsn = lag;
    }

    /// Samples the follower's lsn lag behind the primary (gauge).
    pub fn record_repl_lag(&self, lag: u64) {
        lock_recover(&self.stats).repl_lag_lsn = lag;
    }

    /// Records one follower reconnect attempt after a dropped primary
    /// connection.
    pub fn record_repl_reconnect(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_reconnects = stats.repl_reconnects.saturating_add(1);
    }

    /// Records one promotion to primary.
    pub fn record_repl_promotion(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_promotions = stats.repl_promotions.saturating_add(1);
    }

    /// Records one write refused for replication-role reasons
    /// (`"read-only"` on a follower, `"fenced"` on a superseded
    /// primary).
    pub fn record_repl_write_refusal(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_write_refusals = stats.repl_write_refusals.saturating_add(1);
    }

    /// Records one replica read refused for exceeding the staleness
    /// bound.
    pub fn record_repl_stale_refusal(&self) {
        let mut stats = lock_recover(&self.stats);
        stats.repl_stale_refusals = stats.repl_stale_refusals.saturating_add(1);
    }

    /// Records what startup recovery rebuilt from the data directory.
    pub fn record_recovery(&self, info: &crate::session::RecoveryInfo) {
        let mut stats = lock_recover(&self.stats);
        stats.recovered_records = stats
            .recovered_records
            .saturating_add(info.replayed_records);
        stats.recovered_facts = stats
            .recovered_facts
            .saturating_add(info.snapshot_facts.saturating_add(info.replayed_facts));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::parse::parse_instance;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;
    use std::sync::Arc;

    #[test]
    fn end_to_end_answer_with_cache_reuse() {
        let mut v = Vocab::new();
        let engine = Engine::with_threads(2);
        let dl = parse_ontology("Manager sub Employee\nEmployee sub Staff\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let staff = v.find_rel("Staff").unwrap();
        let (plan, hit, d1) = engine.plan(&o, staff, &mut v);
        let plan = plan.unwrap();
        engine.record_compile(d1);
        assert!(!hit);
        let abox = parse_instance("Manager(ada)\nEmployee(grace)\n", &mut v).unwrap();
        let (answers, rs) = engine.answer(&plan, &abox);
        let ada = Term::Const(v.constant("ada"));
        let grace = Term::Const(v.constant("grace"));
        assert_eq!(
            answers,
            [vec![ada], vec![grace]]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
        assert_eq!(rs.answers, 2);
        assert!(rs.rounds > 0);
        // Second request for the same OMQ: cache hit, same plan.
        let (plan2, hit2, _) = engine.plan(&o, staff, &mut v);
        assert!(hit2);
        assert!(Arc::ptr_eq(&plan, &plan2.unwrap()));
        let snap = engine.stats();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert!(snap.eval_time > std::time::Duration::ZERO);
    }

    #[test]
    fn typed_answers_match_datalog_path() {
        let mut v = Vocab::new();
        let engine = Engine::with_threads(2);
        let dl = parse_ontology(
            "Manager sub Employee\nEmployee sub Staff\nManager sub ex ReportsTo.Employee\n",
            &mut v,
        )
        .unwrap();
        let o = to_gf(&dl);
        let staff = v.find_rel("Staff").unwrap();
        let (plan, _, _) = engine.plan(&o, staff, &mut v);
        let plan = plan.unwrap();
        let abox = parse_instance(
            "Manager(ada)\nEmployee(grace)\nReportsTo(grace,ada)\n",
            &mut v,
        )
        .unwrap();
        let (datalog_answers, _) = engine.answer(&plan, &abox);
        let (typed_answers, rs) = engine.answer_typed(&plan, &abox);
        assert_eq!(typed_answers, datalog_answers);
        assert!(rs.typed);
        assert_eq!(rs.type_stats.elements, 2);
        assert!(rs.type_stats.edges >= 1);
        let snap = engine.stats();
        assert_eq!(snap.typed_requests, 1);
        assert_eq!(snap.type_stats.elements, 2);
    }

    #[test]
    fn breaker_trips_after_threshold_and_is_sticky() {
        let engine = Engine::with_threads(1);
        engine.set_quarantine_after(3);
        let key = 0xfeed;
        assert_eq!(engine.quarantine_reject(key), None);
        assert!(!engine.record_eval_failure(key));
        assert!(!engine.record_eval_failure(key));
        // A success between failures resets the count.
        engine.record_eval_success(key);
        assert!(!engine.record_eval_failure(key));
        assert!(!engine.record_eval_failure(key));
        assert!(engine.record_eval_failure(key));
        assert_eq!(engine.quarantine_reject(key), Some(3));
        // Sticky: success after the trip does not close the breaker.
        engine.record_eval_success(key);
        assert!(engine.quarantine_reject(key).is_some());
        let snap = engine.stats();
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.quarantined, 2);
        // Other plans are unaffected.
        assert_eq!(engine.quarantine_reject(0xbeef), None);
    }

    #[test]
    fn quarantine_disabled_by_default() {
        let engine = Engine::with_threads(1);
        for _ in 0..100 {
            assert!(!engine.record_eval_failure(7));
        }
        assert_eq!(engine.quarantine_reject(7), None);
    }

    #[test]
    fn sql_backend_matches_native_and_counts_compiles() {
        let mut v = Vocab::new();
        let engine = Engine::with_threads(2);
        let dl = parse_ontology("Manager sub Employee\nEmployee sub Staff\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let staff = v.find_rel("Staff").unwrap();
        let (plan, _, _) = engine.plan(&o, staff, &mut v);
        let plan = plan.unwrap();
        let abox = parse_instance("Manager(ada)\nEmployee(grace)\n", &mut v).unwrap();
        let indexed = IndexedInstance::from_interpretation(&abox);
        let (native, _) = engine.answer_indexed(&plan, &indexed);
        let vocab = Mutex::new(v);
        let (sql, rs) = engine
            .answer_indexed_sql(&plan, &indexed, &Budget::UNLIMITED, &vocab)
            .unwrap();
        assert_eq!(sql, native);
        assert_eq!(rs.answers, 2);
        let snap = engine.stats();
        assert_eq!(snap.sql_compiles, 1);
        assert_eq!(snap.sql_refusals, 0);
    }

    #[test]
    fn recursive_plan_gets_typed_sql_refusal() {
        let mut v = Vocab::new();
        let engine = Engine::with_threads(1);
        // An existential role restriction makes emit_datalog's elim
        // propagation recursive, so the plan compiles natively but
        // carries no SQL text.
        let dl = parse_ontology("A sub ex R.B\nB sub C\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let c = v.find_rel("C").unwrap();
        let (plan, _, _) = engine.plan(&o, c, &mut v);
        let plan = plan.unwrap();
        assert!(plan.sql.is_err(), "role-bearing plan should be recursive");
        let abox = parse_instance("A(x)\n", &mut v).unwrap();
        let indexed = IndexedInstance::from_interpretation(&abox);
        let vocab = Mutex::new(v);
        let err = engine
            .answer_indexed_sql(&plan, &indexed, &Budget::UNLIMITED, &vocab)
            .unwrap_err();
        assert!(matches!(err, EngineError::NotSqlRewritable(_)));
        assert!(format!("{err}").contains("not rewritable to SQL"));
        let snap = engine.stats();
        assert_eq!(snap.sql_refusals, 1);
        assert_eq!(snap.sql_compiles, 0);
    }

    #[test]
    fn batch_answers_match_singles() {
        let mut v = Vocab::new();
        let engine = Engine::with_threads(4);
        let dl = parse_ontology("A sub B\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let b = v.find_rel("B").unwrap();
        let (plan, _, _) = engine.plan(&o, b, &mut v);
        let plan = plan.unwrap();
        let texts = ["A(x1)\n", "A(y1)\nA(y2)\n", "B(z1)\n", ""];
        let aboxes: Vec<IndexedInstance> = texts
            .iter()
            .map(|t| IndexedInstance::from_interpretation(&parse_instance(t, &mut v).unwrap()))
            .collect();
        let (batch, rs) = engine.answer_batch(&plan, &aboxes);
        assert_eq!(batch.len(), 4);
        assert_eq!(rs.answers, 1 + 2 + 1);
        for (i, d) in aboxes.iter().enumerate() {
            let (single, _) = engine.answer_indexed(&plan, d);
            assert_eq!(batch[i], single, "abox {i}");
        }
    }
}
