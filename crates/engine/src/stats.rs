//! Engine and per-request statistics.

use gomq_core::StoreStats;
use gomq_rewriting::TypeStats;
use std::time::Duration;

/// Statistics of one served request (one OMQ evaluated against one
/// ABox, or one batch of ABoxes).
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestStats {
    /// Whether the plan came out of the cache.
    pub cache_hit: bool,
    /// Wall time spent compiling the plan (zero on a cache hit).
    pub compile: Duration,
    /// Wall time spent evaluating the Datalog≠ program.
    pub eval: Duration,
    /// Fixpoint rounds across all strata (summed over a batch).
    pub rounds: usize,
    /// IDB facts derived beyond the ABox (summed over a batch).
    pub derived: usize,
    /// Number of answer tuples (summed over a batch).
    pub answers: usize,
    /// Whether the request was served by the bitset type kernel
    /// ([`crate::Engine::answer_typed`]) rather than Datalog evaluation.
    pub typed: bool,
    /// Propagation-kernel counters (zero unless `typed`).
    pub type_stats: TypeStats,
    /// Storage pressure of the request's fact store(s): facts interned,
    /// arena terms, dedup hits (summed over a batch; zero when `typed` —
    /// the kernel path materializes no facts).
    pub store: StoreStats,
    /// Whether a session query was answered from a maintained
    /// materialization that existed before the request (incremental
    /// sync instead of a from-scratch fixpoint).
    pub maintained: bool,
    /// Facts overcount-deleted by incremental view maintenance.
    pub ivm_deleted: usize,
    /// Facts rederived (revived) by incremental view maintenance.
    pub ivm_rederived: usize,
    /// Size in bytes of the derivation certificate attached to the
    /// response (0 when the request did not ask for one).
    pub cert_bytes: usize,
}

/// Cumulative statistics of an [`crate::Engine`] since construction.
///
/// All phase timings are wall-clock [`std::time::Instant`] spans
/// accumulated across requests.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Requests served (each [`crate::Engine::answer`] /
    /// [`crate::Engine::answer_batch`] call counts once).
    pub requests: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (= compilations attempted).
    pub cache_misses: u64,
    /// Fixpoint rounds across all evaluations.
    pub rounds: u64,
    /// IDB facts derived across all evaluations.
    pub derived: u64,
    /// Answer tuples produced across all evaluations.
    pub answers: u64,
    /// Total wall time in plan compilation.
    pub compile_time: Duration,
    /// Total wall time in evaluation.
    pub eval_time: Duration,
    /// Requests aborted because their resource budget (rounds, derived
    /// facts or deadline) ran out.
    pub overloaded: u64,
    /// Panics caught and isolated by the serving layer.
    pub panics: u64,
    /// Plans evicted from the cache to honour its capacity bound.
    pub cache_evictions: u64,
    /// Lookups that blocked on another thread's in-flight compilation of
    /// the same OMQ (single-flight deduplication).
    pub inflight_waits: u64,
    /// Plans currently resident in the cache (snapshot, not cumulative).
    pub cache_size: u64,
    /// Requests served by the bitset type kernel
    /// ([`crate::Engine::answer_typed`]).
    pub typed_requests: u64,
    /// Aggregated propagation-kernel counters across typed requests
    /// (instance counters summed; kernel-build counters maxed).
    pub type_stats: TypeStats,
    /// Facts interned across all evaluation stores.
    pub facts_interned: u64,
    /// Bytes of fact-argument arena across all evaluation stores.
    pub arena_bytes: u64,
    /// Candidate derivations answered by an existing fact (dedup hits)
    /// across all evaluation stores.
    pub dedup_hits: u64,
    /// Session mutations journaled to the write-ahead log.
    pub wal_records: u64,
    /// Frame bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Snapshots written (each truncates the WAL).
    pub snapshots: u64,
    /// WAL records replayed during recovery at startup.
    pub recovered_records: u64,
    /// Facts rebuilt from the snapshot plus WAL replay at startup.
    pub recovered_facts: u64,
    /// Requests refused because their plan's circuit breaker was open.
    pub quarantined: u64,
    /// Circuit breakers tripped (plans newly quarantined).
    pub breaker_trips: u64,
    /// Faults injected by the chaos layer (0 unless the `chaos` feature
    /// is on and a plan is installed).
    pub faults_injected: u64,
    /// TCP connections accepted by the network front end.
    pub conns_accepted: u64,
    /// TCP connections refused at accept time (global or per-IP
    /// connection cap reached).
    pub conns_refused: u64,
    /// TCP connections currently open (gauge, not cumulative).
    pub conns_active: u64,
    /// Worker-pool jobs currently queued or executing (gauge, sampled at
    /// the last enqueue/dequeue).
    pub queue_depth: u64,
    /// Requests refused with `"limit": "queue"` because the worker
    /// pool's backpressure queue was full.
    pub queue_rejects: u64,
    /// Graceful drains initiated (SIGTERM, shutdown token, or stdin
    /// EOF finalization).
    pub drains: u64,
    /// Session queries answered from a maintained materialization that
    /// existed before the request (served in O(changed facts)).
    pub ivm_maintained_hits: u64,
    /// Facts overcount-deleted by view maintenance (DRed delete
    /// phase), across query syncs and rollback maintenance.
    pub ivm_deleted: u64,
    /// Facts rederived by view maintenance (DRed rederive phase plus
    /// re-asserted revivals).
    pub ivm_rederived: u64,
    /// Maintained views currently registered (gauge, sampled at the
    /// last view operation).
    pub views_active: u64,
    /// Views dropped for any reason: the registry's LRU capacity
    /// bound, a stale-epoch re-registration refused after a rollback,
    /// failed maintenance (blown budget or panic), a capacity change,
    /// or a rebuild with derivation recording.
    pub views_evicted: u64,
    /// Responses that carried a derivation certificate.
    pub certs_emitted: u64,
    /// Total certificate bytes emitted.
    pub cert_bytes: u64,
    /// SQL-backend requests answered by executing the plan's emitted
    /// SQL (the statement itself is compiled once per plan, alongside
    /// the Datalog≠ rewriting).
    pub sql_compiles: u64,
    /// SQL-backend requests refused with `non-rewritable-to-sql`
    /// because the plan's rewriting is recursive.
    pub sql_refusals: u64,
    /// WAL record frames shipped to replicas (primary side).
    pub repl_frames_shipped: u64,
    /// Bytes shipped to replicas (record frames plus snapshots).
    pub repl_bytes_shipped: u64,
    /// Bootstrap snapshots shipped to replicas.
    pub repl_snapshots_shipped: u64,
    /// Replicated WAL records applied locally (follower side;
    /// duplicates re-shipped after a reconnect are not counted).
    pub repl_records_applied: u64,
    /// Record-frame bytes received and applied (follower side).
    pub repl_bytes_applied: u64,
    /// Follower reconnect attempts after a dropped primary connection.
    pub repl_reconnects: u64,
    /// Promotions to primary (operator `promote` op or
    /// `--promote-on-disconnect`).
    pub repl_promotions: u64,
    /// Writes refused because this node is a follower (`"read-only"`)
    /// or a fenced ex-primary (`"fenced"`).
    pub repl_write_refusals: u64,
    /// Replica reads refused because the lsn lag exceeded
    /// `--max-staleness-lsn` (`"stale"`).
    pub repl_stale_refusals: u64,
    /// Lsn lag behind the primary at the last applied record or
    /// heartbeat (gauge, follower side; 0 on a primary).
    pub repl_lag_lsn: u64,
}

impl EngineStats {
    /// Folds one request's statistics into the cumulative totals.
    ///
    /// All counter folds saturate: a pathological workload (or a fault
    /// plan lying about sizes) must skew the telemetry, never panic a
    /// debug build mid-request.
    pub(crate) fn absorb(&mut self, r: &RequestStats) {
        self.requests = self.requests.saturating_add(1);
        self.rounds = self.rounds.saturating_add(r.rounds as u64);
        self.derived = self.derived.saturating_add(r.derived as u64);
        self.answers = self.answers.saturating_add(r.answers as u64);
        self.compile_time = self.compile_time.saturating_add(r.compile);
        self.eval_time = self.eval_time.saturating_add(r.eval);
        if r.typed {
            self.typed_requests = self.typed_requests.saturating_add(1);
            self.type_stats.absorb(&r.type_stats);
        }
        self.facts_interned = self.facts_interned.saturating_add(r.store.facts);
        self.arena_bytes = self.arena_bytes.saturating_add(r.store.arena_bytes());
        self.dedup_hits = self.dedup_hits.saturating_add(r.store.dedup_hits);
        if r.maintained {
            self.ivm_maintained_hits = self.ivm_maintained_hits.saturating_add(1);
        }
        self.ivm_deleted = self.ivm_deleted.saturating_add(r.ivm_deleted as u64);
        self.ivm_rederived = self.ivm_rederived.saturating_add(r.ivm_rederived as u64);
        if r.cert_bytes > 0 {
            self.certs_emitted = self.certs_emitted.saturating_add(1);
            self.cert_bytes = self.cert_bytes.saturating_add(r.cert_bytes as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_saturates_instead_of_overflowing() {
        let mut s = EngineStats {
            requests: u64::MAX,
            rounds: u64::MAX - 1,
            derived: u64::MAX,
            answers: u64::MAX,
            facts_interned: u64::MAX,
            arena_bytes: u64::MAX,
            dedup_hits: u64::MAX,
            ivm_maintained_hits: u64::MAX,
            ivm_deleted: u64::MAX,
            ivm_rederived: u64::MAX,
            certs_emitted: u64::MAX,
            cert_bytes: u64::MAX,
            ..EngineStats::default()
        };
        let r = RequestStats {
            rounds: 7,
            derived: 7,
            answers: 7,
            store: StoreStats {
                facts: 7,
                arena_terms: 7,
                dedup_hits: 7,
            },
            maintained: true,
            ivm_deleted: 7,
            ivm_rederived: 7,
            cert_bytes: 7,
            ..RequestStats::default()
        };
        s.absorb(&r); // must not panic in debug builds
        assert_eq!(s.requests, u64::MAX);
        assert_eq!(s.rounds, u64::MAX);
        assert_eq!(s.derived, u64::MAX);
        assert_eq!(s.dedup_hits, u64::MAX);
        assert_eq!(s.ivm_maintained_hits, u64::MAX);
        assert_eq!(s.ivm_deleted, u64::MAX);
        assert_eq!(s.ivm_rederived, u64::MAX);
        assert_eq!(s.certs_emitted, u64::MAX);
        assert_eq!(s.cert_bytes, u64::MAX);
    }
}
