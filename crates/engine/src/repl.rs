//! Primary/replica replication: WAL shipping over TCP with snapshot
//! bootstrap, staleness-bounded replica reads, and epoch fencing.
//!
//! # Wire protocol
//!
//! The replication stream reuses the WAL's outer frame format —
//! `[u32 payload_len][u64 fnv1a(payload)][payload]`, little-endian —
//! so both directions get the same torn/corrupt detection the journal
//! has. The first payload byte is a message tag:
//!
//! | tag | message     | body                                         |
//! |-----|-------------|----------------------------------------------|
//! | 1   | `HELLO`     | `u32` proto, `u64` last applied lsn, `u64` epoch |
//! | 2   | `SNAPSHOT`  | raw GOMQSNAP image                           |
//! | 3   | `RECORD`    | one complete inner WAL frame                 |
//! | 4   | `HEARTBEAT` | `u64` next lsn, `u64` epoch                  |
//! | 5   | `ACK`       | `u64` applied lsn                            |
//! | 6   | `FENCE`     | `u64` epoch                                  |
//!
//! A replica connection is: replica sends `HELLO` with its durable
//! position; the primary answers with a `SNAPSHOT` if the replica is
//! behind the retained log, then streams `RECORD` frames (each body is
//! byte-identical to what the primary journaled, so the replica
//! re-checks the checksum and re-interns the same symbolic facts —
//! replaying to byte-identical answers). The replica acknowledges
//! applied lsns with `ACK`; `HEARTBEAT` carries liveness plus the
//! primary's head lsn so the replica can report per-request staleness.
//!
//! # Fencing
//!
//! Promotion stamps `epoch = max(seen) + 1` into the WAL
//! ([`DurableSession::stamp_epoch`]) and then pushes `FENCE(epoch)` at
//! the old primary's replication address forever. Any node that
//! observes a higher epoch than its own while acting as a primary
//! flips to [`Role::Fenced`] and refuses writes with a typed
//! `"fenced"` status. Epoch records travel in the WAL itself, so a
//! fenced history is visible to recovery and to `gomq-cert`.
//!
//! Fault seams: [`faults::REPL_SHIP`] (primary drops a replica
//! connection mid-ship) and [`faults::REPL_APPLY`] (replica drops the
//! connection before applying) — both model TCP failure, never
//! corruption, because the frame checksums make corruption a *detected*
//! condition rather than a silent one.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gomq_core::faults;

use crate::cache::lock_recover;
use crate::drain::DrainToken;
use crate::serve::ServeShared;
use crate::session::{self, RecordSink, SessionError};
use crate::wal::{WalRecord, MAX_FRAME_BYTES};
use gomq_rewriting::fnv1a;

/// Replication protocol version carried in `HELLO`.
pub const PROTO_VERSION: u32 = 1;

const MSG_HELLO: u8 = 1;
const MSG_SNAPSHOT: u8 = 2;
const MSG_RECORD: u8 = 3;
const MSG_HEARTBEAT: u8 = 4;
const MSG_ACK: u8 = 5;
const MSG_FENCE: u8 = 6;

/// How long a sender waits on the hub before emitting a heartbeat.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);

/// Reconnect policy before `--promote-on-disconnect` fires: the
/// follower retries this many times with [`RECONNECT_DELAY`] between
/// attempts, so a transient drop (including the injected
/// `repl.ship`/`repl.apply` faults) reconnects instead of promoting.
const RECONNECT_ATTEMPTS: u32 = 8;
const RECONNECT_DELAY: Duration = Duration::from_millis(125);

/// One decoded replication message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Replica → primary: protocol version, last applied lsn, epoch.
    Hello {
        /// Protocol version ([`PROTO_VERSION`]).
        proto: u32,
        /// The replica's last durably applied lsn.
        last_lsn: u64,
        /// The highest epoch the replica has seen.
        epoch: u64,
    },
    /// Primary → replica: a full GOMQSNAP image to install.
    Snapshot(Vec<u8>),
    /// Primary → replica: one inner WAL frame, byte-identical to the
    /// primary's journal.
    Record(Vec<u8>),
    /// Primary → replica: head lsn (next to be assigned) and epoch.
    Heartbeat {
        /// The next lsn the primary will assign (head + 1).
        next_lsn: u64,
        /// The primary's current epoch.
        epoch: u64,
    },
    /// Replica → primary: highest contiguously applied lsn.
    Ack(u64),
    /// Promoted node → old primary: you are superseded.
    Fence(u64),
}

impl ReplMsg {
    fn encode_payload(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            ReplMsg::Hello {
                proto,
                last_lsn,
                epoch,
            } => {
                b.push(MSG_HELLO);
                b.extend_from_slice(&proto.to_le_bytes());
                b.extend_from_slice(&last_lsn.to_le_bytes());
                b.extend_from_slice(&epoch.to_le_bytes());
            }
            ReplMsg::Snapshot(bytes) => {
                b.push(MSG_SNAPSHOT);
                b.extend_from_slice(bytes);
            }
            ReplMsg::Record(frame) => {
                b.push(MSG_RECORD);
                b.extend_from_slice(frame);
            }
            ReplMsg::Heartbeat { next_lsn, epoch } => {
                b.push(MSG_HEARTBEAT);
                b.extend_from_slice(&next_lsn.to_le_bytes());
                b.extend_from_slice(&epoch.to_le_bytes());
            }
            ReplMsg::Ack(lsn) => {
                b.push(MSG_ACK);
                b.extend_from_slice(&lsn.to_le_bytes());
            }
            ReplMsg::Fence(epoch) => {
                b.push(MSG_FENCE);
                b.extend_from_slice(&epoch.to_le_bytes());
            }
        }
        b
    }

    fn decode_payload(payload: &[u8]) -> Result<ReplMsg, String> {
        let (&tag, body) = payload.split_first().ok_or("empty repl payload")?;
        let u32_at = |off: usize| -> Result<u32, String> {
            body.get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| "short repl message body".to_owned())
        };
        let u64_at = |off: usize| -> Result<u64, String> {
            body.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| "short repl message body".to_owned())
        };
        match tag {
            MSG_HELLO => Ok(ReplMsg::Hello {
                proto: u32_at(0)?,
                last_lsn: u64_at(4)?,
                epoch: u64_at(12)?,
            }),
            MSG_SNAPSHOT => Ok(ReplMsg::Snapshot(body.to_vec())),
            MSG_RECORD => Ok(ReplMsg::Record(body.to_vec())),
            MSG_HEARTBEAT => Ok(ReplMsg::Heartbeat {
                next_lsn: u64_at(0)?,
                epoch: u64_at(8)?,
            }),
            MSG_ACK => Ok(ReplMsg::Ack(u64_at(0)?)),
            MSG_FENCE => Ok(ReplMsg::Fence(u64_at(0)?)),
            other => Err(format!("unknown repl message tag {other}")),
        }
    }
}

/// Writes one framed message: `[len][fnv1a][payload]`.
pub fn write_msg(w: &mut impl Write, msg: &ReplMsg) -> io::Result<usize> {
    let payload = msg.encode_payload();
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Outcome of one framed read attempt.
enum ReadOutcome {
    Msg(ReplMsg),
    /// Read timeout expired with no bytes consumed — caller may poll
    /// shutdown conditions and retry.
    Idle,
    /// Peer closed the stream cleanly.
    Eof,
}

/// Reads one framed message. A read timeout *between* frames surfaces
/// as [`ReadOutcome::Idle`]; a timeout mid-frame keeps blocking on the
/// remainder (frames are small and the peer is mid-write), and EOF or a
/// checksum mismatch is an error.
fn read_msg(r: &mut impl Read) -> io::Result<ReadOutcome> {
    let mut header = [0u8; 12];
    match r.read(&mut header) {
        Ok(0) => return Ok(ReadOutcome::Eof),
        Ok(n) => {
            if let Err(e) = read_exact_blocking(r, &mut header[n..]) {
                return Err(corrupt(format!("torn repl frame header: {e}")));
            }
        }
        Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(corrupt(format!("repl frame of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_blocking(r, &mut payload)
        .map_err(|e| corrupt(format!("torn repl frame body: {e}")))?;
    if fnv1a(&payload) != sum {
        return Err(corrupt("repl frame checksum mismatch".to_owned()));
    }
    ReplMsg::decode_payload(&payload)
        .map(ReadOutcome::Msg)
        .map_err(corrupt)
}

/// `read_exact` that retries through read-timeout ticks (used once a
/// frame has started arriving, where a tick is not a liveness signal).
fn read_exact_blocking(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// What a serving node currently is, replication-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// No replication configured — the pre-PR single-node behaviour.
    Single,
    /// Accepts writes and ships them to replicas.
    Primary,
    /// Applies the primary's stream; refuses writes (`"read-only"`).
    Follower,
    /// A primary superseded by a higher epoch; refuses writes
    /// (`"fenced"`) until an operator intervenes.
    Fenced,
}

impl Role {
    /// The role's wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Single => "single",
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Fenced => "fenced",
        }
    }
}

/// Per-process replication state hanging off [`ServeShared`]. All
/// fields are lock-free reads on the hot request path.
pub struct ReplContext {
    role: AtomicU8,
    /// Highest primary head lsn observed (followers: from heartbeats).
    primary_lsn: AtomicU64,
    /// Highest epoch this node has seen (mirrors the session's durable
    /// view for lock-free reads).
    epoch: AtomicU64,
    /// Replica reads with `primary_lsn - position > max_staleness` are
    /// refused with `"status": "stale"`. `u64::MAX` = unbounded.
    max_staleness: AtomicU64,
    hub: Mutex<Option<Arc<ReplHub>>>,
    /// The address a promoted node fences (its old primary's
    /// replication listener).
    fence_target: Mutex<Option<String>>,
    /// The process drain token, so replication-spawned threads (the
    /// [`fencer`]) terminate on shutdown instead of leaking.
    drain: Mutex<Option<DrainToken>>,
}

impl Default for ReplContext {
    fn default() -> Self {
        ReplContext {
            role: AtomicU8::new(Role::Single as u8),
            primary_lsn: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            max_staleness: AtomicU64::new(u64::MAX),
            hub: Mutex::new(None),
            fence_target: Mutex::new(None),
            drain: Mutex::new(None),
        }
    }
}

impl ReplContext {
    /// This node's current role.
    pub fn role(&self) -> Role {
        match self.role.load(Ordering::Acquire) {
            1 => Role::Primary,
            2 => Role::Follower,
            3 => Role::Fenced,
            _ => Role::Single,
        }
    }

    /// Transitions the node's role.
    pub fn set_role(&self, role: Role) {
        self.role.store(role as u8, Ordering::Release);
    }

    /// The highest epoch this node has observed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Raises the observed epoch (monotone).
    pub fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The primary's head lsn as last observed (follower side).
    pub fn primary_lsn(&self) -> u64 {
        self.primary_lsn.load(Ordering::Acquire)
    }

    /// Raises the observed primary head lsn (monotone).
    pub fn note_primary_lsn(&self, lsn: u64) {
        self.primary_lsn.fetch_max(lsn, Ordering::AcqRel);
    }

    /// The configured staleness refusal bound (`u64::MAX` = none).
    pub fn max_staleness(&self) -> u64 {
        self.max_staleness.load(Ordering::Acquire)
    }

    /// Sets the staleness refusal bound.
    pub fn set_max_staleness(&self, bound: u64) {
        self.max_staleness.store(bound, Ordering::Release);
    }

    /// The primary's fan-out hub, when replication is serving.
    pub fn hub(&self) -> Option<Arc<ReplHub>> {
        lock_recover(&self.hub).clone()
    }

    /// Installs the fan-out hub (primary startup).
    pub fn set_hub(&self, hub: Arc<ReplHub>) {
        *lock_recover(&self.hub) = Some(hub);
    }

    /// The old primary's replication address a promotion will fence.
    pub fn fence_target(&self) -> Option<String> {
        lock_recover(&self.fence_target).clone()
    }

    /// Remembers the address to fence on promotion (follower startup).
    pub fn set_fence_target(&self, addr: String) {
        *lock_recover(&self.fence_target) = Some(addr);
    }

    /// The process drain token (set at replication startup). Falls back
    /// to a never-tripping token for contexts that never registered one.
    pub fn drain_token(&self) -> DrainToken {
        lock_recover(&self.drain).clone().unwrap_or_default()
    }

    /// Registers the process drain token replication threads observe.
    pub fn set_drain_token(&self, token: DrainToken) {
        *lock_recover(&self.drain) = Some(token);
    }
}

struct HubInner {
    /// Lsn floor: frames with lsn ≤ `floor_lsn` predate the hub or have
    /// been pruned after every connected replica acknowledged them, and
    /// can only be obtained via snapshot bootstrap.
    floor_lsn: u64,
    /// Published frames past `floor_lsn`, ascending lsn (publishes come
    /// off the journal under the session lock, so lsns arrive in
    /// order). Pruned up to `min(acks)` as replicas acknowledge — or,
    /// with no replica connected, up to the last durable snapshot — so
    /// memory is bounded by the furthest-behind connected replica plus
    /// one snapshot interval, not the process lifetime.
    frames: Vec<(u64, Vec<u8>)>,
    /// Lsn of the primary's most recent durable snapshot. Frames at or
    /// below it are recoverable via snapshot bootstrap, so they need no
    /// retention once no connected replica still wants them.
    snapshot_lsn: u64,
    last_lsn: u64,
    acks: HashMap<u64, u64>,
    next_conn: u64,
    closed: bool,
}

impl HubInner {
    /// Drops frames every connected replica has acknowledged — or, with
    /// no replica connected, frames the last durable snapshot covers —
    /// and advances the floor. A replica that later HELLOs from below
    /// the floor is routed through snapshot bootstrap instead; a
    /// *connected* replica's cursor can never fall below the floor,
    /// because its own ack entry pins `min(acks)`.
    fn prune(&mut self) {
        let target = self
            .acks
            .values()
            .copied()
            .min()
            .unwrap_or(self.snapshot_lsn)
            .min(self.last_lsn);
        if target > self.floor_lsn {
            let keep = self.frames.partition_point(|(l, _)| *l <= target);
            self.frames.drain(..keep);
            self.floor_lsn = target;
        }
    }
}

/// The primary's fan-out buffer: the durable session publishes every
/// journaled frame here (via [`RecordSink`]), and one sender thread per
/// replica connection drains it at its own pace.
pub struct ReplHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
}

/// What a sender learns from waiting on the hub.
enum HubWait {
    /// New frames past the cursor (ascending lsn).
    Frames(Vec<(u64, Vec<u8>)>),
    /// Nothing new within the heartbeat interval.
    Quiet {
        last_lsn: u64,
    },
    Closed,
}

impl ReplHub {
    /// `base_lsn` is the primary's last applied lsn at hub creation:
    /// everything at or before it is only reachable via snapshot.
    pub fn new(base_lsn: u64) -> Self {
        ReplHub {
            inner: Mutex::new(HubInner {
                floor_lsn: base_lsn,
                frames: Vec::new(),
                snapshot_lsn: base_lsn,
                last_lsn: base_lsn,
                acks: HashMap::new(),
                next_conn: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The lsn floor below which only a snapshot can catch a replica up
    /// (advances as acknowledged frames are pruned).
    pub fn retained_floor(&self) -> u64 {
        lock_recover(&self.inner).floor_lsn
    }

    /// The highest lsn published to the hub.
    pub fn last_lsn(&self) -> u64 {
        lock_recover(&self.inner).last_lsn
    }

    fn register(&self, acked: u64) -> u64 {
        let mut g = lock_recover(&self.inner);
        let id = g.next_conn;
        g.next_conn += 1;
        g.acks.insert(id, acked);
        id
    }

    fn deregister(&self, id: u64) {
        let mut g = lock_recover(&self.inner);
        g.acks.remove(&id);
        g.prune();
        drop(g);
        self.cv.notify_all();
    }

    fn record_ack(&self, id: u64, lsn: u64) {
        let mut g = lock_recover(&self.inner);
        if let Some(a) = g.acks.get_mut(&id) {
            *a = (*a).max(lsn);
        }
        g.prune();
        drop(g);
        self.cv.notify_all();
    }

    /// Blocks until every currently connected replica has acknowledged
    /// the hub's head lsn (or `timeout` passes). Returns `true` when
    /// fully replicated — with zero connected replicas that is
    /// trivially true, matching single-node drain semantics.
    pub fn wait_replicated(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = lock_recover(&self.inner);
        loop {
            let head = g.last_lsn;
            if g.acks.values().all(|&a| a >= head) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }

    /// Marks the hub closed: senders ship any remaining backlog and
    /// then drain out; further publishes become no-ops. Call only after
    /// [`ReplHub::wait_replicated`] — [`crate::ServeShared::drain_persist`]
    /// owns this ordering — so closing never strands frames a client was
    /// already acknowledged for.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.cv.notify_all();
    }

    /// Waits up to [`HEARTBEAT_EVERY`] for frames past `cursor`.
    /// Pending frames are delivered even on a closed hub — `Closed`
    /// only surfaces once nothing past the cursor remains, so a
    /// drain-time close cannot drop acknowledged-but-unshipped frames.
    fn wait_past(&self, cursor: u64) -> HubWait {
        let deadline = Instant::now() + HEARTBEAT_EVERY;
        let mut g = lock_recover(&self.inner);
        loop {
            if g.last_lsn > cursor {
                let from = g.frames.partition_point(|(l, _)| *l <= cursor);
                if from < g.frames.len() {
                    return HubWait::Frames(g.frames[from..].to_vec());
                }
            }
            if g.closed {
                return HubWait::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return HubWait::Quiet {
                    last_lsn: g.last_lsn,
                };
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }
}

impl RecordSink for ReplHub {
    fn publish(&self, lsn: u64, frame: Vec<u8>) {
        let mut g = lock_recover(&self.inner);
        if g.closed {
            return;
        }
        g.frames.push((lsn, frame));
        g.last_lsn = g.last_lsn.max(lsn);
        drop(g);
        self.cv.notify_all();
    }

    fn note_snapshot(&self, lsn: u64) {
        let mut g = lock_recover(&self.inner);
        g.snapshot_lsn = g.snapshot_lsn.max(lsn);
        g.prune();
    }
}

/// The primary's replication listener. Bind first (so the caller can
/// report the bound address), then [`ReplServer::serve`] on a thread.
pub struct ReplServer {
    listener: TcpListener,
}

impl ReplServer {
    /// Binds the replication listener (non-blocking accepts).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ReplServer { listener })
    }

    /// The bound listener address (for `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: one sender thread + one ack-reader thread per
    /// replica connection. Blocks until drain. Deliberately does NOT
    /// close the hub on drain: in-flight requests may still be
    /// journaling acknowledged writes, and the senders must keep
    /// shipping until replicas ack them. The hub is closed by
    /// [`crate::ServeShared::drain_persist`] after its replication
    /// flush.
    pub fn serve(self, shared: Arc<ServeShared>, hub: Arc<ReplHub>, token: DrainToken) {
        loop {
            if token.is_draining() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    let hub = Arc::clone(&hub);
                    let token = token.clone();
                    std::thread::spawn(move || serve_replica(stream, shared, hub, token));
                }
                Err(e) if is_timeout(&e) => std::thread::sleep(Duration::from_millis(25)),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

/// One replica connection on the primary: handshake, optional snapshot,
/// then stream records until the replica drops, drain starts, or the
/// `repl.ship` fault seam fires.
fn serve_replica(
    stream: TcpStream,
    shared: Arc<ServeShared>,
    hub: Arc<ReplHub>,
    token: DrainToken,
) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;

    // Handshake: wait (bounded) for HELLO. A FENCE here is the
    // resurrected-primary case: a promoted replica is telling us we
    // are superseded.
    let hello_deadline = Instant::now() + Duration::from_secs(10);
    let (replica_lsn, replica_epoch) = loop {
        match read_msg(&mut reader) {
            Ok(ReadOutcome::Msg(ReplMsg::Hello {
                proto,
                last_lsn,
                epoch,
            })) => {
                if proto != PROTO_VERSION {
                    eprintln!("gomq-serve: repl: refusing replica with protocol {proto}");
                    return;
                }
                break (last_lsn, epoch);
            }
            Ok(ReadOutcome::Msg(ReplMsg::Fence(epoch))) => {
                fence_if_superseded(&shared, epoch);
                return;
            }
            Ok(ReadOutcome::Msg(_)) | Ok(ReadOutcome::Eof) | Err(_) => return,
            Ok(ReadOutcome::Idle) => {
                if token.is_draining() || Instant::now() >= hello_deadline {
                    return;
                }
            }
        }
    };
    // A replica that has lived through a higher epoch than ours means
    // *we* are the stale primary.
    if replica_epoch > shared.repl().epoch() {
        fence_if_superseded(&shared, replica_epoch);
        return;
    }

    let conn = hub.register(replica_lsn);
    let alive = Arc::new(AtomicBool::new(true));

    // Ack/fence reader.
    {
        let hub = Arc::clone(&hub);
        let shared = Arc::clone(&shared);
        let alive = Arc::clone(&alive);
        std::thread::spawn(move || {
            loop {
                match read_msg(&mut reader) {
                    Ok(ReadOutcome::Msg(ReplMsg::Ack(lsn))) => hub.record_ack(conn, lsn),
                    Ok(ReadOutcome::Msg(ReplMsg::Fence(epoch))) => {
                        fence_if_superseded(&shared, epoch);
                    }
                    Ok(ReadOutcome::Msg(_)) => {}
                    Ok(ReadOutcome::Idle) => {
                        if !alive.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Ok(ReadOutcome::Eof) | Err(_) => break,
                }
            }
            alive.store(false, Ordering::Release);
        });
    }

    let mut cursor = replica_lsn;
    // Bootstrap: a replica behind the hub's retained window gets the
    // current snapshot ("copy immutable objects, then flip HEAD"), and
    // resumes tailing from the snapshot's lsn. Checked after register:
    // our ack entry pins the prune floor, so the floor cannot race past
    // a cursor it was just observed at or below.
    if cursor < hub.retained_floor() {
        let (bytes, snap_lsn) = {
            let session = shared.session_lock();
            let vocab = shared.vocab_lock();
            (
                session.encode_current_snapshot(&vocab),
                session.position().0,
            )
        };
        let size = bytes.len() as u64;
        if write_msg(&mut writer, &ReplMsg::Snapshot(bytes)).is_err() {
            hub.deregister(conn);
            alive.store(false, Ordering::Release);
            return;
        }
        shared.engine().record_repl_snapshot_shipped(size);
        cursor = snap_lsn;
    }

    loop {
        if token.is_draining() && hub.wait_replicated(Duration::from_millis(0)) {
            // Drained and everything acked — let the connection go.
            break;
        }
        if !alive.load(Ordering::Acquire) {
            break;
        }
        match hub.wait_past(cursor) {
            HubWait::Frames(frames) => {
                let mut failed = false;
                for (lsn, frame) in frames {
                    if let Some(faults::IoFault::Error | faults::IoFault::Short) =
                        faults::io_point(faults::REPL_SHIP)
                    {
                        eprintln!("gomq-serve: repl: chaos dropped replica connection (ship)");
                        failed = true;
                        break;
                    }
                    match write_msg(&mut writer, &ReplMsg::Record(frame)) {
                        Ok(n) => {
                            shared.engine().record_repl_ship(1, n as u64);
                            cursor = lsn;
                        }
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    break;
                }
            }
            HubWait::Quiet { last_lsn } => {
                let msg = ReplMsg::Heartbeat {
                    next_lsn: last_lsn + 1,
                    epoch: shared.repl().epoch(),
                };
                if write_msg(&mut writer, &msg).is_err() {
                    break;
                }
            }
            HubWait::Closed => break,
        }
    }
    let _ = writer.shutdown(std::net::Shutdown::Both);
    alive.store(false, Ordering::Release);
    hub.deregister(conn);
}

/// Observes a peer epoch and, if this node believed itself writable,
/// fences it: writes are refused with `"status": "fenced"` from here on.
pub fn fence_if_superseded(shared: &Arc<ServeShared>, peer_epoch: u64) {
    let ctx = shared.repl();
    if peer_epoch <= ctx.epoch() {
        return;
    }
    ctx.observe_epoch(peer_epoch);
    {
        let mut session = shared.session_lock();
        session.observe_epoch(peer_epoch);
    }
    match ctx.role() {
        Role::Primary | Role::Single => {
            ctx.set_role(Role::Fenced);
            eprintln!("gomq-serve: repl: fenced by epoch {peer_epoch} — refusing writes");
        }
        Role::Follower | Role::Fenced => {}
    }
}

/// Promotes this node to primary: stamps `max(seen epoch) + 1` into the
/// WAL and starts fencing the old primary's replication address.
/// Returns `(epoch, lsn of the epoch record)`.
pub fn promote(shared: &Arc<ServeShared>, reason: &str) -> Result<(u64, u64), SessionError> {
    let ctx = shared.repl();
    let (epoch, lsn) = {
        let mut session = shared.session_lock();
        let epoch = session.repl_epoch().max(ctx.epoch()) + 1;
        let info = session.stamp_epoch(epoch)?;
        (epoch, info.lsn)
    };
    ctx.observe_epoch(epoch);
    ctx.set_role(Role::Primary);
    shared.engine().record_repl_promotion();
    eprintln!("gomq-serve: repl: promoted to primary at epoch {epoch} (lsn {lsn}): {reason}");
    if let Some(addr) = ctx.fence_target() {
        let token = ctx.drain_token();
        std::thread::spawn(move || fencer(addr, epoch, token));
    }
    Ok((epoch, lsn))
}

/// Starts primary-side replication: binds the replication listener on
/// `addr`, wires the durable session's journal into a fan-out
/// [`ReplHub`], and spawns the accept loop. Returns the bound address
/// (for `:0` ephemeral ports). Requires a durable session — there is
/// no WAL to ship otherwise.
pub fn start_primary(
    shared: &Arc<ServeShared>,
    addr: &str,
    token: DrainToken,
) -> io::Result<SocketAddr> {
    let hub = {
        let mut session = shared.session_lock();
        if !session.is_durable() {
            return Err(io::Error::other(
                "--replicate-to requires --data-dir (replication ships the WAL)",
            ));
        }
        let hub = Arc::new(ReplHub::new(session.position().0));
        session.set_publisher(Arc::clone(&hub) as Arc<dyn RecordSink>);
        hub
    };
    shared.repl().set_hub(Arc::clone(&hub));
    shared.repl().set_role(Role::Primary);
    shared.repl().set_drain_token(token.clone());
    let server = ReplServer::bind(addr)?;
    let bound = server.local_addr()?;
    let shared = Arc::clone(shared);
    std::thread::spawn(move || server.serve(shared, hub, token));
    Ok(bound)
}

/// Starts follower-side replication: flips the role to
/// [`Role::Follower`], remembers the primary's address as the fence
/// target for a later promotion, and spawns the tailing loop
/// ([`run_follower`]). Call after [`bootstrap_follower`] and session
/// recovery.
pub fn start_follower(shared: &Arc<ServeShared>, cfg: FollowConfig, token: DrainToken) {
    shared.repl().set_fence_target(cfg.addr.clone());
    shared.repl().set_role(Role::Follower);
    shared.repl().set_drain_token(token.clone());
    let shared = Arc::clone(shared);
    std::thread::spawn(move || run_follower(shared, cfg, token));
}

/// Forces the node's observed epoch floor (the `--epoch` operator
/// override, for resurrecting a node at a known fencing point).
pub fn force_epoch(shared: &Arc<ServeShared>, epoch: u64) {
    shared.repl().observe_epoch(epoch);
    shared.session_lock().observe_epoch(epoch);
}

/// Pushes `FENCE(epoch)` at the old primary's replication address until
/// the process drains, so a resurrected process is fenced no matter
/// when it comes back during this primary's lifetime. One connection
/// attempt every 250ms is negligible load, and the drain token bounds
/// the thread's life.
fn fencer(addr: String, epoch: u64, token: DrainToken) {
    while !token.is_draining() {
        if let Ok(mut stream) = TcpStream::connect_timeout_compat(&addr, Duration::from_millis(500))
        {
            let _ = write_msg(&mut stream, &ReplMsg::Fence(epoch));
            // Give the peer a beat to read before we drop the socket.
            std::thread::sleep(Duration::from_millis(50));
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// `TcpStream::connect_timeout` needs a resolved `SocketAddr`; this
/// resolves a host:port string first (taking the first resolution).
trait ConnectCompat {
    fn connect_timeout_compat(addr: &str, timeout: Duration) -> io::Result<TcpStream>;
}

impl ConnectCompat for TcpStream {
    fn connect_timeout_compat(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
        use std::net::ToSocketAddrs;
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address did not resolve"))?;
        TcpStream::connect_timeout(&resolved, timeout)
    }
}

/// Follower configuration (`gomq-serve --follow`).
#[derive(Debug, Clone)]
pub struct FollowConfig {
    /// The primary's replication listener address.
    pub addr: String,
    /// Promote automatically once the reconnect window is exhausted.
    pub promote_on_disconnect: bool,
}

/// Pre-open bootstrap: probe the data directory's durable position,
/// ask the primary for a snapshot if we are behind its retained log,
/// and install it (then the normal [`ServeShared`] open recovers from
/// it). Returns the position the follower will recover to. Failure to
/// reach the primary is an error — a follower must not silently start
/// from a stale position without even trying.
pub fn bootstrap_follower(dir: &Path, addr: &str) -> io::Result<(u64, u64)> {
    let (local_lsn, local_epoch) = session::local_log_position(dir)
        .map_err(|e| corrupt(format!("probing {}: {e}", dir.display())))?;
    let mut stream = connect_with_retry(addr, 40)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    write_msg(
        &mut stream,
        &ReplMsg::Hello {
            proto: PROTO_VERSION,
            last_lsn: local_lsn,
            epoch: local_epoch,
        },
    )?;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match read_msg(&mut stream)? {
            ReadOutcome::Msg(ReplMsg::Snapshot(bytes)) => {
                let (snap_lsn, snap_epoch) = session::snapshot_position(&bytes)
                    .ok_or_else(|| corrupt("primary shipped an unparseable snapshot".to_owned()))?;
                install_snapshot(dir, &bytes)?;
                eprintln!(
                    "gomq-serve: repl: bootstrap installed snapshot (lsn {snap_lsn}, epoch {snap_epoch}, {} bytes)",
                    bytes.len()
                );
                return Ok((snap_lsn, snap_epoch));
            }
            // Record or heartbeat first means our local log is within
            // the primary's retained window — recover locally and tail.
            ReadOutcome::Msg(ReplMsg::Record(_) | ReplMsg::Heartbeat { .. }) => {
                return Ok((local_lsn, local_epoch));
            }
            ReadOutcome::Msg(ReplMsg::Fence(epoch)) => {
                return Err(corrupt(format!("primary is fenced at epoch {epoch}")));
            }
            ReadOutcome::Msg(_) => return Err(corrupt("unexpected bootstrap message".to_owned())),
            ReadOutcome::Eof => return Err(corrupt("primary closed during bootstrap".to_owned())),
            ReadOutcome::Idle => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "primary sent nothing during bootstrap",
                    ));
                }
            }
        }
    }
}

fn connect_with_retry(addr: &str, attempts: u32) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..attempts {
        match TcpStream::connect_timeout_compat(addr, Duration::from_millis(500)) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
}

/// Atomically installs a shipped snapshot image and clears any stale
/// journal, so the next open recovers exactly the snapshot state. The
/// image and its rename are fsynced *before* the old journal is
/// removed: a crash at any point leaves either the old (snapshot, wal)
/// pair or a durable new snapshot — never a torn snapshot with the
/// journal already gone.
fn install_snapshot(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join("snapshot.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(session::SNAPSHOT_FILE))?;
    // Durable rename needs the directory synced too; best effort on
    // filesystems that refuse to fsync directories.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_data();
    }
    for stale in [session::WAL_FILE, "wal.old"] {
        match std::fs::remove_file(dir.join(stale)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The follower's tailing loop: connect, HELLO from the session's
/// position, apply the stream, reconnect on drops, and (optionally)
/// promote once the reconnect window is exhausted. Blocks; run on a
/// thread. Returns when the node stops being a follower.
pub fn run_follower(shared: Arc<ServeShared>, cfg: FollowConfig, token: DrainToken) {
    let mut failures = 0u32;
    loop {
        if shared.repl().role() != Role::Follower || token.is_draining() {
            return;
        }
        match follow_once(&shared, &cfg.addr, &token) {
            FollowEnd::Progress => failures = 0,
            FollowEnd::NoProgress => failures += 1,
            FollowEnd::Stop => return,
        }
        if shared.repl().role() != Role::Follower || token.is_draining() {
            return;
        }
        shared.engine().record_repl_reconnect();
        if failures >= RECONNECT_ATTEMPTS {
            if cfg.promote_on_disconnect {
                // Stamping the epoch journals one record; a transient
                // (or chaos-injected) append failure rolls the log back
                // cleanly, so retry a few times before giving up.
                for attempt in 1..=5 {
                    match promote(&shared, "primary unreachable past reconnect window") {
                        Ok(_) => return,
                        Err(e) if attempt < 5 => {
                            eprintln!("gomq-serve: repl: promotion attempt {attempt} failed: {e}");
                            std::thread::sleep(Duration::from_millis(100));
                        }
                        Err(e) => {
                            eprintln!("gomq-serve: repl: promotion failed: {e}");
                            return;
                        }
                    }
                }
                return;
            }
            // No auto-promotion: keep trying at a gentle pace forever.
            std::thread::sleep(Duration::from_secs(1));
        } else {
            std::thread::sleep(RECONNECT_DELAY);
        }
    }
}

enum FollowEnd {
    /// The connection made progress (applied records or heartbeats) —
    /// reset the reconnect counter.
    Progress,
    /// Could not connect, or dropped before any message arrived.
    NoProgress,
    /// Stop following entirely (drain, role change, fatal apply error).
    Stop,
}

/// One follower connection: returns when it drops.
fn follow_once(shared: &Arc<ServeShared>, addr: &str, token: &DrainToken) -> FollowEnd {
    let mut stream = match TcpStream::connect_timeout_compat(addr, Duration::from_millis(500)) {
        Ok(s) => s,
        Err(_) => return FollowEnd::NoProgress,
    };
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return FollowEnd::NoProgress;
    }
    let (last_lsn, epoch) = {
        let session = shared.session_lock();
        (session.position().0, session.repl_epoch())
    };
    if write_msg(
        &mut stream,
        &ReplMsg::Hello {
            proto: PROTO_VERSION,
            last_lsn,
            epoch,
        },
    )
    .is_err()
    {
        return FollowEnd::NoProgress;
    }
    let mut progressed = false;
    let outcome = loop {
        if token.is_draining() || shared.repl().role() != Role::Follower {
            break FollowEnd::Stop;
        }
        match read_msg(&mut stream) {
            Ok(ReadOutcome::Msg(ReplMsg::Record(frame))) => {
                if let Some(faults::IoFault::Error | faults::IoFault::Short) =
                    faults::io_point(faults::REPL_APPLY)
                {
                    eprintln!("gomq-serve: repl: chaos dropped primary connection (apply)");
                    break end(progressed);
                }
                let (lsn, record, _len) = match WalRecord::decode_frame(&frame) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("gomq-serve: repl: bad record frame: {e}");
                        break end(progressed);
                    }
                };
                let applied = {
                    let mut session = shared.session_lock();
                    let mut vocab = shared.vocab_lock();
                    let r = session.apply_replicated(lsn, &record, &mut vocab);
                    if r.is_ok() && session.snapshot_due() {
                        if let Err(e) = session.snapshot_now(&vocab) {
                            eprintln!("gomq-serve: repl: replica snapshot failed: {e}");
                        } else {
                            shared.engine().record_snapshot();
                        }
                    }
                    r
                };
                match applied {
                    Ok(fresh) => {
                        progressed = true;
                        shared.repl().note_primary_lsn(lsn);
                        let applied_lsn = shared.session_lock().position().0;
                        shared.engine().record_repl_apply(
                            u64::from(fresh),
                            frame.len() as u64,
                            shared.repl().primary_lsn().saturating_sub(applied_lsn),
                        );
                        if write_msg(&mut stream, &ReplMsg::Ack(applied_lsn)).is_err() {
                            break end(progressed);
                        }
                    }
                    Err(SessionError::Corrupt(msg)) if msg.contains("replication gap") => {
                        // Reconnect re-HELLOs from our durable position,
                        // which makes the primary re-ship the gap.
                        eprintln!("gomq-serve: repl: {msg}; reconnecting");
                        break end(progressed);
                    }
                    Err(SessionError::Io(msg)) => {
                        // A failed journal append rolled the local log
                        // back to the pre-record position, so the
                        // record was not applied and a reconnect makes
                        // the primary re-ship it. Transient (and
                        // chaos-injected) I/O must not kill replication
                        // for good.
                        eprintln!("gomq-serve: repl: apply I/O error: {msg}; reconnecting");
                        break end(progressed);
                    }
                    Err(e) => {
                        eprintln!("gomq-serve: repl: fatal apply error: {e}");
                        break FollowEnd::Stop;
                    }
                }
            }
            Ok(ReadOutcome::Msg(ReplMsg::Heartbeat { next_lsn, epoch })) => {
                progressed = true;
                shared.repl().note_primary_lsn(next_lsn.saturating_sub(1));
                if epoch > shared.repl().epoch() {
                    shared.repl().observe_epoch(epoch);
                    shared.session_lock().observe_epoch(epoch);
                }
                let applied = shared.session_lock().position().0;
                shared
                    .engine()
                    .record_repl_lag(shared.repl().primary_lsn().saturating_sub(applied));
            }
            Ok(ReadOutcome::Msg(ReplMsg::Snapshot(bytes))) => {
                // The primary pruned its retained log past our position
                // while we were disconnected: re-bootstrap in place by
                // installing the shipped snapshot over the live session
                // and tail from its lsn.
                let installed = {
                    let mut session = shared.session_lock();
                    let mut vocab = shared.vocab_lock();
                    session.install_replicated_snapshot(&bytes, &mut vocab)
                };
                match installed {
                    Ok((lsn, _epoch)) => {
                        eprintln!(
                            "gomq-serve: repl: installed primary snapshot (lsn {lsn}, {} bytes)",
                            bytes.len()
                        );
                        progressed = true;
                        shared.repl().note_primary_lsn(lsn);
                        if write_msg(&mut stream, &ReplMsg::Ack(lsn)).is_err() {
                            break end(progressed);
                        }
                    }
                    Err(SessionError::Io(msg)) => {
                        // Disk trouble is transient; reconnecting re-ships
                        // the snapshot.
                        eprintln!("gomq-serve: repl: snapshot install I/O error: {msg}; reconnecting");
                        break end(progressed);
                    }
                    Err(e) => {
                        eprintln!("gomq-serve: repl: fatal snapshot install error: {e}");
                        break FollowEnd::Stop;
                    }
                }
            }
            Ok(ReadOutcome::Msg(ReplMsg::Fence(epoch))) => {
                fence_if_superseded(shared, epoch);
            }
            Ok(ReadOutcome::Msg(_)) => {}
            Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Eof) | Err(_) => break end(progressed),
        }
    };
    let _ = stream.shutdown(std::net::Shutdown::Both);
    outcome
}

fn end(progressed: bool) -> FollowEnd {
    if progressed {
        FollowEnd::Progress
    } else {
        FollowEnd::NoProgress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip_through_frames() {
        let msgs = [
            ReplMsg::Hello {
                proto: PROTO_VERSION,
                last_lsn: 42,
                epoch: 7,
            },
            ReplMsg::Snapshot(vec![1, 2, 3, 4]),
            ReplMsg::Record(vec![9; 33]),
            ReplMsg::Heartbeat {
                next_lsn: 100,
                epoch: 3,
            },
            ReplMsg::Ack(99),
            ReplMsg::Fence(5),
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_msg(&mut wire, m).unwrap();
        }
        let mut r = io::Cursor::new(wire);
        for m in &msgs {
            match read_msg(&mut r).unwrap() {
                ReadOutcome::Msg(got) => assert_eq!(&got, m),
                _ => panic!("expected a message"),
            }
        }
        match read_msg(&mut r).unwrap() {
            ReadOutcome::Eof => {}
            _ => panic!("expected eof"),
        }
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &ReplMsg::Ack(7)).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        let mut r = io::Cursor::new(wire);
        let err = match read_msg(&mut r) {
            Err(e) => e,
            Ok(_) => panic!("checksum mismatch must error"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        let mut r = io::Cursor::new(wire);
        assert!(read_msg(&mut r).is_err());
    }

    #[test]
    fn hub_tracks_acks_and_wait_replicated() {
        let hub = ReplHub::new(10);
        assert!(
            hub.wait_replicated(Duration::from_millis(0)),
            "no replicas = replicated"
        );
        let a = hub.register(10);
        hub.publish(11, vec![1]);
        hub.publish(12, vec![2]);
        assert!(!hub.wait_replicated(Duration::from_millis(10)));
        match hub.wait_past(10) {
            HubWait::Frames(f) => {
                assert_eq!(f.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![11, 12]);
            }
            _ => panic!("expected frames"),
        }
        hub.record_ack(a, 12);
        assert!(hub.wait_replicated(Duration::from_millis(10)));
        match hub.wait_past(12) {
            HubWait::Quiet { last_lsn } => assert_eq!(last_lsn, 12),
            _ => panic!("expected quiet"),
        }
        hub.deregister(a);
        assert!(hub.wait_replicated(Duration::from_millis(0)));
    }

    #[test]
    fn hub_prunes_acknowledged_frames() {
        let hub = ReplHub::new(0);
        // No replica connected, no snapshot yet: frames are retained so
        // a reconnecting replica can still tail the log.
        hub.publish(1, vec![1]);
        assert_eq!(hub.retained_floor(), 0);
        // A durable snapshot releases everything it covers.
        hub.note_snapshot(1);
        assert_eq!(hub.retained_floor(), 1);
        let a = hub.register(1);
        hub.publish(2, vec![2]);
        hub.publish(3, vec![3]);
        // Retained while the connected replica is behind...
        assert_eq!(hub.retained_floor(), 1);
        hub.record_ack(a, 2);
        // ...pruned up to its ack...
        assert_eq!(hub.retained_floor(), 2);
        match hub.wait_past(2) {
            HubWait::Frames(f) => {
                assert_eq!(f.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![3]);
            }
            _ => panic!("expected frames"),
        }
        // A connected-but-behind replica pins the floor across a
        // snapshot cut (no gap can open under its cursor)...
        hub.note_snapshot(3);
        assert_eq!(hub.retained_floor(), 2);
        hub.deregister(a);
        // ...and departure releases the snapshot-covered remainder: a
        // newcomer below the floor bootstraps from a snapshot.
        assert_eq!(hub.retained_floor(), 3);
    }

    #[test]
    fn hub_close_delivers_backlog_before_closed() {
        let hub = ReplHub::new(0);
        let a = hub.register(0);
        hub.publish(1, vec![1]);
        hub.publish(2, vec![2]);
        hub.close();
        // A sender on a closed hub still receives the backlog — a
        // drain-time close must not strand acknowledged frames...
        match hub.wait_past(0) {
            HubWait::Frames(f) => {
                assert_eq!(f.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1, 2]);
            }
            _ => panic!("backlog must be delivered on a closed hub"),
        }
        hub.record_ack(a, 2);
        // ...while publishes after close are dropped, and Closed only
        // surfaces once nothing past the cursor remains.
        hub.publish(3, vec![3]);
        match hub.wait_past(2) {
            HubWait::Closed => {}
            _ => panic!("expected closed"),
        }
    }

    #[test]
    fn hub_close_wakes_waiters() {
        let hub = Arc::new(ReplHub::new(0));
        let h2 = Arc::clone(&hub);
        let t = std::thread::spawn(move || matches!(h2.wait_past(0), HubWait::Closed));
        std::thread::sleep(Duration::from_millis(20));
        hub.close();
        assert!(t.join().unwrap());
    }

    #[test]
    fn repl_context_role_and_epoch() {
        let ctx = ReplContext::default();
        assert_eq!(ctx.role(), Role::Single);
        ctx.set_role(Role::Follower);
        assert_eq!(ctx.role(), Role::Follower);
        ctx.observe_epoch(3);
        ctx.observe_epoch(2);
        assert_eq!(ctx.epoch(), 3);
        ctx.note_primary_lsn(9);
        ctx.note_primary_lsn(4);
        assert_eq!(ctx.primary_lsn(), 9);
        assert_eq!(Role::Fenced.name(), "fenced");
    }
}
