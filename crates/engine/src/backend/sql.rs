//! The SQL backend: executing a plan's emitted SQL in-process.
//!
//! `OmqPlan::compile` eagerly lowers every non-recursive plan to
//! portable SQL text (`gomq_rewriting::emit_sql`); this module runs
//! that text against the request's ABox using the dependency-free
//! `gomq-sqlexec` reference executor. The pipeline is deliberately
//! different from the native fixpoint at every layer — emitted text
//! instead of rule structs, string tables instead of interned term
//! arenas, nested-loop SQL evaluation instead of semi-naive rounds —
//! which is exactly what makes the native ≡ SQL cross-check in
//! `tests/sql_crosscheck.rs` meaningful.
//!
//! Recursive plans never reach this module: callers surface
//! [`EngineError::NotSqlRewritable`] (wire status
//! `non-rewritable-to-sql`) instead, so the SQL backend refuses rather
//! than under-approximates.

use crate::plan::EngineError;
use gomq_core::{IndexedInstance, Term, Vocab};
use gomq_datalog::{Budget, BudgetExceeded, LimitKind};
use gomq_rewriting::SqlPlan;
use gomq_sqlexec::{run, Database, Limits, SqlError};
use std::collections::{BTreeMap, BTreeSet};

/// Executes an emitted SQL plan over one ABox and maps the string rows
/// back to interned terms.
///
/// The ABox is rendered into a fresh string-valued [`Database`] (every
/// required table from [`SqlPlan::tables`] is created, empty or not),
/// the statement runs under the request budget (`max_derived` caps
/// materialized rows, the deadline is checked cooperatively), and each
/// answer value is resolved back through the terms seen while building
/// the database — falling back to the vocabulary for ground literals
/// baked into rules.
pub fn eval_sql_budgeted(
    sql: &SqlPlan,
    abox: &IndexedInstance,
    vocab: &Vocab,
    budget: &Budget,
) -> Result<BTreeSet<Vec<Term>>, EngineError> {
    let mut db = Database::new();
    for (name, arity) in &sql.tables {
        db.create(name, *arity);
    }
    let mut values: BTreeMap<String, Term> = BTreeMap::new();
    for f in abox.iter() {
        let name = vocab.rel_name(f.rel).to_string();
        let row: Vec<String> = f
            .args
            .iter()
            .map(|t| {
                let s = t.display(vocab).to_string();
                values.entry(s.clone()).or_insert(*t);
                s
            })
            .collect();
        db.create(&name, row.len()).insert(row);
    }
    let limits = Limits {
        max_rows: budget.max_derived,
        deadline: budget.deadline,
    };
    let result = run(&sql.sql, &db, &limits).map_err(|e| match e {
        SqlError::RowLimit(n) => EngineError::Overloaded(BudgetExceeded {
            limit: LimitKind::Derived,
            rounds: 0,
            derived: n,
        }),
        SqlError::Deadline => EngineError::Overloaded(BudgetExceeded {
            limit: LimitKind::Deadline,
            rounds: 0,
            derived: 0,
        }),
        other => EngineError::Internal(format!("SQL backend: {other}")),
    })?;
    result
        .rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| {
                    values
                        .get(&v)
                        .copied()
                        .or_else(|| vocab.find_constant(&v).map(Term::Const))
                        .ok_or_else(|| {
                            EngineError::Internal(format!(
                                "SQL answer value {v:?} is not a known constant"
                            ))
                        })
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::OmqPlan;
    use gomq_core::parse::parse_instance;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;

    /// A pure concept hierarchy compiles to a non-recursive plan whose
    /// SQL execution matches the native answers.
    #[test]
    fn hierarchy_plan_runs_on_both_backends() {
        let mut v = Vocab::new();
        let dl = parse_ontology("A sub B\nB sub C\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let c = v.find_rel("C").unwrap();
        let plan = OmqPlan::compile(&o, c, &mut v).unwrap();
        let sql = plan.sql.as_ref().expect("hierarchy plans are acyclic");
        let abox = parse_instance("A(x)\nC(y)\n", &mut v).unwrap();
        let indexed = IndexedInstance::from_interpretation(&abox);
        let got = eval_sql_budgeted(sql, &indexed, &v, &Budget::UNLIMITED).unwrap();
        let (native, _) =
            crate::backend::native::eval_strata(&plan.strata, plan.program.goal, &indexed, 1);
        assert_eq!(got, native);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn row_budget_maps_to_overloaded() {
        let mut v = Vocab::new();
        let dl = parse_ontology("A sub B\n", &mut v).unwrap();
        let o = to_gf(&dl);
        let b = v.find_rel("B").unwrap();
        let plan = OmqPlan::compile(&o, b, &mut v).unwrap();
        let sql = plan.sql.as_ref().expect("acyclic");
        let mut text = String::new();
        for i in 0..64 {
            text.push_str(&format!("A(x{i})\n"));
        }
        let abox = parse_instance(&text, &mut v).unwrap();
        let indexed = IndexedInstance::from_interpretation(&abox);
        let budget = Budget {
            max_derived: Some(3),
            ..Budget::UNLIMITED
        };
        match eval_sql_budgeted(sql, &indexed, &v, &budget) {
            Err(EngineError::Overloaded(e)) => assert_eq!(e.limit, LimitKind::Derived),
            other => panic!("expected overloaded, got {other:?}"),
        }
    }
}
