//! Executor backends over the shared plan IR.
//!
//! [`OmqPlan::compile`](crate::plan::OmqPlan) lowers an OMQ to a
//! [`gomq_datalog::ir::PlanIr`] — a stratified rule graph annotated
//! with recursion and `≠` information — and every backend consumes that
//! one IR:
//!
//! * [`native`] — the in-process semi-naive fixpoint engine (indexed,
//!   parallel, budgeted). Runs every plan, recursive or not.
//! * [`sql`] — executes the portable SQL emitted by
//!   `gomq_rewriting::emit_sql` against the zero-dependency
//!   `gomq-sqlexec` table model. Only non-recursive plans (the
//!   [`Rewritability::FirstOrder`](gomq_datalog::ir::Rewritability)
//!   tier) are SQL-expressible; recursive plans get a typed
//!   `non-rewritable-to-sql` refusal, never a wrong answer.

pub mod native;
pub mod sql;

/// Which executor answers a request.
///
/// Parsed from the per-request `"backend"` option and from the
/// `gomq-serve --backend` default flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// The semi-naive fixpoint engine ([`native`]); the default.
    #[default]
    Native,
    /// The emitted-SQL path ([`sql`]); refuses recursive plans.
    Sql,
}

impl Backend {
    /// Parses a backend name; the error is a client-facing message
    /// listing the accepted values.
    pub fn from_name(name: &str) -> Result<Backend, String> {
        match name {
            "native" => Ok(Backend::Native),
            "sql" => Ok(Backend::Sql),
            other => Err(format!(
                "unknown backend \"{other}\": expected \"native\" or \"sql\""
            )),
        }
    }

    /// The wire name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Native => "native",
            Backend::Sql => "sql",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
