//! The native backend: stratified, indexed, parallel Datalog≠ evaluation.
//!
//! The one-shot evaluator in `gomq-datalog` re-runs every rule of the
//! program in every fixpoint round. This module consumes the
//! backend-agnostic [`PlanIr`] (one SCC stratum at a time, bodies-first
//! order — see `gomq_datalog::ir`) and:
//!
//! 1. runs one semi-naive fixpoint per stratum, so rules whose inputs
//!    are already saturated are never revisited (a non-recursive
//!    stratum saturates in a single pass);
//! 2. evaluates against [`IndexedInstance`]s, so joins with a bound
//!    first argument probe a hash bucket instead of scanning;
//! 3. splits the rules of a stratum across a scoped worker pool within
//!    each round ([`std::thread::scope`] — no external dependencies),
//!    merging the per-worker derivations into the next delta.
//!
//! [`eval_program`] is answer-equivalent to [`Program::eval`]; the
//! property tests in `tests/engine_props.rs` check exactly that, and
//! `tests/sql_crosscheck.rs` checks it against the SQL backend.

use gomq_core::{DeltaView, FactBuf, IndexedInstance, Instance, RelId, Term};
use gomq_datalog::eval::EvalStats;
use gomq_datalog::ir::{PlanIr, StratumIr};
use gomq_datalog::{derive_round, Budget, BudgetExceeded, Program, Rule};
use std::collections::BTreeSet;

/// Backward-compatible name for the shared [`PlanIr`]: the native
/// executor predates the backend split and its callers construct and
/// pass "strata".
pub type Strata = PlanIr;

/// Backward-compatible name for [`StratumIr`].
pub type Stratum = StratumIr;

/// Minimum number of delta facts per round before a round is worth
/// splitting across threads; below this the spawn overhead dominates.
const PARALLEL_DELTA_THRESHOLD: usize = 64;

/// One semi-naive round over `rules`, split across `threads` workers.
///
/// The round's delta is the id range of `total` past `frontier` (a
/// [`DeltaView`] — no delta set is materialized, let alone cloned);
/// staged head facts land in the columnar `out` buffer, per-worker
/// buffers being merged with bulk [`FactBuf::append`]s.
fn parallel_round(
    rules: &[Rule],
    total: &IndexedInstance,
    frontier: u32,
    threads: usize,
    out: &mut FactBuf,
) {
    let delta_len = total.len() - frontier as usize;
    let workers = threads.min(rules.len()).max(1);
    if workers == 1 || delta_len < PARALLEL_DELTA_THRESHOLD {
        derive_round(rules, total, &DeltaView::new(total, frontier), out);
        return;
    }
    let chunk_size = rules.len().div_ceil(workers);
    let chunks: Vec<&[Rule]> = rules.chunks(chunk_size).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut buf = FactBuf::new();
                    derive_round(chunk, total, &DeltaView::new(total, frontier), &mut buf);
                    buf
                })
            })
            .collect();
        for h in handles {
            // Re-raise worker panics on the calling thread so the serving
            // layer's catch_unwind isolates them per request.
            let mut buf = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            out.append(&mut buf);
        }
    });
}

/// Interns the staged facts into `total` (slice interning — the only
/// copy is the new facts' arguments landing in the arena) and returns
/// how many were new. The next round's delta is `total`'s id range past
/// the pre-absorb frontier.
fn absorb(staged: &FactBuf, total: &mut IndexedInstance) -> usize {
    let before = total.len();
    for f in staged.iter() {
        total.insert_ref(f.rel, f.args);
    }
    total.len() - before
}

/// Runs the semi-naive fixpoint of one stratum on top of `total`,
/// checking the cooperative budget between rounds.
fn fixpoint_stratum(
    stratum: &StratumIr,
    total: &mut IndexedInstance,
    threads: usize,
    stats: &mut EvalStats,
    budget: &Budget,
) -> Result<(), BudgetExceeded> {
    budget.check(stats)?;
    // First pass: every fact so far is "new" for this stratum, so the
    // delta view starts at id 0 (the whole saturated total). The pass is
    // complete for the stratum's inputs because earlier strata are
    // already saturated.
    gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
    stats.rounds = stats.rounds.saturating_add(1);
    let mut staged = FactBuf::new();
    parallel_round(&stratum.rules, total, 0, threads, &mut staged);
    let mut frontier = total.len() as u32;
    stats.derived = stats.derived.saturating_add(absorb(&staged, total));
    if !stratum.recursive {
        // Heads never feed bodies within this stratum: one pass is the
        // fixpoint, skip the would-be-empty confirmation round.
        return Ok(());
    }
    while (frontier as usize) < total.len() {
        budget.check(stats)?;
        gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
        stats.rounds = stats.rounds.saturating_add(1);
        staged.clear();
        parallel_round(&stratum.rules, total, frontier, threads, &mut staged);
        frontier = total.len() as u32;
        stats.derived = stats.derived.saturating_add(absorb(&staged, total));
    }
    Ok(())
}

/// An answer set paired with its evaluation statistics.
pub type EvalOutcome = (BTreeSet<Vec<Term>>, EvalStats);

/// Evaluates `strata` (from `program`) over an indexed instance with up
/// to `threads` workers; returns the goal tuples and statistics.
///
/// Answer-equivalent to [`Program::eval`] on the corresponding plain
/// instance.
pub fn eval_strata(
    strata: &PlanIr,
    goal: RelId,
    d: &IndexedInstance,
    threads: usize,
) -> EvalOutcome {
    eval_strata_budgeted(strata, goal, d, threads, &Budget::UNLIMITED)
        .expect("the unlimited budget cannot be exceeded")
}

/// [`eval_strata`] under a cooperative resource [`Budget`]: rounds,
/// derived-fact fuel and the wall-clock deadline are checked between
/// rounds (a pathological request stops with [`BudgetExceeded`] instead
/// of monopolizing the session; the work done so far is discarded).
pub fn eval_strata_budgeted(
    strata: &PlanIr,
    goal: RelId,
    d: &IndexedInstance,
    threads: usize,
    budget: &Budget,
) -> Result<EvalOutcome, BudgetExceeded> {
    // Clones the EDB's store columns wholesale (no per-fact work); every
    // round then appends into this one arena.
    let mut total = d.clone();
    let mut stats = EvalStats::default();
    for stratum in &strata.strata {
        fixpoint_stratum(stratum, &mut total, threads, &mut stats, budget)?;
    }
    let answers = total.facts_of(goal).map(|f| f.args.to_vec()).collect();
    stats.store = total.store_stats();
    Ok((answers, stats))
}

/// Stratifies and evaluates `program` in one call (plan-less entry
/// point; `gomq-engine` plans cache the [`PlanIr`] instead).
pub fn eval_program(
    program: &Program,
    d: &IndexedInstance,
    threads: usize,
) -> (BTreeSet<Vec<Term>>, EvalStats) {
    eval_strata(&PlanIr::of(program), program.goal, d, threads)
}

/// Evaluates one stratified plan against many instances concurrently
/// (one instance per worker, work-stealing via an atomic cursor).
pub fn eval_batch(
    strata: &PlanIr,
    goal: RelId,
    aboxes: &[IndexedInstance],
    threads: usize,
) -> Vec<EvalOutcome> {
    eval_batch_budgeted(strata, goal, aboxes, threads, &Budget::UNLIMITED)
        .expect("the unlimited budget cannot be exceeded")
}

/// [`eval_batch`] under a cooperative [`Budget`]. Round and
/// derived-fact fuel apply *per ABox*; the deadline is shared wall
/// clock. The first exhausted ABox fails the whole batch (remaining
/// workers drain quickly: each checks the budget between rounds).
pub fn eval_batch_budgeted(
    strata: &PlanIr,
    goal: RelId,
    aboxes: &[IndexedInstance],
    threads: usize,
    budget: &Budget,
) -> Result<Vec<EvalOutcome>, BudgetExceeded> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let workers = threads.min(aboxes.len()).max(1);
    if workers <= 1 {
        return aboxes
            .iter()
            .map(|d| eval_strata_budgeted(strata, goal, d, threads, budget))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<EvalOutcome, BudgetExceeded>>>> =
        aboxes.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= aboxes.len() {
                    break;
                }
                // Each worker evaluates its instance single-threaded;
                // parallelism comes from the batch dimension here.
                let r = eval_strata_budgeted(strata, goal, &aboxes[i], 1, budget);
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot filled")
        })
        .collect()
}

/// Convenience: index a plain instance and evaluate (used by tests and
/// by callers that hold plain [`Instance`]s).
pub fn eval_plain(
    program: &Program,
    d: &Instance,
    threads: usize,
) -> (BTreeSet<Vec<Term>>, EvalStats) {
    eval_program(program, &IndexedInstance::from_interpretation(d), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::{Fact, Vocab};
    use gomq_datalog::{DAtom, DTerm, Literal};

    fn tc_program(v: &mut Vocab) -> Program {
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let s = v.rel("S", 2);
        let g = v.rel("goal", 2);
        Program::new(
            vec![
                Rule::new(
                    DAtom::vars(t, &[0, 1]),
                    vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
                ),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Pos(DAtom::vars(e, &[1, 2])),
                    ],
                ),
                // A second layer on top of T, so there are ≥ 3 strata.
                Rule::new(
                    DAtom::vars(s, &[0, 1]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                    ],
                ),
                Rule::new(
                    DAtom::vars(g, &[0, 1]),
                    vec![Literal::Pos(DAtom::vars(s, &[0, 1]))],
                ),
            ],
            g,
        )
    }

    fn cycle(v: &mut Vocab, n: usize) -> Instance {
        let e = v.rel("E", 2);
        let mut d = Instance::new();
        for i in 0..n {
            let a = v.constant(&format!("c{i}"));
            let b = v.constant(&format!("c{}", (i + 1) % n));
            d.insert(Fact::consts(e, &[a, b]));
        }
        d
    }

    #[test]
    fn strata_order_is_bodies_first() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let strata = Strata::of(&p);
        assert_eq!(strata.len(), 3);
        let t = v.rel("T", 2);
        let s = v.rel("S", 2);
        let g = v.rel("goal", 2);
        let heads: Vec<BTreeSet<RelId>> = strata
            .strata
            .iter()
            .map(|s| s.rules.iter().map(|r| r.head.rel).collect())
            .collect();
        assert_eq!(heads[0], [t].into_iter().collect());
        assert_eq!(heads[1], [s].into_iter().collect());
        assert_eq!(heads[2], [g].into_iter().collect());
    }

    #[test]
    fn stratified_matches_one_shot() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = cycle(&mut v, 7);
        let expected = p.eval(&d);
        for threads in [1, 4] {
            let (got, stats) = eval_plain(&p, &d, threads);
            assert_eq!(got, expected, "threads = {threads}");
            assert!(stats.rounds >= 3);
        }
        assert_eq!(expected.len(), 7 * 6);
    }

    #[test]
    fn batch_matches_individual_evaluation() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let strata = Strata::of(&p);
        let aboxes: Vec<IndexedInstance> = (3..9)
            .map(|n| IndexedInstance::from_interpretation(&cycle(&mut v, n)))
            .collect();
        let batch = eval_batch(&strata, p.goal, &aboxes, 4);
        assert_eq!(batch.len(), aboxes.len());
        for (i, d) in aboxes.iter().enumerate() {
            let (individual, _) = eval_strata(&strata, p.goal, d, 1);
            assert_eq!(batch[i].0, individual, "abox {i}");
        }
    }

    #[test]
    fn empty_program_and_goal_edb_facts() {
        let mut v = Vocab::new();
        let g = v.rel("goal", 1);
        let p = Program::new(vec![], g);
        let a = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(g, &[a]));
        // Goal facts already in the EDB are answers, as in Program::eval.
        let (ans, _) = eval_plain(&p, &d, 2);
        assert_eq!(ans, p.eval(&d));
        assert_eq!(ans.len(), 1);
    }
}
