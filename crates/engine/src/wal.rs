//! The session write-ahead log: length-prefixed, checksummed records of
//! every ABox mutation, journaled *before* the mutation is applied.
//!
//! ## Frame format
//!
//! ```text
//! [u32 payload_len] [u64 fnv1a(payload)] [payload]
//! payload = [u64 lsn] [u8 record_tag] [record body]
//! ```
//!
//! All integers are little-endian. Replay stops at the first frame whose
//! length prefix overruns the file, whose checksum mismatches, or whose
//! body fails to decode — that prefix boundary is taken as the durable
//! log and the file is truncated there, which is exactly the
//! "torn final record" a crash mid-append leaves behind.
//!
//! ## Symbolic facts
//!
//! Records carry facts *symbolically* ([`SymFact`]: relation and
//! constant names, null ordinals) rather than as interned ids. Replay
//! re-interns by name in journal order, so the rebuilt session store
//! assigns the same [`gomq_core::FactId`]s and renders the same answer
//! strings as the pre-crash session, even though the vocabulary's
//! internal id assignment may differ (per-request constants interned and
//! rolled back between mutations shift ids but never names).
//!
//! Fault seams: [`faults::WAL_WRITE`] (short write / write error) and
//! [`faults::WAL_FSYNC`] (fsync error) — see [`gomq_core::faults`]. An
//! injected or real failure rolls the file back to the pre-append length
//! so an unacknowledged mutation is never replayed.

use gomq_core::faults;
use gomq_rewriting::fnv1a;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one frame's payload; larger length prefixes are
/// treated as corruption (a torn or garbage length word would otherwise
/// ask for gigabytes).
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// A term carried symbolically in a WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymTerm {
    /// A constant, by name.
    Const(String),
    /// A labelled null, by ordinal.
    Null(u32),
}

/// A fact carried symbolically in a WAL record (relation name plus
/// arguments; the arity is the argument count).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymFact {
    /// Relation name.
    pub rel: String,
    /// Argument terms.
    pub args: Vec<SymTerm>,
}

/// One journaled session mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A batch of facts asserted into the session store.
    Assert(Vec<SymFact>),
    /// A rollback point created with the given mark id.
    Mark(u64),
    /// A rollback to a previously created mark.
    Rollback(u64),
    /// A replication-epoch bump, stamped when a replica promotes to
    /// primary. Replaying it raises the session's epoch; a node whose
    /// epoch is below another's is *fenced* — a resurrected old primary
    /// that learns of a higher epoch refuses writes.
    Epoch(u64),
}

const TAG_ASSERT: u8 = 1;
const TAG_MARK: u8 = 2;
const TAG_ROLLBACK: u8 = 3;
const TAG_EPOCH: u8 = 4;

// ---- byte-level helpers (shared with the snapshot encoder) ----

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a byte slice; every decode error is a
/// `String` describing the corruption.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, {} available",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_owned())
    }
}

// ---- record encode/decode ----

fn encode_sym_fact(buf: &mut Vec<u8>, f: &SymFact) {
    put_str(buf, &f.rel);
    put_u32(buf, f.args.len() as u32);
    for a in &f.args {
        match a {
            SymTerm::Const(name) => {
                buf.push(0);
                put_str(buf, name);
            }
            SymTerm::Null(n) => {
                buf.push(1);
                put_u32(buf, *n);
            }
        }
    }
}

fn decode_sym_fact(c: &mut Cursor<'_>) -> Result<SymFact, String> {
    let rel = c.take_str()?;
    let argc = c.take_u32()? as usize;
    if argc > MAX_FRAME_BYTES as usize {
        return Err(format!("absurd arity {argc}"));
    }
    let mut args = Vec::with_capacity(argc.min(64));
    for _ in 0..argc {
        args.push(match c.take_u8()? {
            0 => SymTerm::Const(c.take_str()?),
            1 => SymTerm::Null(c.take_u32()?),
            t => return Err(format!("unknown term tag {t}")),
        });
    }
    Ok(SymFact { rel, args })
}

impl WalRecord {
    /// Encodes the record body (without lsn/tag framing).
    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Assert(facts) => {
                put_u32(buf, facts.len() as u32);
                for f in facts {
                    encode_sym_fact(buf, f);
                }
            }
            WalRecord::Mark(id) | WalRecord::Rollback(id) | WalRecord::Epoch(id) => {
                put_u64(buf, *id)
            }
        }
    }

    fn tag(&self) -> u8 {
        match self {
            WalRecord::Assert(_) => TAG_ASSERT,
            WalRecord::Mark(_) => TAG_MARK,
            WalRecord::Rollback(_) => TAG_ROLLBACK,
            WalRecord::Epoch(_) => TAG_EPOCH,
        }
    }

    fn decode(tag: u8, c: &mut Cursor<'_>) -> Result<WalRecord, String> {
        match tag {
            TAG_ASSERT => {
                let n = c.take_u32()? as usize;
                if n > MAX_FRAME_BYTES as usize {
                    return Err(format!("absurd fact count {n}"));
                }
                let mut facts = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    facts.push(decode_sym_fact(c)?);
                }
                Ok(WalRecord::Assert(facts))
            }
            TAG_MARK => Ok(WalRecord::Mark(c.take_u64()?)),
            TAG_ROLLBACK => Ok(WalRecord::Rollback(c.take_u64()?)),
            TAG_EPOCH => Ok(WalRecord::Epoch(c.take_u64()?)),
            t => Err(format!("unknown record tag {t}")),
        }
    }

    /// Validates and decodes one complete frame from the start of
    /// `bytes`, returning `(lsn, record, frame length)`. The replication
    /// stream ships exactly these frames, so a replica re-checks the
    /// checksum end-to-end before journaling.
    pub fn decode_frame(bytes: &[u8]) -> Result<(u64, WalRecord, usize), String> {
        let end =
            Wal::validate_frame(bytes).ok_or_else(|| "torn or corrupt wal frame".to_owned())?;
        let mut c = Cursor::new(&bytes[12..end]);
        let lsn = c.take_u64()?;
        let tag = c.take_u8()?;
        let rec = WalRecord::decode(tag, &mut c)?;
        if !c.done() {
            return Err("trailing bytes in payload".to_owned());
        }
        Ok((lsn, rec, end))
    }

    /// Encodes one full frame: length prefix, checksum, payload.
    pub fn encode_frame(&self, lsn: u64) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        put_u64(&mut payload, lsn);
        payload.push(self.tag());
        self.encode_body(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 12);
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv1a(&payload));
        frame.extend_from_slice(&payload);
        frame
    }
}

/// The outcome of replaying a WAL file.
#[derive(Debug)]
pub struct Replayed {
    /// The valid records, in journal order, each with its lsn.
    pub records: Vec<(u64, WalRecord)>,
    /// Whether a torn/corrupt tail was found and truncated away.
    pub truncated: bool,
    /// The highest lsn among the valid records (0 when none).
    pub last_lsn: u64,
    /// Bytes of valid log retained.
    pub bytes: u64,
}

/// An append-only handle on the session WAL.
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: bool,
    next_lsn: u64,
    len: u64,
}

/// Wraps an I/O error with the journal path and the failing operation,
/// so chaos-test triage reads `wal append wal.log: ...` instead of a
/// bare `No space left on device`.
fn io_ctx(op: &str, path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("wal {op} {}: {e}", path.display()))
}

impl Wal {
    /// Opens (creating if absent) the log for appending. `next_lsn` is
    /// the lsn the next record will carry — recovery passes
    /// `last_lsn + 1`.
    pub fn open(path: &Path, fsync: bool, next_lsn: u64) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_ctx("open", path, e))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_ctx("seek", path, e))?;
        Ok(Wal {
            file,
            path: path.to_owned(),
            fsync,
            next_lsn,
            len,
        })
    }

    /// The lsn the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Current byte length of the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The log's replication position: `(next lsn, live segment bytes)`.
    /// A replica that has applied everything up to `next lsn - 1` is
    /// exactly caught up.
    pub fn position(&self) -> (u64, u64) {
        (self.next_lsn, self.len)
    }

    /// Rolls the file back to `len` after a failed append. Failure here
    /// means the log tail is in an unknown state — the caller must
    /// poison persistence.
    fn unwind(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Appends one record durably (write, then fsync when enabled),
    /// returning `(lsn, frame bytes)`. On any failure — injected or
    /// real — the file is rolled back to its pre-append length so the
    /// unacknowledged record can never be replayed; if even the rollback
    /// fails, the error is tagged so the caller poisons persistence.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<(u64, u64)> {
        let lsn = self.next_lsn;
        let frame = record.encode_frame(lsn);
        let start = self.len;

        let write_result = match faults::io_point(faults::WAL_WRITE) {
            Some(faults::IoFault::Error) => Err(io::Error::other("chaos: injected write error")),
            Some(faults::IoFault::Short) => {
                // Emulate a torn write: half the frame lands, then the
                // device "fails".
                let cut = frame.len() / 2;
                self.file
                    .write_all(&frame[..cut])
                    .and_then(|()| Err(io::Error::other("chaos: injected short write")))
            }
            None => self.file.write_all(&frame),
        };
        let synced = write_result.and_then(|()| {
            if let Some(faults::IoFault::Error | faults::IoFault::Short) =
                faults::io_point(faults::WAL_FSYNC)
            {
                return Err(io::Error::other("chaos: injected fsync failure"));
            }
            if self.fsync {
                self.file.sync_data()
            } else {
                Ok(())
            }
        });
        match synced {
            Ok(()) => {
                self.len = start + frame.len() as u64;
                self.next_lsn += 1;
                Ok((lsn, frame.len() as u64))
            }
            Err(e) => {
                self.unwind(start).map_err(|u| {
                    io::Error::other(format!(
                        "wal append {}: append failed ({e}) and the log could not be rolled back ({u})",
                        self.path.display()
                    ))
                })?;
                Err(io_ctx("append", &self.path, e))
            }
        }
    }

    /// Forces every appended record to stable storage, regardless of the
    /// per-record fsync policy. The drain path calls this before cutting
    /// the shutdown snapshot: even if the snapshot then fails, every
    /// acknowledged mutation is durable.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(faults::IoFault::Error | faults::IoFault::Short) =
            faults::io_point(faults::WAL_FSYNC)
        {
            return Err(io_ctx(
                "fsync",
                &self.path,
                io::Error::other("chaos: injected fsync failure"),
            ));
        }
        self.file
            .sync_data()
            .map_err(|e| io_ctx("fsync", &self.path, e))
    }

    /// Truncates the log to empty (called right after a snapshot made
    /// its records redundant). Lsns keep counting — a crash between the
    /// snapshot rename and this truncation is covered by recovery
    /// skipping records at or below the snapshot's lsn.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)))
            .and_then(|_| {
                if self.fsync {
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            })
            .map_err(|e| io_ctx("reset", &self.path, e))?;
        self.len = 0;
        Ok(())
    }

    /// Empties the log and fast-forwards the lsn counter. Used when a
    /// replica installs a snapshot shipped by the primary over its live
    /// session: every local record is at or below the snapshot's lsn,
    /// and the next shipped record continues from `next_lsn`.
    pub fn reset_to(&mut self, next_lsn: u64) -> io::Result<()> {
        self.reset()?;
        self.next_lsn = next_lsn;
        Ok(())
    }

    /// Rotates the live log out as a sealed segment: the current file is
    /// renamed to `<stem>.old` (replacing any previous sealed segment)
    /// and a fresh empty log takes its place. Called right after a
    /// snapshot made the live records redundant — the sealed segment is
    /// kept for replication shipping and post-mortem triage, never
    /// replayed (every record in it is at or below the snapshot's lsn).
    /// Lsns keep counting across rotations, exactly as with [`reset`].
    ///
    /// [`reset`]: Wal::reset
    pub fn rotate(&mut self) -> io::Result<PathBuf> {
        let sealed = self.path.with_extension("old");
        std::fs::rename(&self.path, &sealed).map_err(|e| io_ctx("rotate-rename", &self.path, e))?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.path)
            .map_err(|e| io_ctx("rotate-open", &self.path, e))?;
        if self.fsync {
            file.sync_data()
                .map_err(|e| io_ctx("rotate-fsync", &self.path, e))?;
        }
        self.file = file;
        self.len = 0;
        Ok(sealed)
    }

    /// Reads and validates a WAL file, truncating any torn or corrupt
    /// tail in place. A missing file is an empty log.
    pub fn replay(path: &Path) -> io::Result<Replayed> {
        let mut file = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(Replayed {
                    records: Vec::new(),
                    truncated: false,
                    last_lsn: 0,
                    bytes: 0,
                })
            }
            Err(e) => return Err(e),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut good = 0usize; // offset of the end of the last valid frame
        let mut last_lsn = 0u64;
        loop {
            let rest = &buf[good..];
            if rest.is_empty() {
                break;
            }
            let Some(frame_end) = Self::validate_frame(rest) else {
                break;
            };
            let payload = &rest[12..frame_end];
            let mut c = Cursor::new(payload);
            // Checksum already verified; decode errors past it mean a
            // writer bug or bit rot inside a "valid" frame — treat as
            // corruption and cut here too.
            let parsed = (|| {
                let lsn = c.take_u64()?;
                let tag = c.take_u8()?;
                let rec = WalRecord::decode(tag, &mut c)?;
                if !c.done() {
                    return Err("trailing bytes in payload".to_owned());
                }
                Ok((lsn, rec))
            })();
            match parsed {
                Ok((lsn, rec)) => {
                    last_lsn = last_lsn.max(lsn);
                    records.push((lsn, rec));
                    good += frame_end;
                }
                Err(_) => break,
            }
        }
        let truncated = good < buf.len();
        if truncated {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        Ok(Replayed {
            records,
            truncated,
            last_lsn,
            bytes: good as u64,
        })
    }

    /// Checks the frame at the start of `bytes`; returns its total
    /// length (header + payload) when intact.
    fn validate_frame(bytes: &[u8]) -> Option<usize> {
        if bytes.len() < 12 {
            return None; // torn header
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_BYTES {
            return None; // garbage length word
        }
        let sum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let end = 12usize.checked_add(len as usize)?;
        if bytes.len() < end {
            return None; // torn payload
        }
        if fnv1a(&bytes[12..end]) != sum {
            return None; // corrupt payload
        }
        Some(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gomq-wal-{tag}-{}", std::process::id(),));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Assert(vec![
                SymFact {
                    rel: "R".into(),
                    args: vec![
                        SymTerm::Const("ada".into()),
                        SymTerm::Const("κλειώ ☃".into()),
                    ],
                },
                SymFact {
                    rel: "Empty".into(),
                    args: vec![],
                },
            ]),
            WalRecord::Mark(7),
            WalRecord::Assert(vec![SymFact {
                rel: "S".into(),
                args: vec![SymTerm::Null(3)],
            }]),
            WalRecord::Rollback(7),
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        assert_eq!(wal.next_lsn(), 5);
        let replayed = Wal::replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.last_lsn, 4);
        assert_eq!(
            replayed
                .records
                .iter()
                .map(|(_, r)| r.clone())
                .collect::<Vec<_>>(),
            sample_records()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_rest_survives() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let good = std::fs::metadata(&path).unwrap().len();
        // A crash mid-append: half of a new frame lands.
        let frame = WalRecord::Mark(99).encode_frame(5);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(f);
        let replayed = Wal::replay(&path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.records.len(), 4);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        // A second replay is clean: truncation repaired the file.
        let again = Wal::replay(&path).unwrap();
        assert!(!again.truncated);
        assert_eq!(again.records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_cuts_from_that_record() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        let recs = sample_records();
        let mut offsets = vec![0u64];
        for r in &recs {
            wal.append(r).unwrap();
            offsets.push(wal.len_bytes());
        }
        // Flip one payload byte in the third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let third = offsets[2] as usize;
        bytes[third + 12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.last_lsn, 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offsets[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let dir = tmpdir("missing");
        let replayed = Wal::replay(&dir.join("nope.log")).unwrap();
        assert!(replayed.records.is_empty());
        assert!(!replayed.truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_records_roundtrip() {
        let dir = tmpdir("epoch");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        wal.append(&WalRecord::Mark(1)).unwrap();
        wal.append(&WalRecord::Epoch(7)).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(
            replayed
                .records
                .iter()
                .map(|(_, r)| r.clone())
                .collect::<Vec<_>>(),
            vec![WalRecord::Mark(1), WalRecord::Epoch(7)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotate_seals_segment_and_lsns_keep_counting() {
        let dir = tmpdir("rotate");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        wal.append(&WalRecord::Mark(1)).unwrap();
        assert_eq!(wal.position(), (2, wal.len_bytes()));
        let sealed = wal.rotate().unwrap();
        assert_eq!(sealed, dir.join("wal.old"));
        assert_eq!(wal.len_bytes(), 0);
        // The sealed segment still replays the pre-rotation records.
        let old = Wal::replay(&sealed).unwrap();
        assert_eq!(old.records.len(), 1);
        assert_eq!(old.last_lsn, 1);
        // The live log is fresh and lsns continue counting.
        let (lsn, _) = wal.append(&WalRecord::Mark(2)).unwrap();
        assert_eq!(lsn, 2, "lsns must survive rotations");
        let live = Wal::replay(&path).unwrap();
        assert_eq!(live.records.len(), 1);
        assert_eq!(live.last_lsn, 2);
        // A second rotation replaces the previous sealed segment.
        wal.rotate().unwrap();
        let old = Wal::replay(&sealed).unwrap();
        assert_eq!(old.last_lsn, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_errors_carry_path_and_operation() {
        let dir = tmpdir("errctx");
        let missing = dir.join("no-such-subdir").join("wal.log");
        let err = match Wal::open(&missing, false, 1) {
            Err(e) => e,
            Ok(_) => panic!("open in a missing directory must fail"),
        };
        let msg = err.to_string();
        assert!(msg.contains("wal open"), "operation missing: {msg}");
        assert!(
            msg.contains("no-such-subdir"),
            "journal path missing: {msg}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_but_lsns_keep_counting() {
        let dir = tmpdir("reset");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        wal.append(&WalRecord::Mark(1)).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        let (lsn, _) = wal.append(&WalRecord::Mark(2)).unwrap();
        assert_eq!(lsn, 2, "lsns must survive resets");
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.last_lsn, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
