//! The JSONL serving protocol: one request object per line in, one
//! response object per line out.
//!
//! Request shape (`abox` and `aboxes` are mutually exclusive; `limits`
//! is optional and clamped by the session's own limits):
//!
//! ```json
//! {"id": "r1",
//!  "ontology": "Manager sub Employee\nEmployee sub Staff",
//!  "query": "Staff",
//!  "abox": "Manager(ada)\nEmployee(grace)",
//!  "limits": {"max_rounds": 1000, "max_derived": 100000, "timeout_ms": 250}}
//! ```
//!
//! Successful response — `"stats"` is strictly request-scoped, the
//! cumulative engine totals live under `"engine"`:
//!
//! ```json
//! {"id": "r1", "status": "ok", "cached": false, "zone": "Dichotomy (Datalog!= = PTIME)",
//!  "answers": [["ada"], ["grace"]],
//!  "stats": {"compile_us": 412, "eval_us": 88, "rounds": 3, "derived": 6,
//!            "cache_hit": false},
//!  "engine": {"requests": 1, "cache_hits": 0, "cache_misses": 1, "cache_size": 1,
//!             "evictions": 0, "inflight_waits": 0, "overloaded": 0, "panics": 0,
//!             "facts_interned": 9, "arena_bytes": 144, "dedup_hits": 2}}
//! ```
//!
//! With `"aboxes": ["...", "..."]` the response carries `"batches"` (one
//! answer array per ABox, evaluated concurrently) instead of
//! `"answers"`. Errors come back as
//! `{"id": ..., "status": "error", "error": "..."}`; a blown resource
//! budget comes back as `{"id": ..., "status": "overloaded", "error":
//! ..., "limit": "rounds" | "derived" | "deadline"}`. The session never
//! dies on a bad line: panics inside compilation or evaluation are
//! caught, reported as structured errors, and counted in the engine
//! totals.
//!
//! ABox constants interned while serving a request are rolled back once
//! no request is in flight, so a long-lived session's [`Vocab`] does not
//! grow with the ABoxes it has seen (plans keep only relation ids, which
//! are never rolled back).

use crate::cache::{lock_recover, panic_message, PlanCache};
use crate::engine::Engine;
use crate::json::{self, Json};
use crate::plan::EngineError;
use gomq_core::{IndexedInstance, Term, Vocab};
use gomq_datalog::Budget;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-request resource limits. `None` means unlimited; a request's own
/// `"limits"` object is clamped pointwise against the session's.
#[derive(Clone, Copy, Debug, Default)]
pub struct Limits {
    /// Maximum fixpoint rounds per evaluation.
    pub max_rounds: Option<usize>,
    /// Maximum IDB facts derived per evaluation (per ABox in a batch).
    pub max_derived: Option<usize>,
    /// Wall-clock timeout per request (shared across a batch).
    pub timeout: Option<Duration>,
}

impl Limits {
    /// The pointwise minimum of two limit sets (`None` = unlimited).
    pub fn clamp(&self, other: &Limits) -> Limits {
        fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Limits {
            max_rounds: min_opt(self.max_rounds, other.max_rounds),
            max_derived: min_opt(self.max_derived, other.max_derived),
            timeout: min_opt(self.timeout, other.timeout),
        }
    }

    /// Converts the limits into a [`Budget`] whose deadline starts now.
    pub fn budget_from_now(&self) -> Budget {
        Budget {
            max_rounds: self.max_rounds,
            max_derived: self.max_derived,
            deadline: self.timeout.map(|t| Instant::now() + t),
        }
    }
}

/// Configuration for a serving session.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads for evaluation (1 = sequential).
    pub threads: usize,
    /// Plan-cache capacity (plans beyond this are LRU-evicted).
    pub cache_capacity: usize,
    /// Session-wide default limits (requests can only tighten them).
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: crate::cache::DEFAULT_CAPACITY,
            limits: Limits::default(),
        }
    }
}

/// Bookkeeping for rolling back ABox-constant interning: constants are
/// truncated to the burst's floor once no request is in flight.
#[derive(Debug, Default)]
struct ConstScope {
    active: usize,
    floor: usize,
}

/// State shared by every session on one serving process: the engine
/// (plan cache included), the vocabulary, and the constant-scoping
/// bookkeeping. Clone the [`Arc`] and build per-thread sessions with
/// [`ServeSession::with_shared`] to serve concurrently.
pub struct ServeShared {
    engine: Engine,
    vocab: Mutex<Vocab>,
    scope: Mutex<ConstScope>,
    limits: Limits,
}

impl ServeShared {
    /// Shared state per `config`.
    pub fn with_config(config: ServeConfig) -> Self {
        ServeShared {
            engine: Engine::with_cache(
                config.threads,
                PlanCache::with_capacity(config.cache_capacity),
            ),
            vocab: Mutex::new(Vocab::new()),
            scope: Mutex::new(ConstScope::default()),
            limits: config.limits,
        }
    }

    /// Shared state around an existing engine (used by tests to inject a
    /// cache with a colliding hash function).
    pub fn with_engine(engine: Engine, limits: Limits) -> Self {
        ServeShared {
            engine,
            vocab: Mutex::new(Vocab::new()),
            scope: Mutex::new(ConstScope::default()),
            limits,
        }
    }

    /// The underlying engine (for statistics inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

/// A serving session: a view onto [`ServeShared`] state plus the
/// session's default limits. Single-threaded callers just construct one
/// with [`ServeSession::new`] / [`ServeSession::with_threads`];
/// concurrent servers build one session per thread over a shared
/// [`Arc<ServeShared>`].
pub struct ServeSession {
    shared: Arc<ServeShared>,
    limits: Limits,
}

impl Default for ServeSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeSession {
    /// A session sized to the machine.
    pub fn new() -> Self {
        Self::with_config(ServeConfig::default())
    }

    /// A session with an explicit worker budget.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_config(ServeConfig {
            threads,
            ..ServeConfig::default()
        })
    }

    /// A session per `config` (cache capacity and default limits).
    pub fn with_config(config: ServeConfig) -> Self {
        Self::with_shared(Arc::new(ServeShared::with_config(config)))
    }

    /// A session over existing shared state (one per serving thread).
    pub fn with_shared(shared: Arc<ServeShared>) -> Self {
        let limits = shared.limits;
        ServeSession { shared, limits }
    }

    /// The shared state (clone it to build sibling sessions).
    pub fn shared(&self) -> &Arc<ServeShared> {
        &self.shared
    }

    /// The underlying engine (for statistics inspection).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Handles one request line, returning one response line (no
    /// trailing newline). Never panics and never poisons shared state,
    /// whatever the input: malformed requests, resource blowups and
    /// panicking corner cases all come back as structured responses.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.scope_enter();
        let dispatched = catch_unwind(AssertUnwindSafe(|| self.dispatch(line)));
        let (id, outcome) = match dispatched {
            Ok(r) => r,
            Err(payload) => {
                self.shared.engine.record_panic();
                // The id is re-parsed: the panicking dispatch cannot
                // hand it back.
                let id = match json::parse(line) {
                    Ok(Json::Obj(o)) => o.get("id").and_then(Json::as_str).map(str::to_owned),
                    _ => None,
                };
                (id, Err(EngineError::Internal(panic_message(payload))))
            }
        };
        let out = match outcome {
            Ok(body) => body,
            Err(e) => {
                let mut out = String::from("{");
                if let Some(id) = &id {
                    out.push_str("\"id\": ");
                    json::write_str(&mut out, id);
                    out.push_str(", ");
                }
                if let EngineError::Overloaded(be) = &e {
                    out.push_str("\"status\": \"overloaded\", \"error\": ");
                    json::write_str(&mut out, &format!("{e}"));
                    let _ = write!(out, ", \"limit\": \"{}\"", be.limit.name());
                } else {
                    out.push_str("\"status\": \"error\", \"error\": ");
                    json::write_str(&mut out, &format!("{e}"));
                }
                out.push('}');
                out
            }
        };
        self.scope_exit();
        out
    }

    /// Marks a request as in flight; the first request of a burst
    /// records the constant floor to roll back to.
    fn scope_enter(&self) {
        let mut scope = lock_recover(&self.shared.scope);
        if scope.active == 0 {
            scope.floor = lock_recover(&self.shared.vocab).const_mark();
        }
        scope.active += 1;
    }

    /// Marks a request as done; the last request of a burst rolls back
    /// every ABox constant the burst interned. (Rollback must wait for
    /// quiescence: constants are shared across concurrent requests.)
    fn scope_exit(&self) {
        let mut scope = lock_recover(&self.shared.scope);
        scope.active -= 1;
        if scope.active == 0 {
            let floor = scope.floor;
            lock_recover(&self.shared.vocab).truncate_consts(floor);
        }
    }

    fn dispatch(&mut self, line: &str) -> (Option<String>, Result<String, EngineError>) {
        let parsed =
            json::parse(line).map_err(|e| EngineError::BadRequest(format!("invalid JSON: {e}")));
        let obj = match parsed {
            Ok(Json::Obj(o)) => o,
            Ok(_) => {
                return (
                    None,
                    Err(EngineError::BadRequest(
                        "request must be a JSON object".into(),
                    )),
                )
            }
            Err(e) => return (None, Err(e)),
        };
        let id = obj.get("id").and_then(Json::as_str).map(str::to_owned);
        (id.clone(), self.run(&obj, id.as_deref()))
    }

    /// Parses the request's optional `"limits"` object.
    fn request_limits(
        &self,
        obj: &std::collections::BTreeMap<String, Json>,
    ) -> Result<Limits, EngineError> {
        let Some(limits) = obj.get("limits") else {
            return Ok(Limits::default());
        };
        let Json::Obj(l) = limits else {
            return Err(EngineError::BadRequest(
                "\"limits\" must be an object".into(),
            ));
        };
        let num = |name: &str| -> Result<Option<u64>, EngineError> {
            match l.get(name) {
                None => Ok(None),
                Some(Json::Num(n)) if *n >= 0.0 && n.is_finite() => Ok(Some(*n as u64)),
                Some(_) => Err(EngineError::BadRequest(format!(
                    "\"limits.{name}\" must be a non-negative number"
                ))),
            }
        };
        for key in l.keys() {
            if !matches!(key.as_str(), "max_rounds" | "max_derived" | "timeout_ms") {
                return Err(EngineError::BadRequest(format!(
                    "unknown limit \"{key}\" (expected max_rounds, max_derived, timeout_ms)"
                )));
            }
        }
        Ok(Limits {
            max_rounds: num("max_rounds")?.map(|n| n as usize),
            max_derived: num("max_derived")?.map(|n| n as usize),
            timeout: num("timeout_ms")?.map(Duration::from_millis),
        })
    }

    fn run(
        &mut self,
        obj: &std::collections::BTreeMap<String, Json>,
        id: Option<&str>,
    ) -> Result<String, EngineError> {
        let field = |name: &str| -> Result<&str, EngineError> {
            obj.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| EngineError::BadRequest(format!("missing string field \"{name}\"")))
        };
        let ontology_text = field("ontology")?;
        let query_name = field("query")?;
        let budget = self
            .limits
            .clamp(&self.request_limits(obj)?)
            .budget_from_now();
        let (o, query) = {
            let mut vocab = lock_recover(&self.shared.vocab);
            let dl = parse_ontology(ontology_text, &mut vocab)
                .map_err(|e| EngineError::BadRequest(format!("ontology: {e}")))?;
            let o = to_gf(&dl);
            let query = vocab.find_rel(query_name).ok_or_else(|| {
                EngineError::BadRequest(format!(
                    "query relation \"{query_name}\" does not occur in the ontology"
                ))
            })?;
            (o, query)
        };
        // The vocab lock is released before planning: the cache takes it
        // itself, and single-flight waiters must not hold it.
        let (plan, cached, compile_elapsed) =
            self.shared
                .engine
                .plan_shared(&o, query, &self.shared.vocab);
        self.shared.engine.record_compile(compile_elapsed);
        let plan = plan?;

        // One ABox or a batch of ABoxes.
        let parse_abox = |text: &str| -> Result<IndexedInstance, EngineError> {
            let mut vocab = lock_recover(&self.shared.vocab);
            let d = gomq_core::parse::parse_instance(text, &mut vocab)
                .map_err(|e| EngineError::BadRequest(format!("abox: {e}")))?;
            // Move the parsed store into the index — the serve path never
            // copies the fact columns.
            Ok(IndexedInstance::from_instance(d))
        };
        let (payload, stats) = if let Some(texts) = obj.get("aboxes") {
            let texts = texts.as_arr().ok_or_else(|| {
                EngineError::BadRequest("\"aboxes\" must be an array of strings".into())
            })?;
            let mut aboxes = Vec::with_capacity(texts.len());
            for t in texts {
                aboxes.push(parse_abox(t.as_str().ok_or_else(|| {
                    EngineError::BadRequest("\"aboxes\" must be an array of strings".into())
                })?)?);
            }
            let (batches, stats) = self
                .shared
                .engine
                .answer_batch_budgeted(&plan, &aboxes, &budget)?;
            let mut payload = String::from("\"batches\": [");
            for (i, answers) in batches.iter().enumerate() {
                if i > 0 {
                    payload.push_str(", ");
                }
                self.write_answers(&mut payload, answers);
            }
            payload.push(']');
            (payload, stats)
        } else {
            let abox = parse_abox(field("abox")?)?;
            let (answers, stats) = self
                .shared
                .engine
                .answer_indexed_budgeted(&plan, &abox, &budget)?;
            let mut payload = String::from("\"answers\": ");
            self.write_answers(&mut payload, &answers);
            (payload, stats)
        };

        let mut out = String::from("{");
        if let Some(id) = id {
            out.push_str("\"id\": ");
            json::write_str(&mut out, id);
            out.push_str(", ");
        }
        out.push_str("\"status\": \"ok\", ");
        let _ = write!(out, "\"cached\": {cached}, ");
        out.push_str("\"zone\": ");
        json::write_str(&mut out, &format!("{}", plan.report.zone));
        out.push_str(", ");
        out.push_str(&payload);
        let _ = write!(
            out,
            ", \"stats\": {{\"compile_us\": {}, \"eval_us\": {}, \"rounds\": {}, \
             \"derived\": {}, \"cache_hit\": {}}}",
            compile_elapsed.as_micros(),
            stats.eval.as_micros(),
            stats.rounds,
            stats.derived,
            cached,
        );
        let totals = self.shared.engine.stats();
        let _ = write!(
            out,
            ", \"engine\": {{\"requests\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_size\": {}, \"evictions\": {}, \"inflight_waits\": {}, \
             \"overloaded\": {}, \"panics\": {}, \"facts_interned\": {}, \
             \"arena_bytes\": {}, \"dedup_hits\": {}}}}}",
            totals.requests,
            totals.cache_hits,
            totals.cache_misses,
            totals.cache_size,
            totals.cache_evictions,
            totals.inflight_waits,
            totals.overloaded,
            totals.panics,
            totals.facts_interned,
            totals.arena_bytes,
            totals.dedup_hits,
        );
        Ok(out)
    }

    fn write_answers(&self, out: &mut String, answers: &BTreeSet<Vec<Term>>) {
        let vocab = lock_recover(&self.shared.vocab);
        out.push('[');
        for (i, tuple) in answers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, t) in tuple.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_str(out, &format!("{}", t.display(&vocab)));
            }
            out.push(']');
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_field<'a>(response: &'a str, needle: &str) -> &'a str {
        assert!(
            response.contains(needle),
            "expected {needle:?} in {response}"
        );
        response
    }

    #[test]
    fn single_abox_roundtrip() {
        let mut s = ServeSession::with_threads(2);
        let resp = s.handle_line(
            r#"{"id": "r1", "ontology": "Manager sub Employee\nEmployee sub Staff", "query": "Staff", "abox": "Manager(ada)\nEmployee(grace)"}"#,
        );
        ok_field(&resp, "\"status\": \"ok\"");
        ok_field(&resp, "\"id\": \"r1\"");
        ok_field(&resp, "\"cached\": false");
        ok_field(&resp, r#"["ada"]"#);
        ok_field(&resp, r#"["grace"]"#);
        // Request-scoped stats say "miss"; engine totals count it.
        ok_field(&resp, "\"cache_hit\": false");
        ok_field(
            &resp,
            "\"engine\": {\"requests\": 1, \"cache_hits\": 0, \"cache_misses\": 1",
        );
        // Same OMQ again: served from the cache.
        let resp2 = s.handle_line(
            r#"{"ontology": "Employee sub Staff\nManager sub Employee", "query": "Staff", "abox": "Manager(bob)"}"#,
        );
        ok_field(&resp2, "\"cached\": true");
        ok_field(&resp2, r#"["bob"]"#);
        ok_field(&resp2, "\"cache_hit\": true");
        ok_field(&resp2, "\"cache_hits\": 1, \"cache_misses\": 1");
        // Responses are valid JSON.
        assert!(crate::json::parse(&resp).is_ok());
        assert!(crate::json::parse(&resp2).is_ok());
    }

    #[test]
    fn batched_aboxes() {
        let mut s = ServeSession::with_threads(4);
        let resp = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "aboxes": ["A(x)", "B(y)\nA(z)", ""]}"#,
        );
        ok_field(&resp, "\"batches\": ");
        ok_field(&resp, r#"[["x"]], [["y"], ["z"]], []"#);
        assert!(crate::json::parse(&resp).is_ok());
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = ServeSession::with_threads(1);
        let bad_json = s.handle_line("{nope");
        ok_field(&bad_json, "\"status\": \"error\"");
        let bad_query = s.handle_line(r#"{"ontology": "A sub B", "query": "Zzz", "abox": ""}"#);
        ok_field(&bad_query, "does not occur in the ontology");
        let bad_abox = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x"}"#);
        ok_field(&bad_abox, "\"status\": \"error\"");
        // The session still works afterwards.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
    }

    #[test]
    fn blown_budgets_report_overloaded_and_recover() {
        let mut s = ServeSession::with_threads(2);
        let chain = "C0 sub C1\nC1 sub C2\nC2 sub C3\nC3 sub C4\nC4 sub C5";
        let abox = (0..50).map(|i| format!("C0(x{i})\n")).collect::<String>();
        let req = format!(
            r#"{{"id": "hot", "ontology": "{chain}", "query": "C5", "abox": "{}", "limits": {{"max_derived": 5}}}}"#,
            abox.replace('\n', "\\n"),
        );
        let resp = s.handle_line(&req);
        ok_field(&resp, "\"status\": \"overloaded\"");
        ok_field(&resp, "\"limit\": \"derived\"");
        ok_field(&resp, "\"id\": \"hot\"");
        assert!(crate::json::parse(&resp).is_ok());
        // An expired deadline reports the deadline limit.
        let timed = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)", "limits": {"timeout_ms": 0}}"#,
        );
        ok_field(&timed, "\"status\": \"overloaded\"");
        ok_field(&timed, "\"limit\": \"deadline\"");
        // The session stays healthy and the same OMQ still answers.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
        assert_eq!(s.engine().stats().overloaded, 2);
    }

    #[test]
    fn session_limits_clamp_request_limits() {
        let mut s = ServeSession::with_config(ServeConfig {
            threads: 1,
            limits: Limits {
                max_derived: Some(3),
                ..Limits::default()
            },
            ..ServeConfig::default()
        });
        // The request asks for a *looser* limit; the session's wins.
        let resp = s.handle_line(
            r#"{"ontology": "C0 sub C1\nC1 sub C2", "query": "C2", "abox": "C0(a)\nC0(b)\nC0(c)", "limits": {"max_derived": 1000000}}"#,
        );
        ok_field(&resp, "\"status\": \"overloaded\"");
        ok_field(&resp, "\"limit\": \"derived\"");
    }

    #[test]
    fn malformed_limits_are_bad_requests() {
        let mut s = ServeSession::with_threads(1);
        let bad_type =
            s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "", "limits": 7}"#);
        ok_field(&bad_type, "must be an object");
        let bad_key = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "", "limits": {"fuel": 9}}"#,
        );
        ok_field(&bad_key, "unknown limit");
        let bad_value = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "", "limits": {"max_rounds": -1}}"#,
        );
        ok_field(&bad_value, "must be a non-negative number");
    }

    #[test]
    fn panics_are_isolated_and_counted() {
        let mut s = ServeSession::with_threads(1);
        // "R" is first interned as a role (arity 2) by "ex R.A sub B",
        // then used as a concept (arity 1) by "R sub B": the DL parser
        // trips the vocabulary's arity assertion. The fence must turn
        // that panic into a structured error.
        let resp = s.handle_line(
            r#"{"id": "boom", "ontology": "A sub ex R.A\nR sub B", "query": "B", "abox": ""}"#,
        );
        ok_field(&resp, "\"status\": \"error\"");
        ok_field(&resp, "\"id\": \"boom\"");
        ok_field(&resp, "internal error (panic isolated)");
        assert!(crate::json::parse(&resp).is_ok());
        assert_eq!(s.engine().stats().panics, 1);
        // The session still works afterwards.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
    }

    #[test]
    fn abox_constants_are_rolled_back_between_requests() {
        let mut s = ServeSession::with_threads(1);
        let baseline = {
            // Warm up the OMQ so only ABox constants vary below.
            s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(seed)"}"#);
            lock_recover(&s.shared.vocab).const_mark()
        };
        for i in 0..100 {
            let resp = s.handle_line(&format!(
                r#"{{"ontology": "A sub B", "query": "B", "abox": "A(fresh{i})"}}"#
            ));
            ok_field(&resp, &format!(r#"[["fresh{i}"]]"#));
        }
        assert_eq!(lock_recover(&s.shared.vocab).const_mark(), baseline);
    }
}
