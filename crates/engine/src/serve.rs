//! The JSONL serving protocol: one request object per line in, one
//! response object per line out.
//!
//! Request shape (`abox` and `aboxes` are mutually exclusive; `limits`
//! is optional and clamped by the session's own limits):
//!
//! ```json
//! {"id": "r1",
//!  "ontology": "Manager sub Employee\nEmployee sub Staff",
//!  "query": "Staff",
//!  "abox": "Manager(ada)\nEmployee(grace)",
//!  "limits": {"max_rounds": 1000, "max_derived": 100000, "timeout_ms": 250}}
//! ```
//!
//! Successful response — `"stats"` is strictly request-scoped, the
//! cumulative engine totals live under `"engine"`:
//!
//! ```json
//! {"id": "r1", "status": "ok", "cached": false, "zone": "Dichotomy (Datalog!= = PTIME)",
//!  "fragment": "uGF", "backend": "native",
//!  "answers": [["ada"], ["grace"]],
//!  "stats": {"compile_us": 412, "eval_us": 88, "rounds": 3, "derived": 6,
//!            "cache_hit": false},
//!  "engine": {"requests": 1, "cache_hits": 0, "cache_misses": 1, "cache_size": 1,
//!             "evictions": 0, "inflight_waits": 0, "overloaded": 0, "panics": 0,
//!             "facts_interned": 9, "arena_bytes": 144, "dedup_hits": 2}}
//! ```
//!
//! With `"aboxes": ["...", "..."]` the response carries `"batches"` (one
//! answer array per ABox, evaluated concurrently) instead of
//! `"answers"`. Errors come back as
//! `{"id": ..., "status": "error", "error": "..."}`; a blown resource
//! budget comes back as `{"id": ..., "status": "overloaded", "error":
//! ..., "limit": "rounds" | "derived" | "deadline"}`. The session never
//! dies on a bad line: panics inside compilation or evaluation are
//! caught, reported as structured errors, and counted in the engine
//! totals.
//!
//! ## Backends
//!
//! A query may carry `"backend": "native"` or `"backend": "sql"` (the
//! session default is [`ServeConfig::default_backend`], settable with
//! `gomq-serve --backend`). The native backend runs the stratified
//! semi-naive fixpoint; the SQL backend executes the plan's eagerly
//! emitted portable SQL on the in-process `gomq-sqlexec` executor —
//! answer sets are identical (`tests/sql_crosscheck.rs` proves it on
//! random OMQs). A plan whose rewriting is recursive has no SQL form
//! and is refused with `"status": "non-rewritable-to-sql"`; the native
//! backend still answers it. The SQL path serves exactly one
//! request-supplied ABox: certificates, `"aboxes"` batches and
//! `"session": true` are native-only.
//!
//! ABox constants interned while serving a request are rolled back once
//! no request is in flight, so a long-lived session's [`Vocab`] does not
//! grow with the ABoxes it has seen (plans keep only relation ids, which
//! are never rolled back). Constants asserted into the durable session
//! raise the rollback floor instead — session facts must keep their
//! names.
//!
//! ## Session mutations
//!
//! Besides (the default) `"op": "query"`, a request can mutate the
//! session-resident ABox: `{"op": "assert", "abox": "..."}` adds facts,
//! `{"op": "mark"}` takes a rollback point, `{"op": "rollback", "mark":
//! n}` truncates back to one. Queries evaluate against the session store
//! with `"session": true` in place of `"abox"`. When the session was
//! opened with a data directory ([`ServeConfig::data_dir`]), every
//! mutation is journaled to a write-ahead log *before* it is applied
//! ([`crate::session::DurableSession`]) and periodically folded into a
//! snapshot, so a crash at any instant loses at most the un-acked
//! record.
//!
//! ## Failure containment
//!
//! A plan whose *evaluation* keeps failing (panics or blown budgets,
//! [`ServeConfig::quarantine_after`] times) has its circuit breaker
//! latched open and answers `"status": "quarantined"` from then on. A
//! request whose deadline is already expired at admission is refused as
//! `"overloaded"` without entering the executor. Input lines beyond
//! [`ServeConfig::max_line_bytes`] are refused as `"status":
//! "malformed"` without being buffered in full ([`read_line_capped`]).

use crate::backend::Backend;
use crate::cache::{lock_recover, panic_message, PlanCache};
use crate::engine::Engine;
use crate::json::{self, Json};
use crate::plan::{EngineError, OmqPlan};
use crate::session::{
    DurableSession, MutationInfo, PersistOptions, RecoveryInfo, SessionError, DEFAULT_MAX_VIEWS,
};
use crate::stats::RequestStats;
use crate::wal::SymFact;
use gomq_core::{Fact, IndexedInstance, Term, Vocab};
use gomq_datalog::{Budget, BudgetExceeded, LimitKind, Materialization};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::BufRead;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-request resource limits. `None` means unlimited; a request's own
/// `"limits"` object is clamped pointwise against the session's.
#[derive(Clone, Copy, Debug, Default)]
pub struct Limits {
    /// Maximum fixpoint rounds per evaluation.
    pub max_rounds: Option<usize>,
    /// Maximum IDB facts derived per evaluation (per ABox in a batch).
    pub max_derived: Option<usize>,
    /// Wall-clock timeout per request (shared across a batch).
    pub timeout: Option<Duration>,
}

impl Limits {
    /// The pointwise minimum of two limit sets (`None` = unlimited).
    pub fn clamp(&self, other: &Limits) -> Limits {
        fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Limits {
            max_rounds: min_opt(self.max_rounds, other.max_rounds),
            max_derived: min_opt(self.max_derived, other.max_derived),
            timeout: min_opt(self.timeout, other.timeout),
        }
    }

    /// Converts the limits into a [`Budget`] whose deadline starts now.
    pub fn budget_from_now(&self) -> Budget {
        Budget {
            max_rounds: self.max_rounds,
            max_derived: self.max_derived,
            deadline: self.timeout.map(|t| Instant::now() + t),
        }
    }
}

/// Configuration for a serving session.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads for evaluation (1 = sequential).
    pub threads: usize,
    /// Plan-cache capacity (plans beyond this are LRU-evicted).
    pub cache_capacity: usize,
    /// Session-wide default limits (requests can only tighten them).
    pub limits: Limits,
    /// Data directory for crash-consistent session persistence (WAL +
    /// snapshots). `None` keeps the session in memory.
    pub data_dir: Option<PathBuf>,
    /// Snapshot after this many journaled mutations (0 = never).
    pub snapshot_every: u64,
    /// fsync the WAL after every journaled record.
    pub fsync: bool,
    /// Evaluation failures (panics or blown budgets) before a plan's
    /// circuit breaker opens and it answers `"quarantined"`; 0 disables.
    pub quarantine_after: u32,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// refused as `"malformed"` without being buffered in full.
    pub max_line_bytes: usize,
    /// Maintained session materializations kept per session (LRU-
    /// evicted beyond this); 0 disables incremental view maintenance
    /// and session queries fall back to from-scratch fixpoints.
    pub max_views: usize,
    /// The backend answering queries that carry no per-request
    /// `"backend"` field ([`Backend::Native`] unless `gomq-serve
    /// --backend sql` says otherwise).
    pub default_backend: Backend,
    /// Follower staleness bound: replica session queries whose lsn lag
    /// behind the primary exceeds this are refused with `"status":
    /// "stale"`. `None` serves at any lag (the lag is still reported in
    /// the per-request `"staleness"` field).
    pub max_staleness_lsn: Option<u64>,
}

/// Default request-line cap: 16 MiB.
pub const DEFAULT_MAX_LINE_BYTES: usize = 16 << 20;

/// Resolves the `--views on|off` / `--max-views N` flag pair into a
/// view capacity, independent of the order the flags appeared in.
///
/// The two flags overlap — a capacity of 0 *is* "off" — which
/// historically made `--views on --max-views 0` and `--max-views 0
/// --views on` mean different things depending on order. The resolution
/// is now by type-checked combination, not by parse order:
///
/// - `--max-views 0` is a usage error (say `--views off`); 0 as a
///   capacity is never accepted, so the ambiguity cannot arise.
/// - `--views off` with `--max-views N` is a contradiction and also a
///   usage error.
/// - `--views off` alone disables maintenance (capacity 0).
/// - `--max-views N` (with or without `--views on`) sets capacity N.
/// - Neither flag, or `--views on` alone, means
///   [`DEFAULT_MAX_VIEWS`].
pub fn resolve_view_flags(views_on: Option<bool>, max_views: Option<u64>) -> Result<usize, String> {
    if max_views == Some(0) {
        return Err(
            "--max-views 0 is ambiguous: use --views off to disable view maintenance".into(),
        );
    }
    match (views_on, max_views) {
        (Some(false), Some(_)) => {
            Err("--views off contradicts --max-views (drop one of the two)".into())
        }
        (Some(false), None) => Ok(0),
        (_, Some(n)) => Ok(n as usize),
        (_, None) => Ok(DEFAULT_MAX_VIEWS),
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: crate::cache::DEFAULT_CAPACITY,
            limits: Limits::default(),
            data_dir: None,
            snapshot_every: 64,
            fsync: false,
            quarantine_after: 3,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_views: DEFAULT_MAX_VIEWS,
            default_backend: Backend::default(),
            max_staleness_lsn: None,
        }
    }
}

/// Bookkeeping for rolling back ABox-constant interning: constants are
/// truncated to the burst's floor once no request is in flight.
#[derive(Debug, Default)]
struct ConstScope {
    active: usize,
    floor: usize,
}

/// State shared by every session on one serving process: the engine
/// (plan cache included), the vocabulary, and the constant-scoping
/// bookkeeping. Clone the [`Arc`] and build per-thread sessions with
/// [`ServeSession::with_shared`] to serve concurrently.
pub struct ServeShared {
    engine: Engine,
    vocab: Mutex<Vocab>,
    scope: Mutex<ConstScope>,
    session: Mutex<DurableSession>,
    limits: Limits,
    max_line_bytes: usize,
    default_backend: Backend,
    repl: crate::repl::ReplContext,
}

impl ServeShared {
    /// Shared state per `config`. Panics if recovery from
    /// [`ServeConfig::data_dir`] fails; use
    /// [`ServeShared::try_with_config`] to handle corruption.
    pub fn with_config(config: ServeConfig) -> Self {
        Self::try_with_config(config)
            .expect("session recovery failed")
            .0
    }

    /// Shared state per `config`, recovering the durable session from
    /// the data directory when one is configured. Returns what recovery
    /// rebuilt (`None` when the session is in-memory).
    pub fn try_with_config(
        config: ServeConfig,
    ) -> Result<(Self, Option<RecoveryInfo>), SessionError> {
        let engine = Engine::with_cache(
            config.threads,
            PlanCache::with_capacity(config.cache_capacity),
        );
        engine.set_quarantine_after(config.quarantine_after);
        let mut vocab = Vocab::new();
        let (mut session, recovery) = match &config.data_dir {
            Some(dir) => {
                let opts = PersistOptions {
                    fsync: config.fsync,
                    snapshot_every: config.snapshot_every,
                };
                let (s, info) = DurableSession::open(dir, opts, &mut vocab)?;
                engine.record_recovery(&info);
                (s, Some(info))
            }
            None => (DurableSession::in_memory(), None),
        };
        session.set_view_capacity(config.max_views);
        let repl = crate::repl::ReplContext::default();
        if let Some(bound) = config.max_staleness_lsn {
            repl.set_max_staleness(bound);
        }
        repl.observe_epoch(session.repl_epoch());
        Ok((
            ServeShared {
                engine,
                vocab: Mutex::new(vocab),
                scope: Mutex::new(ConstScope::default()),
                session: Mutex::new(session),
                limits: config.limits,
                max_line_bytes: config.max_line_bytes,
                default_backend: config.default_backend,
                repl,
            },
            recovery,
        ))
    }

    /// Shared state around an existing engine (used by tests to inject a
    /// cache with a colliding hash function).
    pub fn with_engine(engine: Engine, limits: Limits) -> Self {
        ServeShared {
            engine,
            vocab: Mutex::new(Vocab::new()),
            scope: Mutex::new(ConstScope::default()),
            session: Mutex::new(DurableSession::in_memory()),
            limits,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            default_backend: Backend::default(),
            repl: crate::repl::ReplContext::default(),
        }
    }

    /// The underlying engine (for statistics inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Replication state: role, observed epoch, staleness bound.
    pub fn repl(&self) -> &crate::repl::ReplContext {
        &self.repl
    }

    /// The session mutex, poison-recovered (replication internals; the
    /// `session → vocab` nesting order applies here too).
    pub(crate) fn session_lock(&self) -> std::sync::MutexGuard<'_, DurableSession> {
        lock_recover(&self.session)
    }

    /// The vocabulary mutex, poison-recovered (replication internals).
    pub(crate) fn vocab_lock(&self) -> std::sync::MutexGuard<'_, Vocab> {
        lock_recover(&self.vocab)
    }

    /// The configured request-line byte cap.
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// Flushes the durable session for an orderly shutdown: fsync the
    /// WAL, then cut a final snapshot, so a deploy-time restart recovers
    /// from the snapshot alone instead of replaying the whole log.
    /// Returns `Ok(false)` for in-memory sessions. Counts the drain (and
    /// the snapshot, when one was cut) in the engine totals.
    pub fn drain_persist(&self) -> Result<bool, SessionError> {
        self.engine.record_drain();
        // Primary drain flushes to replicas first: every journaled frame
        // must be acknowledged by every connected replica (bounded wait)
        // before the process lets go, so a drain-then-promote loses
        // nothing. Only then is the hub closed — closing earlier would
        // stop the senders (and drop publishes) with acknowledged
        // frames still unshipped.
        if let Some(hub) = self.repl.hub() {
            if !hub.wait_replicated(std::time::Duration::from_secs(5)) {
                eprintln!("gomq-serve: repl: drain proceeding with unacknowledged replica frames");
            }
            hub.close();
        }
        let result = {
            let mut session = lock_recover(&self.session);
            if !session.is_durable() {
                return Ok(false);
            }
            // session → vocab is the one permitted lock nesting order.
            let vocab = lock_recover(&self.vocab);
            session.drain(&vocab)
        };
        if result.is_ok() {
            self.engine.record_snapshot();
        }
        result.map(|()| true)
    }
}

/// A serving session: a view onto [`ServeShared`] state plus the
/// session's default limits. Single-threaded callers just construct one
/// with [`ServeSession::new`] / [`ServeSession::with_threads`];
/// concurrent servers build one session per thread over a shared
/// [`Arc<ServeShared>`].
pub struct ServeSession {
    shared: Arc<ServeShared>,
    limits: Limits,
}

impl Default for ServeSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeSession {
    /// A session sized to the machine.
    pub fn new() -> Self {
        Self::with_config(ServeConfig::default())
    }

    /// A session with an explicit worker budget.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_config(ServeConfig {
            threads,
            ..ServeConfig::default()
        })
    }

    /// A session per `config` (cache capacity and default limits).
    pub fn with_config(config: ServeConfig) -> Self {
        Self::with_shared(Arc::new(ServeShared::with_config(config)))
    }

    /// A session over existing shared state (one per serving thread).
    pub fn with_shared(shared: Arc<ServeShared>) -> Self {
        let limits = shared.limits;
        ServeSession { shared, limits }
    }

    /// The shared state (clone it to build sibling sessions).
    pub fn shared(&self) -> &Arc<ServeShared> {
        &self.shared
    }

    /// The underlying engine (for statistics inspection).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Handles one request line, returning one response line (no
    /// trailing newline). Never panics and never poisons shared state,
    /// whatever the input: malformed requests, resource blowups and
    /// panicking corner cases all come back as structured responses.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.scope_enter();
        let dispatched = catch_unwind(AssertUnwindSafe(|| self.dispatch(line)));
        let (id, outcome) = match dispatched {
            Ok(r) => r,
            Err(payload) => {
                self.shared.engine.record_panic();
                // The id is re-parsed: the panicking dispatch cannot
                // hand it back.
                let id = match json::parse(line) {
                    Ok(Json::Obj(o)) => o.get("id").and_then(Json::as_str).map(str::to_owned),
                    _ => None,
                };
                (id, Err(EngineError::Internal(panic_message(payload))))
            }
        };
        let out = match outcome {
            Ok(body) => body,
            Err(e) => {
                let mut out = String::from("{");
                if let Some(id) = &id {
                    out.push_str("\"id\": ");
                    json::write_str(&mut out, id);
                    out.push_str(", ");
                }
                match &e {
                    EngineError::Overloaded(be) => {
                        out.push_str("\"status\": \"overloaded\", \"error\": ");
                        json::write_str(&mut out, &format!("{e}"));
                        let _ = write!(out, ", \"limit\": \"{}\"", be.limit.name());
                    }
                    EngineError::Quarantined(n) => {
                        out.push_str("\"status\": \"quarantined\", \"error\": ");
                        json::write_str(&mut out, &format!("{e}"));
                        let _ = write!(out, ", \"failures\": {n}");
                    }
                    EngineError::Malformed(_) => {
                        out.push_str("\"status\": \"malformed\", \"error\": ");
                        json::write_str(&mut out, &format!("{e}"));
                    }
                    EngineError::NotSqlRewritable(_) => {
                        out.push_str("\"status\": \"non-rewritable-to-sql\", \"error\": ");
                        json::write_str(&mut out, &format!("{e}"));
                    }
                    _ => {
                        out.push_str("\"status\": \"error\", \"error\": ");
                        json::write_str(&mut out, &format!("{e}"));
                    }
                }
                out.push('}');
                out
            }
        };
        self.scope_exit();
        out
    }

    /// Marks a request as in flight; the first request of a burst
    /// records the constant floor to roll back to.
    fn scope_enter(&self) {
        let mut scope = lock_recover(&self.shared.scope);
        if scope.active == 0 {
            scope.floor = lock_recover(&self.shared.vocab).const_mark();
        }
        scope.active += 1;
    }

    /// Marks a request as done; the last request of a burst rolls back
    /// every ABox constant the burst interned. (Rollback must wait for
    /// quiescence: constants are shared across concurrent requests.)
    fn scope_exit(&self) {
        let mut scope = lock_recover(&self.shared.scope);
        scope.active -= 1;
        if scope.active == 0 {
            let floor = scope.floor;
            lock_recover(&self.shared.vocab).truncate_consts(floor);
        }
    }

    fn dispatch(&mut self, line: &str) -> (Option<String>, Result<String, EngineError>) {
        let parsed =
            json::parse(line).map_err(|e| EngineError::BadRequest(format!("invalid JSON: {e}")));
        let obj = match parsed {
            Ok(Json::Obj(o)) => o,
            Ok(_) => {
                return (
                    None,
                    Err(EngineError::BadRequest(
                        "request must be a JSON object".into(),
                    )),
                )
            }
            Err(e) => return (None, Err(e)),
        };
        let id = obj.get("id").and_then(Json::as_str).map(str::to_owned);
        (id.clone(), self.run(&obj, id.as_deref()))
    }

    /// Parses the request's optional `"limits"` object.
    fn request_limits(
        &self,
        obj: &std::collections::BTreeMap<String, Json>,
    ) -> Result<Limits, EngineError> {
        let Some(limits) = obj.get("limits") else {
            return Ok(Limits::default());
        };
        let Json::Obj(l) = limits else {
            return Err(EngineError::BadRequest(
                "\"limits\" must be an object".into(),
            ));
        };
        let num = |name: &str| -> Result<Option<u64>, EngineError> {
            match l.get(name) {
                None => Ok(None),
                Some(Json::Num(n)) if *n >= 0.0 && n.is_finite() => Ok(Some(*n as u64)),
                Some(_) => Err(EngineError::BadRequest(format!(
                    "\"limits.{name}\" must be a non-negative number"
                ))),
            }
        };
        for key in l.keys() {
            if !matches!(key.as_str(), "max_rounds" | "max_derived" | "timeout_ms") {
                return Err(EngineError::BadRequest(format!(
                    "unknown limit \"{key}\" (expected max_rounds, max_derived, timeout_ms)"
                )));
            }
        }
        Ok(Limits {
            max_rounds: num("max_rounds")?.map(|n| n as usize),
            max_derived: num("max_derived")?.map(|n| n as usize),
            timeout: num("timeout_ms")?.map(Duration::from_millis),
        })
    }

    fn run(
        &mut self,
        obj: &std::collections::BTreeMap<String, Json>,
        id: Option<&str>,
    ) -> Result<String, EngineError> {
        match obj.get("op") {
            None => self.run_query(obj, id),
            Some(op) => match op.as_str() {
                Some("query") => self.run_query(obj, id),
                Some("assert") => self.run_assert(obj, id),
                Some("mark") => self.run_mark(id),
                Some("rollback") => self.run_rollback(obj, id),
                Some("promote") => self.run_promote(id),
                Some(other) => Err(EngineError::BadRequest(format!(
                    "unknown op \"{other}\" (expected query, assert, mark, rollback, promote)"
                ))),
                None => Err(EngineError::BadRequest("\"op\" must be a string".into())),
            },
        }
    }

    fn run_query(
        &mut self,
        obj: &std::collections::BTreeMap<String, Json>,
        id: Option<&str>,
    ) -> Result<String, EngineError> {
        let field = |name: &str| -> Result<&str, EngineError> {
            obj.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| EngineError::BadRequest(format!("missing string field \"{name}\"")))
        };
        let ontology_text = field("ontology")?;
        let query_name = field("query")?;
        let want_cert = match obj.get("certificate") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => {
                return Err(EngineError::BadRequest(
                    "\"certificate\" must be a boolean".into(),
                ))
            }
        };
        if want_cert && obj.contains_key("aboxes") {
            return Err(EngineError::BadRequest(
                "\"certificate\": true cannot be combined with \"aboxes\" \
                 (certify one ABox per request)"
                    .into(),
            ));
        }
        let backend = match obj.get("backend") {
            None => self.shared.default_backend,
            Some(Json::Str(name)) => Backend::from_name(name).map_err(EngineError::BadRequest)?,
            Some(_) => {
                return Err(EngineError::BadRequest(
                    "\"backend\" must be \"native\" or \"sql\"".into(),
                ))
            }
        };
        if backend == Backend::Sql {
            if want_cert {
                return Err(EngineError::BadRequest(
                    "\"backend\": \"sql\" cannot attach certificates \
                     (the SQL executor records no derivations)"
                        .into(),
                ));
            }
            if obj.contains_key("aboxes") {
                return Err(EngineError::BadRequest(
                    "\"backend\": \"sql\" cannot be combined with \"aboxes\" \
                     (batch one ABox per request)"
                        .into(),
                ));
            }
            if matches!(obj.get("session"), Some(Json::Bool(true))) {
                return Err(EngineError::BadRequest(
                    "\"backend\": \"sql\" cannot be combined with \"session\": true \
                     (the session store is served natively)"
                        .into(),
                ));
            }
        }
        let budget = self
            .limits
            .clamp(&self.request_limits(obj)?)
            .budget_from_now();
        // Admission control: a request whose deadline has already passed
        // must not enter the executor at all — it would only burn a
        // worker to discover the same verdict.
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            self.shared.engine.record_overloaded();
            return Err(EngineError::Overloaded(BudgetExceeded {
                limit: LimitKind::Deadline,
                rounds: 0,
                derived: 0,
            }));
        }
        let (o, query) = {
            let mut vocab = lock_recover(&self.shared.vocab);
            let dl = parse_ontology(ontology_text, &mut vocab)
                .map_err(|e| EngineError::BadRequest(format!("ontology: {e}")))?;
            let o = to_gf(&dl);
            let query = vocab.find_rel(query_name).ok_or_else(|| {
                EngineError::BadRequest(format!(
                    "query relation \"{query_name}\" does not occur in the ontology"
                ))
            })?;
            (o, query)
        };
        // The vocab lock is released before planning: the cache takes it
        // itself, and single-flight waiters must not hold it.
        let (plan, cached, compile_elapsed) =
            self.shared
                .engine
                .plan_shared(&o, query, &self.shared.vocab);
        self.shared.engine.record_compile(compile_elapsed);
        let plan = plan?;

        // The session-resident store is answered on its own path: a
        // shared `Arc` snapshot (no column copy) plus, when enabled,
        // the plan's maintained materialization.
        if matches!(obj.get("session"), Some(Json::Bool(true))) {
            if obj.contains_key("abox") || obj.contains_key("aboxes") {
                return Err(EngineError::BadRequest(
                    "\"session\": true cannot be combined with \"abox\"/\"aboxes\"".into(),
                ));
            }
            return self.run_session_query(id, &plan, cached, compile_elapsed, &budget, want_cert);
        }
        // One ABox or a batch of ABoxes.
        let parse_abox = |text: &str| -> Result<IndexedInstance, EngineError> {
            let mut vocab = lock_recover(&self.shared.vocab);
            let d = gomq_core::parse::parse_instance(text, &mut vocab)
                .map_err(|e| EngineError::BadRequest(format!("abox: {e}")))?;
            // Move the parsed store into the index — the serve path never
            // copies the fact columns.
            Ok(IndexedInstance::from_instance(d))
        };
        enum Input {
            One(Box<IndexedInstance>),
            Batch(Vec<IndexedInstance>),
        }
        let input = if let Some(texts) = obj.get("aboxes") {
            let texts = texts.as_arr().ok_or_else(|| {
                EngineError::BadRequest("\"aboxes\" must be an array of strings".into())
            })?;
            let mut aboxes = Vec::with_capacity(texts.len());
            for t in texts {
                aboxes.push(parse_abox(t.as_str().ok_or_else(|| {
                    EngineError::BadRequest("\"aboxes\" must be an array of strings".into())
                })?)?);
            }
            Input::Batch(aboxes)
        } else {
            Input::One(Box::new(parse_abox(field("abox")?)?))
        };

        // The SQL backend's rewritability verdict is a compile-time
        // property of the plan: refuse recursive plans before the
        // breaker or the executor ever see the request.
        if backend == Backend::Sql {
            if let Err(e) = &plan.sql {
                self.shared.engine.record_sql_refusal();
                return Err(EngineError::NotSqlRewritable(e.clone()));
            }
        }
        // Circuit breaker: a plan that keeps failing evaluation is
        // refused before it can burn another budget.
        if let Some(n) = self.shared.engine.quarantine_reject(plan.key) {
            return Err(EngineError::Quarantined(n));
        }
        // Evaluate with failures (blown budgets and panics, not bad
        // requests) attributed to this plan's breaker.
        let engine = &self.shared.engine;
        let evaluated = catch_unwind(AssertUnwindSafe(|| match &input {
            Input::One(abox) if want_cert => {
                // Certified path: the traced fixpoint *is* the
                // evaluation — answers and certificate come from one
                // run, never a second evaluation. The ABox came with
                // the request, so there is no session position to bind
                // to (the certificate's base facts are self-contained).
                engine
                    .answer_indexed_certified(&plan, abox, &budget, &self.shared.vocab, None)
                    .map(|(answers, cert, stats)| {
                        let mut payload = String::from("\"answers\": ");
                        self.write_answers(&mut payload, &answers);
                        payload.push_str(", \"certificate\": ");
                        payload.push_str(&cert);
                        (payload, stats)
                    })
            }
            Input::One(abox) => match backend {
                Backend::Native => engine.answer_indexed_budgeted(&plan, abox, &budget),
                Backend::Sql => engine.answer_indexed_sql(&plan, abox, &budget, &self.shared.vocab),
            }
            .map(|(answers, stats)| {
                let mut payload = String::from("\"answers\": ");
                self.write_answers(&mut payload, &answers);
                (payload, stats)
            }),
            Input::Batch(aboxes) => {
                engine
                    .answer_batch_budgeted(&plan, aboxes, &budget)
                    .map(|(batches, stats)| {
                        let mut payload = String::from("\"batches\": [");
                        for (i, answers) in batches.iter().enumerate() {
                            if i > 0 {
                                payload.push_str(", ");
                            }
                            self.write_answers(&mut payload, answers);
                        }
                        payload.push(']');
                        (payload, stats)
                    })
            }
        }));
        let (payload, stats) = match evaluated {
            Ok(Ok(ok)) => {
                engine.record_eval_success(plan.key);
                ok
            }
            Ok(Err(e)) => {
                if matches!(e, EngineError::Overloaded(_)) {
                    engine.record_eval_failure(plan.key);
                }
                return Err(e);
            }
            Err(panic) => {
                engine.record_eval_failure(plan.key);
                std::panic::resume_unwind(panic)
            }
        };

        Ok(self.query_response(
            id,
            &plan,
            cached,
            compile_elapsed,
            backend,
            &payload,
            &stats,
        ))
    }

    /// Answers a `"session": true` query over the session-resident
    /// store. The store is snapshotted by an `Arc` refcount bump — the
    /// read path never deep-copies the fact columns — and, when view
    /// maintenance is enabled, the answer comes from the plan's
    /// maintained materialization: a registry hit pays one incremental
    /// sync over the facts asserted since the view last looked instead
    /// of a from-scratch fixpoint; a miss pays the one full fixpoint a
    /// view ever costs and registers it. With maintenance disabled
    /// (`max_views` 0) the query runs a plain budgeted fixpoint over
    /// the shared snapshot.
    fn run_session_query(
        &mut self,
        id: Option<&str>,
        plan: &Arc<OmqPlan>,
        cached: bool,
        compile_elapsed: Duration,
        budget: &Budget,
        want_cert: bool,
    ) -> Result<String, EngineError> {
        let engine = &self.shared.engine;
        if let Some(n) = engine.quarantine_reject(plan.key) {
            return Err(EngineError::Quarantined(n));
        }
        // Replica reads carry their lsn lag behind the primary's head
        // (`"staleness"`), and lag past the `--max-staleness-lsn` bound
        // is refused with a typed `"stale"` status before any view is
        // checked out.
        let staleness = match self.shared.repl().role() {
            crate::repl::Role::Follower => Some(
                self.shared
                    .repl()
                    .primary_lsn()
                    .saturating_sub(lock_recover(&self.shared.session).position().0),
            ),
            _ => None,
        };
        if let Some(lag) = staleness {
            let bound = self.shared.repl().max_staleness();
            if lag > bound {
                engine.record_repl_stale_refusal();
                let mut out = String::from("{");
                if let Some(id) = id {
                    out.push_str("\"id\": ");
                    json::write_str(&mut out, id);
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "\"status\": \"stale\", \"staleness\": {lag}, \"max_staleness\": {bound}, "
                );
                out.push_str("\"error\": ");
                json::write_str(
                    &mut out,
                    "replica lag exceeds --max-staleness-lsn; retry on the primary or relax the bound",
                );
                out.push('}');
                return Ok(out);
            }
        }
        // Check the view out (and snapshot the store) under one lock
        // hold; evaluation runs lock-free on the snapshot. The epoch is
        // remembered so a rollback racing this request invalidates the
        // re-registration, never the other way round. The session
        // position is captured under the *same* hold, so the
        // certificate's snapshot binding names exactly the store state
        // the answer is computed over.
        let (store, view, epoch, views_on, position, gauges) = {
            let mut session = lock_recover(&self.shared.session);
            let store = session.share_store();
            let epoch = session.views().epoch();
            let views_on = session.views().enabled();
            let position = session.position();
            let mut view = session.views_mut().take(plan.key);
            // A certificate needs recorded witnesses. A view built
            // before any certificate was requested has none — discard
            // it (a counted drop) and rebuild with recording on; from
            // then on the session pays the recording overhead only
            // because it asked for certificates.
            let mut gauges = None;
            if want_cert && view.as_ref().is_some_and(|v| !v.is_recording()) {
                view = None;
                session.views_mut().note_dropped(1);
                gauges = Some((session.views().len() as u64, session.views().evicted()));
            }
            (store, view, epoch, views_on, position, gauges)
        };
        if let Some((active, evicted)) = gauges {
            engine.record_views(active, evicted);
        }
        let had_view = view.is_some();
        let t0 = Instant::now();
        let evaluated = catch_unwind(AssertUnwindSafe(
            || -> Result<(String, RequestStats), EngineError> {
                let overloaded = |e: BudgetExceeded| {
                    engine.record_overloaded();
                    EngineError::Overloaded(e)
                };
                let (answers, cert, stats) = match view {
                    Some(mut view) => {
                        // Maintained hit. A failed sync consumes the
                        // view — the registry never holds a half-
                        // maintained materialization.
                        let es = view.sync(&store, budget).map_err(overloaded)?;
                        let answers = view.answers();
                        let cert = want_cert
                            .then(|| self.view_certificate(&view, position))
                            .transpose()?;
                        let stats = RequestStats {
                            eval: t0.elapsed(),
                            rounds: es.rounds,
                            derived: es.derived,
                            answers: answers.len(),
                            store: es.store,
                            maintained: true,
                            ivm_deleted: es.ivm_deleted,
                            ivm_rederived: es.ivm_rederived,
                            cert_bytes: cert.as_ref().map_or(0, String::len),
                            ..RequestStats::default()
                        };
                        engine.record_request(&stats);
                        self.put_view(plan.key, view, epoch);
                        (answers, cert, stats)
                    }
                    None if views_on => {
                        // Miss: the one full fixpoint this view ever
                        // costs; register it for the next query.
                        // Certificate-requesting sessions build the
                        // recording variant, whose sync/rollback
                        // maintenance keeps witnesses alongside facts.
                        let (view, es) = if want_cert {
                            Materialization::build_recording(
                                &plan.program.rules,
                                plan.program.goal,
                                &store,
                                budget,
                            )
                        } else {
                            Materialization::build(
                                &plan.program.rules,
                                plan.program.goal,
                                &store,
                                budget,
                            )
                        }
                        .map_err(overloaded)?;
                        let answers = view.answers();
                        let cert = want_cert
                            .then(|| self.view_certificate(&view, position))
                            .transpose()?;
                        let stats = RequestStats {
                            eval: t0.elapsed(),
                            rounds: es.rounds,
                            derived: es.derived,
                            answers: answers.len(),
                            store: es.store,
                            cert_bytes: cert.as_ref().map_or(0, String::len),
                            ..RequestStats::default()
                        };
                        engine.record_request(&stats);
                        self.put_view(plan.key, view, epoch);
                        (answers, cert, stats)
                    }
                    // Maintenance disabled: plain budgeted fixpoint over
                    // the shared snapshot (absorbs its own stats).
                    None if want_cert => {
                        let (answers, cert, stats) = engine.answer_indexed_certified(
                            plan,
                            &store,
                            budget,
                            &self.shared.vocab,
                            Some(position),
                        )?;
                        (answers, Some(cert), stats)
                    }
                    None => {
                        let (answers, stats) =
                            engine.answer_indexed_budgeted(plan, &store, budget)?;
                        (answers, None, stats)
                    }
                };
                let mut payload = String::from("\"answers\": ");
                self.write_answers(&mut payload, &answers);
                if let Some(cert) = cert {
                    payload.push_str(", \"certificate\": ");
                    payload.push_str(&cert);
                }
                Ok((payload, stats))
            },
        ));
        let (payload, stats) = match evaluated {
            Ok(Ok(ok)) => {
                engine.record_eval_success(plan.key);
                ok
            }
            Ok(Err(e)) => {
                if matches!(e, EngineError::Overloaded(_)) {
                    engine.record_eval_failure(plan.key);
                }
                if had_view {
                    // The checked-out view died inside the failed
                    // closure (its sync blew the budget, or certificate
                    // assembly failed before re-registration): count
                    // the drop and resample the gauges so the totals
                    // never claim a view that no longer exists.
                    self.note_view_dropped();
                }
                return Err(e);
            }
            Err(panic) => {
                engine.record_eval_failure(plan.key);
                if had_view {
                    self.note_view_dropped();
                }
                std::panic::resume_unwind(panic)
            }
        };
        let mut payload = payload;
        if let Some(lag) = staleness {
            let _ = write!(payload, ", \"staleness\": {lag}");
        }
        Ok(self.query_response(
            id,
            plan,
            cached,
            compile_elapsed,
            Backend::Native,
            &payload,
            &stats,
        ))
    }

    /// Assembles the certificate for a synced recording view, bound to
    /// the session position its store snapshot was taken at.
    fn view_certificate(
        &self,
        view: &Materialization,
        position: (u64, u64),
    ) -> Result<String, EngineError> {
        let answer_ids = view.answer_ids();
        let base: std::collections::HashSet<u32> = view.base_fact_ids().iter().copied().collect();
        let source = crate::certify::CertSource {
            instance: view.instance(),
            rules: view.rules(),
            goal: view.goal(),
            answer_ids: &answer_ids,
            snapshot: Some(position),
        };
        let vocab = lock_recover(&self.shared.vocab);
        crate::certify::emit_certificate(
            &vocab,
            &source,
            |fact| base.contains(&fact),
            |fact| view.derivation(fact),
        )
        .map_err(|e| EngineError::Internal(format!("certificate assembly: {e}")))
    }

    /// Accounts a view that died outside the registry (a failed sync or
    /// certificate-assembly error consumed it): bumps the drop counter
    /// and resamples the gauges into the engine totals.
    fn note_view_dropped(&self) {
        let (active, evicted) = {
            let mut session = lock_recover(&self.shared.session);
            session.views_mut().note_dropped(1);
            (session.views().len() as u64, session.views().evicted())
        };
        self.shared.engine.record_views(active, evicted);
    }

    /// Re-registers a checked-out (or freshly built) view and samples
    /// the registry gauges into the engine totals. A stale epoch (a
    /// rollback raced this request) drops the view instead — the next
    /// query rebuilds from the rolled-back store.
    fn put_view(&self, key: u64, view: Materialization, epoch: u64) {
        let (active, evicted) = {
            let mut session = lock_recover(&self.shared.session);
            session.views_mut().put(key, view, epoch);
            (session.views().len() as u64, session.views().evicted())
        };
        self.shared.engine.record_views(active, evicted);
    }

    /// The common `{"id": ..., "status": "ok", ..., "stats": ...,
    /// "engine": ...}` response of both query paths.
    #[allow(clippy::too_many_arguments)]
    fn query_response(
        &self,
        id: Option<&str>,
        plan: &OmqPlan,
        cached: bool,
        compile_elapsed: Duration,
        backend: Backend,
        payload: &str,
        stats: &RequestStats,
    ) -> String {
        let mut out = String::from("{");
        if let Some(id) = id {
            out.push_str("\"id\": ");
            json::write_str(&mut out, id);
            out.push_str(", ");
        }
        out.push_str("\"status\": \"ok\", ");
        let _ = write!(out, "\"cached\": {cached}, ");
        out.push_str("\"zone\": ");
        json::write_str(&mut out, &format!("{}", plan.report.zone));
        out.push_str(", \"fragment\": ");
        // The tightest containing Figure-1 fragment, or null when the
        // classifier placed the ontology in no listed fragment.
        match plan.report.fragments.first() {
            Some(fr) => json::write_str(&mut out, &format!("{fr}")),
            None => out.push_str("null"),
        }
        let _ = write!(out, ", \"backend\": \"{}\"", backend.name());
        out.push_str(", ");
        out.push_str(payload);
        let _ = write!(
            out,
            ", \"stats\": {{\"compile_us\": {}, \"eval_us\": {}, \"rounds\": {}, \
             \"derived\": {}, \"cache_hit\": {}, \"maintained\": {}, \"cert_bytes\": {}}}",
            compile_elapsed.as_micros(),
            stats.eval.as_micros(),
            stats.rounds,
            stats.derived,
            cached,
            stats.maintained,
            stats.cert_bytes,
        );
        self.engine_block(&mut out);
        out.push('}');
        out
    }

    /// Refuses a write on a node that is not writable: followers answer
    /// a typed `"read-only"` status, fenced ex-primaries a typed
    /// `"fenced"` status carrying the superseding epoch. Returns `None`
    /// when writes are allowed (single-node or primary role).
    fn refuse_write(&self, id: Option<&str>, op: &str) -> Option<String> {
        use crate::repl::Role;
        let ctx = self.shared.repl();
        let role = ctx.role();
        let (status, detail) = match role {
            Role::Single | Role::Primary => return None,
            Role::Follower => (
                "read-only",
                "this node is a read replica; send writes to the primary".to_owned(),
            ),
            Role::Fenced => (
                "fenced",
                format!(
                    "this node was superseded at epoch {}; it no longer accepts writes",
                    ctx.epoch()
                ),
            ),
        };
        self.shared.engine.record_repl_write_refusal();
        let mut out = String::from("{");
        if let Some(id) = id {
            out.push_str("\"id\": ");
            json::write_str(&mut out, id);
            out.push_str(", ");
        }
        let _ = write!(out, "\"status\": \"{status}\", \"op\": \"{op}\", ");
        if role == Role::Fenced {
            let _ = write!(out, "\"epoch\": {}, ", ctx.epoch());
        }
        out.push_str("\"error\": ");
        json::write_str(&mut out, &detail);
        out.push('}');
        Some(out)
    }

    /// Handles `{"op": "promote"}`: a follower stamps the next epoch
    /// into its own WAL, becomes the primary, and keeps fencing its old
    /// primary's replication address from here on.
    fn run_promote(&mut self, id: Option<&str>) -> Result<String, EngineError> {
        use crate::repl::Role;
        match self.shared.repl().role() {
            Role::Follower => {}
            r => {
                return Err(EngineError::BadRequest(format!(
                    "\"promote\" requires a follower (this node is {})",
                    r.name()
                )))
            }
        }
        let (epoch, lsn) = crate::repl::promote(&self.shared, "operator promote op")
            .map_err(|e| EngineError::Internal(format!("promotion: {e}")))?;
        let mut out = self.mutation_head(id, "promote");
        let _ = write!(out, "\"epoch\": {epoch}, \"lsn\": {lsn}");
        self.engine_block(&mut out);
        out.push('}');
        Ok(out)
    }

    /// Handles `{"op": "assert", "abox": "..."}`: journal the batch to
    /// the WAL (when durable), apply it to the session store, and
    /// snapshot if the policy says so.
    fn run_assert(
        &mut self,
        obj: &std::collections::BTreeMap<String, Json>,
        id: Option<&str>,
    ) -> Result<String, EngineError> {
        if let Some(refusal) = self.refuse_write(id, "assert") {
            return Ok(refusal);
        }
        let text = obj
            .get("abox")
            .and_then(Json::as_str)
            .ok_or_else(|| EngineError::BadRequest("missing string field \"abox\"".into()))?;
        // Parse and symbolize under the vocab lock; the symbolic copy is
        // what the WAL journals (names survive constant-table shifts).
        let (facts, syms, const_floor) = {
            let mut vocab = lock_recover(&self.shared.vocab);
            let d = gomq_core::parse::parse_instance(text, &mut vocab)
                .map_err(|e| EngineError::BadRequest(format!("abox: {e}")))?;
            let facts: Vec<Fact> = d.iter().map(|f| f.to_fact()).collect();
            let syms: Vec<SymFact> = facts
                .iter()
                .map(|f| crate::session::sym_fact(&vocab, f.rel, &f.args))
                .collect();
            (facts, syms, vocab.const_mark())
        };
        // Session constants are durable: raise the burst's rollback
        // floor so scope_exit never truncates names the session store
        // still references.
        {
            let mut scope = lock_recover(&self.shared.scope);
            scope.floor = scope.floor.max(const_floor);
        }
        let (info, snapshotted) = {
            let mut session = lock_recover(&self.shared.session);
            let info = session.assert(syms, &facts)?;
            let snapshotted = self.finish_mutation(&mut session, &info);
            (info, snapshotted)
        };
        let mut out = self.mutation_head(id, "assert");
        let _ = write!(
            out,
            "\"added\": {}, \"facts\": {}, \"lsn\": {}, \"snapshotted\": {snapshotted}",
            info.added, info.facts, info.lsn
        );
        self.engine_block(&mut out);
        out.push('}');
        Ok(out)
    }

    /// Handles `{"op": "mark"}`.
    fn run_mark(&mut self, id: Option<&str>) -> Result<String, EngineError> {
        if let Some(refusal) = self.refuse_write(id, "mark") {
            return Ok(refusal);
        }
        let (mark, info, snapshotted) = {
            let mut session = lock_recover(&self.shared.session);
            let (mark, info) = session.mark()?;
            let snapshotted = self.finish_mutation(&mut session, &info);
            (mark, info, snapshotted)
        };
        let mut out = self.mutation_head(id, "mark");
        let _ = write!(
            out,
            "\"mark\": {mark}, \"facts\": {}, \"lsn\": {}, \"snapshotted\": {snapshotted}",
            info.facts, info.lsn
        );
        self.engine_block(&mut out);
        out.push('}');
        Ok(out)
    }

    /// Handles `{"op": "rollback", "mark": n}`.
    fn run_rollback(
        &mut self,
        obj: &std::collections::BTreeMap<String, Json>,
        id: Option<&str>,
    ) -> Result<String, EngineError> {
        if let Some(refusal) = self.refuse_write(id, "rollback") {
            return Ok(refusal);
        }
        let mark = match obj.get("mark") {
            Some(Json::Num(n)) if *n >= 0.0 && n.is_finite() => *n as u64,
            _ => {
                return Err(EngineError::BadRequest(
                    "\"mark\" must be a non-negative number".into(),
                ))
            }
        };
        let (info, snapshotted, maint, active, evicted) = {
            let mut session = lock_recover(&self.shared.session);
            let info = session.rollback(mark)?;
            // Maintain registered views eagerly, inside the lock: lazy
            // maintenance would misread the store's positional base
            // prefix once new asserts land on the truncated store. A
            // view whose maintenance fails (budget or panic) is
            // dropped; the next query rebuilds it.
            let budget = self.limits.budget_from_now();
            let maint = session.maintain_views_rollback(info.facts as usize, &budget);
            let (active, evicted) = (session.views().len() as u64, session.views().evicted());
            let snapshotted = self.finish_mutation(&mut session, &info);
            (info, snapshotted, maint, active, evicted)
        };
        self.shared
            .engine
            .record_ivm_maintenance(maint.deleted, maint.rederived);
        for _ in 0..maint.panicked {
            self.shared.engine.record_panic();
        }
        self.shared.engine.record_views(active, evicted);
        let mut out = self.mutation_head(id, "rollback");
        let _ = write!(
            out,
            "\"mark\": {mark}, \"facts\": {}, \"lsn\": {}, \"snapshotted\": {snapshotted}",
            info.facts, info.lsn
        );
        self.engine_block(&mut out);
        out.push('}');
        Ok(out)
    }

    /// Accounts a journaled mutation and snapshots when due (called with
    /// the session lock held; takes the vocab lock — session → vocab is
    /// the one permitted nesting order). A failed snapshot is not an
    /// error: the records are safe in the WAL and the policy retries on
    /// the next mutation.
    fn finish_mutation(&self, session: &mut DurableSession, info: &MutationInfo) -> bool {
        if !session.is_durable() {
            return false;
        }
        self.shared.engine.record_wal(1, info.wal_bytes);
        if !session.snapshot_due() {
            return false;
        }
        let snapshotted = {
            let vocab = lock_recover(&self.shared.vocab);
            session.snapshot_now(&vocab).is_ok()
        };
        if snapshotted {
            self.shared.engine.record_snapshot();
        }
        snapshotted
    }

    /// The common `{"id": ..., "status": "ok", "op": ..., ` response
    /// prefix of session mutations.
    fn mutation_head(&self, id: Option<&str>, op: &str) -> String {
        let mut out = String::from("{");
        if let Some(id) = id {
            out.push_str("\"id\": ");
            json::write_str(&mut out, id);
            out.push_str(", ");
        }
        let _ = write!(out, "\"status\": \"ok\", \"op\": \"{op}\", ");
        out
    }

    /// Appends the cumulative `, "engine": {...}` totals block (field
    /// order is part of the protocol; new counters only ever append).
    fn engine_block(&self, out: &mut String) {
        let totals = self.shared.engine.stats();
        let session_facts = lock_recover(&self.shared.session).len();
        let _ = write!(
            out,
            ", \"engine\": {{\"requests\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_size\": {}, \"evictions\": {}, \"inflight_waits\": {}, \
             \"overloaded\": {}, \"panics\": {}, \"facts_interned\": {}, \
             \"arena_bytes\": {}, \"dedup_hits\": {}, \"wal_records\": {}, \
             \"wal_bytes\": {}, \"snapshots\": {}, \"recovered_records\": {}, \
             \"recovered_facts\": {}, \"session_facts\": {}, \"quarantined\": {}, \
             \"breaker_trips\": {}, \"faults_injected\": {}, \"conns_accepted\": {}, \
             \"conns_refused\": {}, \"conns_active\": {}, \"queue_depth\": {}, \
             \"queue_rejects\": {}, \"drains\": {}, \"ivm_maintained_hits\": {}, \
             \"ivm_deleted\": {}, \"ivm_rederived\": {}, \"views_active\": {}, \
             \"views_evicted\": {}, \"certs_emitted\": {}, \"cert_bytes\": {}, \
             \"sql_compiles\": {}, \"sql_refusals\": {}, \
             \"repl_frames_shipped\": {}, \"repl_bytes_shipped\": {}, \
             \"repl_snapshots_shipped\": {}, \"repl_records_applied\": {}, \
             \"repl_bytes_applied\": {}, \"repl_reconnects\": {}, \
             \"repl_promotions\": {}, \"repl_write_refusals\": {}, \
             \"repl_stale_refusals\": {}, \"repl_lag_lsn\": {}}}",
            totals.requests,
            totals.cache_hits,
            totals.cache_misses,
            totals.cache_size,
            totals.cache_evictions,
            totals.inflight_waits,
            totals.overloaded,
            totals.panics,
            totals.facts_interned,
            totals.arena_bytes,
            totals.dedup_hits,
            totals.wal_records,
            totals.wal_bytes,
            totals.snapshots,
            totals.recovered_records,
            totals.recovered_facts,
            session_facts,
            totals.quarantined,
            totals.breaker_trips,
            totals.faults_injected,
            totals.conns_accepted,
            totals.conns_refused,
            totals.conns_active,
            totals.queue_depth,
            totals.queue_rejects,
            totals.drains,
            totals.ivm_maintained_hits,
            totals.ivm_deleted,
            totals.ivm_rederived,
            totals.views_active,
            totals.views_evicted,
            totals.certs_emitted,
            totals.cert_bytes,
            totals.sql_compiles,
            totals.sql_refusals,
            totals.repl_frames_shipped,
            totals.repl_bytes_shipped,
            totals.repl_snapshots_shipped,
            totals.repl_records_applied,
            totals.repl_bytes_applied,
            totals.repl_reconnects,
            totals.repl_promotions,
            totals.repl_write_refusals,
            totals.repl_stale_refusals,
            totals.repl_lag_lsn,
        );
    }

    /// The structured refusal for an over-long input line (the caller
    /// never got a parseable request, so there is no id to echo).
    pub fn refuse_oversized_line(&self, limit: usize) -> String {
        refuse_oversized_line(limit)
    }

    fn write_answers(&self, out: &mut String, answers: &BTreeSet<Vec<Term>>) {
        let vocab = lock_recover(&self.shared.vocab);
        out.push('[');
        for (i, tuple) in answers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, t) in tuple.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_str(out, &format!("{}", t.display(&vocab)));
            }
            out.push(']');
        }
        out.push(']');
    }
}

/// One framed read from the request stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line within the byte cap (newline stripped).
    Line(String),
    /// The line exceeded the cap. Its bytes were *discarded as they
    /// streamed* — an adversarial line can cost at most one buffer of
    /// memory — and the reader is positioned after its newline, in sync
    /// for the next request.
    TooLong {
        /// The configured cap the line exceeded.
        limit: usize,
    },
    /// End of the stream.
    Eof,
}

/// Stateful capped line framing over any [`BufRead`].
///
/// Unlike the one-shot [`read_line_capped`], the partial-line buffer
/// lives *in the struct*, so a read timeout mid-line (a socket with
/// `SO_RCVTIMEO`, used by the TCP front end to poll its drain flag)
/// loses nothing: [`CappedLineReader::poll_line`] returns `Ok(None)` and
/// the next poll resumes exactly where the stream paused.
pub struct CappedLineReader<R> {
    inner: R,
    max_bytes: usize,
    buf: Vec<u8>,
    overflow: bool,
}

impl<R: BufRead> CappedLineReader<R> {
    /// A framer over `inner` refusing lines longer than `max_bytes`.
    pub fn new(inner: R, max_bytes: usize) -> Self {
        CappedLineReader {
            inner,
            max_bytes,
            buf: Vec::new(),
            overflow: false,
        }
    }

    /// Advances the framing by whatever bytes are available.
    ///
    /// Returns `Ok(Some(..))` for a framing event (a complete line, an
    /// over-cap refusal, end of stream), `Ok(None)` when the underlying
    /// read would block or timed out (`WouldBlock`, `TimedOut`,
    /// `Interrupted`) — partial input is retained for the next poll —
    /// and `Err` only for real I/O failures.
    pub fn poll_line(&mut self) -> std::io::Result<Option<LineRead>> {
        use std::io::ErrorKind;
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF: deliver what we have (a final unterminated line).
                return Ok(Some(if std::mem::take(&mut self.overflow) {
                    LineRead::TooLong {
                        limit: self.max_bytes,
                    }
                } else if self.buf.is_empty() {
                    LineRead::Eof
                } else {
                    finish_line(std::mem::take(&mut self.buf))
                }));
            }
            if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                if !self.overflow {
                    self.buf.extend_from_slice(&chunk[..pos]);
                }
                self.inner.consume(pos + 1);
                let overflowed = std::mem::take(&mut self.overflow);
                let buf = std::mem::take(&mut self.buf);
                return Ok(Some(if overflowed || buf.len() > self.max_bytes {
                    LineRead::TooLong {
                        limit: self.max_bytes,
                    }
                } else {
                    finish_line(buf)
                }));
            }
            let n = chunk.len();
            if !self.overflow {
                self.buf.extend_from_slice(chunk);
                if self.buf.len() > self.max_bytes {
                    self.overflow = true;
                    self.buf = Vec::new(); // drop, don't keep growing
                }
            }
            self.inner.consume(n);
        }
    }
}

/// Reads one `\n`-terminated line from `reader`, refusing (not
/// buffering) lines longer than `max_bytes`. This is the serve binary's
/// framing primitive: unlike [`BufRead::read_line`], a hostile
/// gigabyte-long line cannot balloon resident memory — it is drained
/// chunk by chunk and answered with [`LineRead::TooLong`].
///
/// One-shot wrapper over [`CappedLineReader`] for blocking streams
/// (stdin, pipes): a would-block pause simply retries.
pub fn read_line_capped<R: BufRead>(reader: &mut R, max_bytes: usize) -> std::io::Result<LineRead> {
    let mut framer = CappedLineReader::new(reader, max_bytes);
    loop {
        if let Some(event) = framer.poll_line()? {
            return Ok(event);
        }
    }
}

/// Per-connection knobs for [`handle_connection`]: how the request loop
/// notices a server-wide drain and when it hangs up on an idle peer.
#[derive(Clone, Debug, Default)]
pub struct ConnControl {
    /// Server-wide drain token. Once tripped, requests the peer already
    /// sent are still answered, and the loop closes with
    /// [`ConnClose::Drained`] at the first read tick that finds no
    /// request pending. Only effective on streams whose reads time out;
    /// the blocking stdin transport drains at EOF instead.
    pub draining: Option<crate::drain::DrainToken>,
    /// Hang up after this long without a complete request. Only
    /// effective on streams whose reads time out (sockets with a read
    /// timeout); a blocking stdin pipe never produces idle ticks.
    pub idle_timeout: Option<Duration>,
}

impl ConnControl {
    fn is_draining(&self) -> bool {
        self.draining.as_ref().is_some_and(|t| t.is_draining())
    }
}

/// Why a connection's request loop ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnClose {
    /// The peer closed its write half (stdin EOF, socket shutdown).
    Eof,
    /// The server is draining: the loop stopped accepting new requests.
    Drained,
    /// The idle timeout elapsed without a complete request.
    Idle,
    /// Reading the request stream failed.
    Read(String),
    /// Writing a response failed (the peer hung up mid-response).
    Write(String),
}

/// Outcome of one connection's request loop.
#[derive(Clone, Debug)]
pub struct ConnOutcome {
    /// Requests answered (refusals for oversized lines included).
    pub requests: u64,
    /// Why the loop ended.
    pub close: ConnClose,
}

/// The transport-agnostic request loop: reads capped JSONL requests from
/// `reader`, obtains one response line per request from `exec`, and
/// writes it (newline-terminated, flushed) to `writer`.
///
/// Both serving transports are instances of this one function: stdin
/// mode passes `stdin.lock()` / `stdout.lock()` and an `exec` that calls
/// [`ServeSession::handle_line`] inline; the TCP front end
/// ([`crate::net`]) passes a socket with a short read timeout and an
/// `exec` that submits to the bounded worker pool. Oversized lines are
/// refused in-loop with [`refuse_oversized_line`] without consulting
/// `exec`.
pub fn handle_connection<R, W, F>(
    reader: R,
    mut writer: W,
    max_line_bytes: usize,
    control: &ConnControl,
    mut exec: F,
) -> ConnOutcome
where
    R: BufRead,
    W: std::io::Write,
    F: FnMut(&str) -> String,
{
    let mut framer = CappedLineReader::new(reader, max_line_bytes);
    let mut requests = 0u64;
    let mut last_activity = Instant::now();
    let close = loop {
        let response = match framer.poll_line() {
            Ok(Some(LineRead::Eof)) => break ConnClose::Eof,
            Ok(Some(LineRead::Line(line))) => {
                last_activity = Instant::now();
                if line.trim().is_empty() {
                    continue;
                }
                exec(&line)
            }
            Ok(Some(LineRead::TooLong { limit })) => {
                last_activity = Instant::now();
                refuse_oversized_line(limit)
            }
            Ok(None) => {
                // Read timeout tick: no complete request pending. The
                // drain check lives here, not before every read, so
                // requests the peer already pipelined are still
                // answered — a drain cuts the connection once it goes
                // quiet for one tick (a peer streaming through a drain
                // is bounded by the server's drain timeout instead).
                if control.is_draining() {
                    break ConnClose::Drained;
                }
                if control
                    .idle_timeout
                    .is_some_and(|t| last_activity.elapsed() >= t)
                {
                    break ConnClose::Idle;
                }
                continue;
            }
            Err(e) => break ConnClose::Read(e.to_string()),
        };
        requests += 1;
        if let Err(e) = writeln!(writer, "{response}").and_then(|()| writer.flush()) {
            break ConnClose::Write(e.to_string());
        }
    };
    ConnOutcome { requests, close }
}

/// The structured refusal for an input line past the configured byte
/// cap (the line was never buffered, let alone parsed, so there is no
/// request id to echo).
pub fn refuse_oversized_line(limit: usize) -> String {
    let mut out = String::from("{\"status\": \"malformed\", \"error\": ");
    json::write_str(
        &mut out,
        &format!("request line exceeds the {limit}-byte cap"),
    );
    out.push('}');
    out
}

fn finish_line(mut buf: Vec<u8>) -> LineRead {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    // Invalid UTF-8 still yields a line; JSON parsing rejects it with a
    // proper per-request error rather than killing the stream.
    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_field<'a>(response: &'a str, needle: &str) -> &'a str {
        assert!(
            response.contains(needle),
            "expected {needle:?} in {response}"
        );
        response
    }

    #[test]
    fn single_abox_roundtrip() {
        let mut s = ServeSession::with_threads(2);
        let resp = s.handle_line(
            r#"{"id": "r1", "ontology": "Manager sub Employee\nEmployee sub Staff", "query": "Staff", "abox": "Manager(ada)\nEmployee(grace)"}"#,
        );
        ok_field(&resp, "\"status\": \"ok\"");
        ok_field(&resp, "\"id\": \"r1\"");
        ok_field(&resp, "\"cached\": false");
        ok_field(&resp, r#"["ada"]"#);
        ok_field(&resp, r#"["grace"]"#);
        // Request-scoped stats say "miss"; engine totals count it.
        ok_field(&resp, "\"cache_hit\": false");
        ok_field(
            &resp,
            "\"engine\": {\"requests\": 1, \"cache_hits\": 0, \"cache_misses\": 1",
        );
        // Same OMQ again: served from the cache.
        let resp2 = s.handle_line(
            r#"{"ontology": "Employee sub Staff\nManager sub Employee", "query": "Staff", "abox": "Manager(bob)"}"#,
        );
        ok_field(&resp2, "\"cached\": true");
        ok_field(&resp2, r#"["bob"]"#);
        ok_field(&resp2, "\"cache_hit\": true");
        ok_field(&resp2, "\"cache_hits\": 1, \"cache_misses\": 1");
        // Responses are valid JSON.
        assert!(crate::json::parse(&resp).is_ok());
        assert!(crate::json::parse(&resp2).is_ok());
    }

    #[test]
    fn batched_aboxes() {
        let mut s = ServeSession::with_threads(4);
        let resp = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "aboxes": ["A(x)", "B(y)\nA(z)", ""]}"#,
        );
        ok_field(&resp, "\"batches\": ");
        ok_field(&resp, r#"[["x"]], [["y"], ["z"]], []"#);
        assert!(crate::json::parse(&resp).is_ok());
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = ServeSession::with_threads(1);
        let bad_json = s.handle_line("{nope");
        ok_field(&bad_json, "\"status\": \"error\"");
        let bad_query = s.handle_line(r#"{"ontology": "A sub B", "query": "Zzz", "abox": ""}"#);
        ok_field(&bad_query, "does not occur in the ontology");
        let bad_abox = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x"}"#);
        ok_field(&bad_abox, "\"status\": \"error\"");
        // The session still works afterwards.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
    }

    #[test]
    fn blown_budgets_report_overloaded_and_recover() {
        let mut s = ServeSession::with_threads(2);
        let chain = "C0 sub C1\nC1 sub C2\nC2 sub C3\nC3 sub C4\nC4 sub C5";
        let abox = (0..50).map(|i| format!("C0(x{i})\n")).collect::<String>();
        let req = format!(
            r#"{{"id": "hot", "ontology": "{chain}", "query": "C5", "abox": "{}", "limits": {{"max_derived": 5}}}}"#,
            abox.replace('\n', "\\n"),
        );
        let resp = s.handle_line(&req);
        ok_field(&resp, "\"status\": \"overloaded\"");
        ok_field(&resp, "\"limit\": \"derived\"");
        ok_field(&resp, "\"id\": \"hot\"");
        assert!(crate::json::parse(&resp).is_ok());
        // An expired deadline reports the deadline limit.
        let timed = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)", "limits": {"timeout_ms": 0}}"#,
        );
        ok_field(&timed, "\"status\": \"overloaded\"");
        ok_field(&timed, "\"limit\": \"deadline\"");
        // The session stays healthy and the same OMQ still answers.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
        assert_eq!(s.engine().stats().overloaded, 2);
    }

    #[test]
    fn session_limits_clamp_request_limits() {
        let mut s = ServeSession::with_config(ServeConfig {
            threads: 1,
            limits: Limits {
                max_derived: Some(3),
                ..Limits::default()
            },
            ..ServeConfig::default()
        });
        // The request asks for a *looser* limit; the session's wins.
        let resp = s.handle_line(
            r#"{"ontology": "C0 sub C1\nC1 sub C2", "query": "C2", "abox": "C0(a)\nC0(b)\nC0(c)", "limits": {"max_derived": 1000000}}"#,
        );
        ok_field(&resp, "\"status\": \"overloaded\"");
        ok_field(&resp, "\"limit\": \"derived\"");
    }

    #[test]
    fn malformed_limits_are_bad_requests() {
        let mut s = ServeSession::with_threads(1);
        let bad_type =
            s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "", "limits": 7}"#);
        ok_field(&bad_type, "must be an object");
        let bad_key = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "", "limits": {"fuel": 9}}"#,
        );
        ok_field(&bad_key, "unknown limit");
        let bad_value = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "", "limits": {"max_rounds": -1}}"#,
        );
        ok_field(&bad_value, "must be a non-negative number");
    }

    #[test]
    fn panics_are_isolated_and_counted() {
        let mut s = ServeSession::with_threads(1);
        // "R" is first interned as a role (arity 2) by "ex R.A sub B",
        // then used as a concept (arity 1) by "R sub B": the DL parser
        // trips the vocabulary's arity assertion. The fence must turn
        // that panic into a structured error.
        let resp = s.handle_line(
            r#"{"id": "boom", "ontology": "A sub ex R.A\nR sub B", "query": "B", "abox": ""}"#,
        );
        ok_field(&resp, "\"status\": \"error\"");
        ok_field(&resp, "\"id\": \"boom\"");
        ok_field(&resp, "internal error (panic isolated)");
        assert!(crate::json::parse(&resp).is_ok());
        assert_eq!(s.engine().stats().panics, 1);
        // The session still works afterwards.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
    }

    #[test]
    fn session_ops_roundtrip() {
        let mut s = ServeSession::with_threads(1);
        let a1 = s.handle_line(r#"{"id": "a1", "op": "assert", "abox": "Manager(ada)"}"#);
        ok_field(&a1, "\"status\": \"ok\"");
        ok_field(&a1, "\"op\": \"assert\"");
        ok_field(&a1, "\"added\": 1, \"facts\": 1");
        let q1 = s.handle_line(
            r#"{"ontology": "Manager sub Employee", "query": "Employee", "session": true}"#,
        );
        ok_field(&q1, r#"[["ada"]]"#);
        let m = s.handle_line(r#"{"op": "mark"}"#);
        ok_field(&m, "\"op\": \"mark\"");
        ok_field(&m, "\"mark\": 0");
        s.handle_line(r#"{"op": "assert", "abox": "Manager(bob)"}"#);
        let q2 = s.handle_line(
            r#"{"ontology": "Manager sub Employee", "query": "Employee", "session": true}"#,
        );
        ok_field(&q2, r#"[["ada"], ["bob"]]"#);
        let rb = s.handle_line(r#"{"op": "rollback", "mark": 0}"#);
        ok_field(&rb, "\"op\": \"rollback\"");
        ok_field(&rb, "\"facts\": 1");
        let q3 = s.handle_line(
            r#"{"ontology": "Manager sub Employee", "query": "Employee", "session": true}"#,
        );
        ok_field(&q3, r#"[["ada"]]"#);
        // Bad mutations are structured errors, not session killers.
        let bad = s.handle_line(r#"{"op": "rollback", "mark": 99}"#);
        ok_field(&bad, "unknown mark 99");
        let unknown = s.handle_line(r#"{"op": "defragment"}"#);
        ok_field(&unknown, "unknown op");
        let mixed = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "session": true, "abox": "A(x)"}"#,
        );
        ok_field(&mixed, "cannot be combined");
        for resp in [&a1, &q1, &m, &q2, &rb, &q3, &bad, &unknown, &mixed] {
            assert!(crate::json::parse(resp).is_ok(), "not JSON: {resp}");
        }
    }

    #[test]
    fn session_queries_hit_maintained_views() {
        let mut s = ServeSession::with_threads(1);
        s.handle_line(r#"{"op": "assert", "abox": "A(ada)"}"#);
        let q = r#"{"ontology": "A sub B", "query": "B", "session": true}"#;
        // First session query builds and registers the view.
        let q1 = s.handle_line(q);
        ok_field(&q1, r#"[["ada"]]"#);
        ok_field(&q1, "\"maintained\": false");
        ok_field(&q1, "\"views_active\": 1");
        ok_field(&q1, "\"ivm_maintained_hits\": 0");
        // Repeat: answered from the maintained view (incremental sync
        // over the one new fact, not a from-scratch fixpoint).
        s.handle_line(r#"{"op": "assert", "abox": "A(bob)"}"#);
        let q2 = s.handle_line(q);
        ok_field(&q2, r#"[["ada"], ["bob"]]"#);
        ok_field(&q2, "\"maintained\": true");
        ok_field(&q2, "\"ivm_maintained_hits\": 1");
        assert_eq!(s.engine().stats().ivm_maintained_hits, 1);
        // A rollback maintains the view (DRed), so the next query is
        // still a hit and still agrees with the rolled-back store.
        let m = s.handle_line(r#"{"op": "mark"}"#);
        ok_field(&m, "\"mark\": 0");
        s.handle_line(r#"{"op": "assert", "abox": "A(eve)\nA(pat)"}"#);
        let q3 = s.handle_line(q);
        ok_field(&q3, r#"[["ada"], ["bob"], ["eve"], ["pat"]]"#);
        s.handle_line(r#"{"op": "rollback", "mark": 0}"#);
        let q4 = s.handle_line(q);
        ok_field(&q4, r#"[["ada"], ["bob"]]"#);
        ok_field(&q4, "\"maintained\": true");
        assert!(s.engine().stats().ivm_deleted > 0, "rollback must DRed");
        for resp in [&q1, &q2, &q3, &q4] {
            assert!(crate::json::parse(resp).is_ok(), "not JSON: {resp}");
        }
    }

    #[test]
    fn disabled_views_fall_back_to_recompute() {
        let mut s = ServeSession::with_config(ServeConfig {
            threads: 1,
            max_views: 0,
            ..ServeConfig::default()
        });
        s.handle_line(r#"{"op": "assert", "abox": "A(ada)"}"#);
        let q = r#"{"ontology": "A sub B", "query": "B", "session": true}"#;
        for _ in 0..2 {
            let resp = s.handle_line(q);
            ok_field(&resp, r#"[["ada"]]"#);
            ok_field(&resp, "\"maintained\": false");
            ok_field(&resp, "\"views_active\": 0");
        }
        assert_eq!(s.engine().stats().ivm_maintained_hits, 0);
    }

    #[test]
    fn session_constants_survive_scope_rollback() {
        let mut s = ServeSession::with_threads(1);
        s.handle_line(r#"{"op": "assert", "abox": "Manager(ada)"}"#);
        // Plain per-request ABoxes still roll their constants back...
        for i in 0..50 {
            s.handle_line(&format!(
                r#"{{"ontology": "A sub B", "query": "B", "abox": "A(tmp{i})"}}"#
            ));
        }
        // ...but the session fact still renders its constant by name.
        let q = s.handle_line(
            r#"{"ontology": "Manager sub Employee", "query": "Employee", "session": true}"#,
        );
        ok_field(&q, r#"[["ada"]]"#);
    }

    #[test]
    fn durable_session_recovers_across_restart() {
        let dir = std::env::temp_dir().join(format!("gomq-serve-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServeConfig {
            threads: 1,
            data_dir: Some(dir.clone()),
            snapshot_every: 2,
            ..ServeConfig::default()
        };
        let q = r#"{"ontology": "Manager sub Employee", "query": "Employee", "session": true}"#;
        let alive = {
            let mut s = ServeSession::with_config(config());
            s.handle_line(r#"{"op": "assert", "abox": "Manager(ada)"}"#);
            s.handle_line(r#"{"op": "assert", "abox": "Manager(bob)\nEmployee(eve)"}"#);
            s.handle_line(r#"{"op": "assert", "abox": "Manager(pat)"}"#);
            s.handle_line(q)
        };
        ok_field(&alive, r#"[["ada"], ["bob"], ["eve"], ["pat"]]"#);
        // "Restart": fresh shared state over the same data directory.
        let (shared, recovery) = ServeShared::try_with_config(config()).unwrap();
        let info = recovery.expect("a data dir was configured");
        assert_eq!(
            info.snapshot_facts + info.replayed_facts,
            4,
            "recovery must rebuild all four facts: {info:?}"
        );
        let mut s2 = ServeSession::with_shared(Arc::new(shared));
        let revived = s2.handle_line(q);
        ok_field(&revived, r#"[["ada"], ["bob"], ["eve"], ["pat"]]"#);
        ok_field(&revived, "\"session_facts\": 4");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failing_plan_is_quarantined_but_others_serve() {
        let mut s = ServeSession::with_config(ServeConfig {
            threads: 1,
            quarantine_after: 3,
            ..ServeConfig::default()
        });
        let chain = "C0 sub C1\nC1 sub C2\nC2 sub C3";
        let hot = format!(
            r#"{{"ontology": "{chain}", "query": "C3", "abox": "C0(a)\nC0(b)\nC0(c)", "limits": {{"max_derived": 2}}}}"#
        );
        for _ in 0..3 {
            let resp = s.handle_line(&hot);
            ok_field(&resp, "\"status\": \"overloaded\"");
        }
        // The breaker is open now: even a request with no limits at all
        // is refused before evaluation.
        let blocked = s.handle_line(&format!(
            r#"{{"id": "q", "ontology": "{chain}", "query": "C3", "abox": "C0(a)"}}"#
        ));
        ok_field(&blocked, "\"status\": \"quarantined\"");
        ok_field(&blocked, "\"id\": \"q\"");
        ok_field(&blocked, "quarantined after 3 evaluation failures");
        assert!(crate::json::parse(&blocked).is_ok());
        // A different OMQ is unaffected.
        let other = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&other, "\"status\": \"ok\"");
        let stats = s.engine().stats();
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn expired_deadline_is_refused_at_admission() {
        let mut s = ServeSession::with_threads(1);
        // Warm the plan so the rounds counter below isolates evaluation.
        s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        let rounds_before = s.engine().stats().rounds;
        // Far more expired requests than the quarantine threshold: none
        // may enter the executor or count against the plan's breaker.
        for _ in 0..10 {
            let resp = s.handle_line(
                r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)", "limits": {"timeout_ms": 0}}"#,
            );
            ok_field(&resp, "\"status\": \"overloaded\"");
            ok_field(&resp, "\"limit\": \"deadline\"");
        }
        assert_eq!(s.engine().stats().rounds, rounds_before);
        assert_eq!(s.engine().stats().overloaded, 10);
        let fine = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&fine, "\"status\": \"ok\"");
    }

    #[test]
    fn capped_reader_frames_and_refuses() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"short\r\nanother line\n".to_vec());
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap(),
            LineRead::Line("short".into())
        );
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap(),
            LineRead::Line("another line".into())
        );
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), LineRead::Eof);
        // An oversized line is refused and the stream resyncs at its
        // newline; the following request is intact.
        let huge = "x".repeat(1 << 16);
        let mut r = Cursor::new(format!("{huge}\nnext\n").into_bytes());
        assert_eq!(
            read_line_capped(&mut r, 1024).unwrap(),
            LineRead::TooLong { limit: 1024 }
        );
        assert_eq!(
            read_line_capped(&mut r, 1024).unwrap(),
            LineRead::Line("next".into())
        );
        // Exactly at the cap passes; one byte past it does not.
        let mut r = Cursor::new(b"abcd\nabcde\n".to_vec());
        assert_eq!(
            read_line_capped(&mut r, 4).unwrap(),
            LineRead::Line("abcd".into())
        );
        assert_eq!(
            read_line_capped(&mut r, 4).unwrap(),
            LineRead::TooLong { limit: 4 }
        );
        // Unterminated oversized tail at EOF is still refused.
        let mut r = Cursor::new(huge.into_bytes());
        assert_eq!(
            read_line_capped(&mut r, 1024).unwrap(),
            LineRead::TooLong { limit: 1024 }
        );
        assert_eq!(read_line_capped(&mut r, 1024).unwrap(), LineRead::Eof);
        // The refusal the serve loop emits for such a line is valid JSON.
        let s = ServeSession::with_threads(1);
        let refusal = s.refuse_oversized_line(1024);
        assert!(refusal.contains("\"status\": \"malformed\""));
        assert!(crate::json::parse(&refusal).is_ok());
    }

    /// A [`BufRead`] replaying a script of chunks and injected errors,
    /// for driving [`CappedLineReader`] through timeout ticks at exact
    /// chunk boundaries.
    struct ScriptedReader {
        script: std::collections::VecDeque<std::io::Result<Vec<u8>>>,
        current: Vec<u8>,
        pos: usize,
    }

    impl ScriptedReader {
        fn new(script: Vec<std::io::Result<Vec<u8>>>) -> Self {
            ScriptedReader {
                script: script.into_iter().collect(),
                current: Vec::new(),
                pos: 0,
            }
        }
    }

    impl std::io::Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let chunk = self.fill_buf()?;
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            self.consume(n);
            Ok(n)
        }
    }

    impl std::io::BufRead for ScriptedReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.pos >= self.current.len() {
                match self.script.pop_front() {
                    Some(Ok(bytes)) => {
                        self.current = bytes;
                        self.pos = 0;
                    }
                    Some(Err(e)) => return Err(e),
                    None => return Ok(&[]),
                }
            }
            Ok(&self.current[self.pos..])
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn capped_reader_discard_state_survives_timeout_tick_at_chunk_boundary() {
        use std::io::{Error, ErrorKind};
        // An oversized line arrives in two chunks with a read-timeout
        // tick landing exactly on the boundary between them — i.e.
        // after the discarding reader consumed the first chunk in full,
        // with nothing buffered. The partial-discard state must survive
        // the tick: the line's tail must still be refused as TooLong,
        // never surfaced as a truncated Line.
        let cap = 8;
        let mut framer = CappedLineReader::new(
            ScriptedReader::new(vec![
                Ok(b"0123456789abcdef".to_vec()), // > cap, no newline yet
                Err(Error::new(ErrorKind::TimedOut, "tick")),
                Ok(b"tail\nnext\n".to_vec()),
            ]),
            cap,
        );
        assert_eq!(framer.poll_line().unwrap(), None, "tick yields no frame");
        assert_eq!(
            framer.poll_line().unwrap(),
            Some(LineRead::TooLong { limit: cap }),
            "discard state was lost across the timeout tick"
        );
        assert_eq!(
            framer.poll_line().unwrap(),
            Some(LineRead::Line("next".into())),
            "stream must resync after the refused line"
        );
        assert_eq!(framer.poll_line().unwrap(), Some(LineRead::Eof));

        // Same boundary condition at EOF: a tick, then the stream ends
        // mid-discard — still a refusal, not a phantom empty line.
        let mut framer = CappedLineReader::new(
            ScriptedReader::new(vec![
                Ok(b"0123456789abcdef".to_vec()),
                Err(Error::new(ErrorKind::TimedOut, "tick")),
            ]),
            cap,
        );
        assert_eq!(framer.poll_line().unwrap(), None);
        assert_eq!(
            framer.poll_line().unwrap(),
            Some(LineRead::TooLong { limit: cap })
        );
        assert_eq!(framer.poll_line().unwrap(), Some(LineRead::Eof));
    }

    #[test]
    fn view_flags_resolve_order_independently() {
        // Neither flag, or --views on alone: the default capacity.
        assert_eq!(resolve_view_flags(None, None), Ok(DEFAULT_MAX_VIEWS));
        assert_eq!(resolve_view_flags(Some(true), None), Ok(DEFAULT_MAX_VIEWS));
        // --views off alone disables maintenance.
        assert_eq!(resolve_view_flags(Some(false), None), Ok(0));
        // --max-views N sets the capacity, with or without --views on —
        // there is no order for the pure resolution to depend on.
        assert_eq!(resolve_view_flags(None, Some(4)), Ok(4));
        assert_eq!(resolve_view_flags(Some(true), Some(4)), Ok(4));
        // --max-views 0 is the historically ambiguous spelling: a typed
        // usage error pointing at --views off, in every combination.
        for views in [None, Some(true), Some(false)] {
            let err = resolve_view_flags(views, Some(0)).unwrap_err();
            assert!(err.contains("--views off"), "unhelpful error: {err}");
        }
        // --views off with an explicit positive capacity contradicts
        // itself and is refused rather than silently picking a winner.
        let err = resolve_view_flags(Some(false), Some(8)).unwrap_err();
        assert!(err.contains("contradicts"), "unhelpful error: {err}");
    }

    #[test]
    fn backend_names_resolve_like_flags() {
        assert_eq!(Backend::from_name("native"), Ok(Backend::Native));
        assert_eq!(Backend::from_name("sql"), Ok(Backend::Sql));
        let err = Backend::from_name("postgres").unwrap_err();
        assert!(
            err.contains("unknown backend") && err.contains("\"native\" or \"sql\""),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn sql_backend_answers_match_native() {
        let mut s = ServeSession::with_threads(2);
        let req = |backend: &str| {
            format!(
                r#"{{"ontology": "Manager sub Employee\nEmployee sub Staff", "query": "Staff", "abox": "Manager(ada)\nEmployee(grace)"{backend}}}"#
            )
        };
        let native = s.handle_line(&req(""));
        ok_field(&native, "\"status\": \"ok\"");
        ok_field(&native, "\"backend\": \"native\"");
        let sql = s.handle_line(&req(r#", "backend": "sql""#));
        ok_field(&sql, "\"status\": \"ok\"");
        ok_field(&sql, "\"backend\": \"sql\"");
        ok_field(&sql, r#"["ada"]"#);
        ok_field(&sql, r#"["grace"]"#);
        // Identical answer arrays on both backends.
        let answers = |r: &str| {
            let from = r.find("\"answers\": ").unwrap();
            r[from..r.find(", \"stats\"").unwrap()].to_string()
        };
        assert_eq!(answers(&native), answers(&sql));
        let totals = s.engine().stats();
        assert_eq!(totals.sql_compiles, 1);
        assert_eq!(totals.sql_refusals, 0);
        ok_field(&sql, "\"sql_compiles\": 1, \"sql_refusals\": 0");
        assert!(crate::json::parse(&sql).is_ok());
    }

    #[test]
    fn recursive_plan_gets_typed_sql_refusal() {
        let mut s = ServeSession::with_threads(1);
        // The existential role makes the emitted rewriting recursive:
        // SQL refuses, native still answers.
        let req = |backend: &str| {
            format!(
                r#"{{"id": "r", "ontology": "A sub ex R.B\nB sub C", "query": "C", "abox": "B(x)", "backend": "{backend}"}}"#
            )
        };
        let refused = s.handle_line(&req("sql"));
        ok_field(&refused, "\"status\": \"non-rewritable-to-sql\"");
        ok_field(&refused, "\"id\": \"r\"");
        ok_field(&refused, "recursive");
        assert!(crate::json::parse(&refused).is_ok());
        let native = s.handle_line(&req("native"));
        ok_field(&native, "\"status\": \"ok\"");
        ok_field(&native, r#"["x"]"#);
        let totals = s.engine().stats();
        assert_eq!(totals.sql_refusals, 1);
        assert_eq!(totals.sql_compiles, 0);
    }

    #[test]
    fn sql_backend_default_comes_from_config() {
        let mut s = ServeSession::with_config(ServeConfig {
            threads: 1,
            default_backend: Backend::Sql,
            ..ServeConfig::default()
        });
        let resp = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&resp, "\"backend\": \"sql\"");
        ok_field(&resp, r#"["x"]"#);
        // A per-request field overrides the session default.
        let resp = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)", "backend": "native"}"#,
        );
        ok_field(&resp, "\"backend\": \"native\"");
    }

    #[test]
    fn bad_backend_requests_are_typed_errors() {
        let mut s = ServeSession::with_threads(1);
        let base = r#""ontology": "A sub B", "query": "B", "abox": "A(x)""#;
        let unknown = s.handle_line(&format!(r#"{{{base}, "backend": "postgres"}}"#));
        ok_field(&unknown, "\"status\": \"error\"");
        ok_field(&unknown, "unknown backend");
        let wrong_type = s.handle_line(&format!(r#"{{{base}, "backend": 7}}"#));
        ok_field(&wrong_type, "must be \\\"native\\\" or \\\"sql\\\"");
        let with_cert = s.handle_line(&format!(
            r#"{{{base}, "backend": "sql", "certificate": true}}"#
        ));
        ok_field(&with_cert, "cannot attach certificates");
        let with_batch = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "aboxes": ["A(x)"], "backend": "sql"}"#,
        );
        ok_field(&with_batch, "cannot be combined with \\\"aboxes\\\"");
        let with_session = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "session": true, "backend": "sql"}"#,
        );
        ok_field(&with_session, "cannot be combined with \\\"session\\\"");
        // The session still answers afterwards.
        let good = s.handle_line(&format!(r#"{{{base}, "backend": "sql"}}"#));
        ok_field(&good, "\"status\": \"ok\"");
    }

    #[test]
    fn fragment_field_surfaces_classification() {
        let mut s = ServeSession::with_threads(1);
        let resp = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&resp, "\"fragment\": ");
        ok_field(&resp, "\"zone\": ");
        assert!(crate::json::parse(&resp).is_ok());
    }

    #[test]
    fn abox_constants_are_rolled_back_between_requests() {
        let mut s = ServeSession::with_threads(1);
        let baseline = {
            // Warm up the OMQ so only ABox constants vary below.
            s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(seed)"}"#);
            lock_recover(&s.shared.vocab).const_mark()
        };
        for i in 0..100 {
            let resp = s.handle_line(&format!(
                r#"{{"ontology": "A sub B", "query": "B", "abox": "A(fresh{i})"}}"#
            ));
            ok_field(&resp, &format!(r#"[["fresh{i}"]]"#));
        }
        assert_eq!(lock_recover(&s.shared.vocab).const_mark(), baseline);
    }
}
