//! The JSONL serving protocol: one request object per line in, one
//! response object per line out.
//!
//! Request shape (`abox` and `aboxes` are mutually exclusive):
//!
//! ```json
//! {"id": "r1",
//!  "ontology": "Manager sub Employee\nEmployee sub Staff",
//!  "query": "Staff",
//!  "abox": "Manager(ada)\nEmployee(grace)"}
//! ```
//!
//! Successful response:
//!
//! ```json
//! {"id": "r1", "status": "ok", "cached": false, "zone": "Dichotomy (Datalog!= = PTIME)",
//!  "answers": [["ada"], ["grace"]],
//!  "stats": {"compile_us": 412, "eval_us": 88, "rounds": 3, "derived": 6,
//!            "cache_hits": 0, "cache_misses": 1}}
//! ```
//!
//! With `"aboxes": ["...", "..."]` the response carries `"batches"` (one
//! answer array per ABox, evaluated concurrently) instead of
//! `"answers"`. Errors come back as
//! `{"id": ..., "status": "error", "error": "..."}` — the session never
//! dies on a bad line.

use crate::engine::Engine;
use crate::json::{self, Json};
use crate::plan::EngineError;
use gomq_core::{IndexedInstance, Term, Vocab};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A serving session: one engine, one vocabulary, shared by every
/// request on the connection.
pub struct ServeSession {
    engine: Engine,
    vocab: Vocab,
}

impl Default for ServeSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeSession {
    /// A session sized to the machine.
    pub fn new() -> Self {
        ServeSession {
            engine: Engine::new(),
            vocab: Vocab::new(),
        }
    }

    /// A session with an explicit worker budget.
    pub fn with_threads(threads: usize) -> Self {
        ServeSession {
            engine: Engine::with_threads(threads),
            vocab: Vocab::new(),
        }
    }

    /// The underlying engine (for statistics inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Handles one request line, returning one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        let (id, outcome) = self.dispatch(line);
        match outcome {
            Ok(body) => body,
            Err(e) => {
                let mut out = String::from("{");
                if let Some(id) = id {
                    out.push_str("\"id\": ");
                    json::write_str(&mut out, &id);
                    out.push_str(", ");
                }
                out.push_str("\"status\": \"error\", \"error\": ");
                json::write_str(&mut out, &format!("{e}"));
                out.push('}');
                out
            }
        }
    }

    fn dispatch(&mut self, line: &str) -> (Option<String>, Result<String, EngineError>) {
        let parsed =
            json::parse(line).map_err(|e| EngineError::BadRequest(format!("invalid JSON: {e}")));
        let obj = match parsed {
            Ok(Json::Obj(o)) => o,
            Ok(_) => {
                return (
                    None,
                    Err(EngineError::BadRequest(
                        "request must be a JSON object".into(),
                    )),
                )
            }
            Err(e) => return (None, Err(e)),
        };
        let id = obj.get("id").and_then(Json::as_str).map(str::to_owned);
        (id.clone(), self.run(&obj, id.as_deref()))
    }

    fn run(
        &mut self,
        obj: &std::collections::BTreeMap<String, Json>,
        id: Option<&str>,
    ) -> Result<String, EngineError> {
        let field = |name: &str| -> Result<&str, EngineError> {
            obj.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| EngineError::BadRequest(format!("missing string field \"{name}\"")))
        };
        let ontology_text = field("ontology")?;
        let query_name = field("query")?;
        let dl = parse_ontology(ontology_text, &mut self.vocab)
            .map_err(|e| EngineError::BadRequest(format!("ontology: {e}")))?;
        let o = to_gf(&dl);
        let query = self.vocab.find_rel(query_name).ok_or_else(|| {
            EngineError::BadRequest(format!(
                "query relation \"{query_name}\" does not occur in the ontology"
            ))
        })?;
        let (plan, cached, compile_elapsed) = self.engine.plan(&o, query, &mut self.vocab);
        self.engine.record_compile(compile_elapsed);
        let plan = plan?;

        // One ABox or a batch of ABoxes.
        let mut parse_abox = |text: &str| -> Result<IndexedInstance, EngineError> {
            let d = gomq_core::parse::parse_instance(text, &mut self.vocab)
                .map_err(|e| EngineError::BadRequest(format!("abox: {e}")))?;
            Ok(IndexedInstance::from_interpretation(&d))
        };
        let (payload, stats) = if let Some(texts) = obj.get("aboxes") {
            let texts = texts.as_arr().ok_or_else(|| {
                EngineError::BadRequest("\"aboxes\" must be an array of strings".into())
            })?;
            let mut aboxes = Vec::with_capacity(texts.len());
            for t in texts {
                aboxes.push(parse_abox(t.as_str().ok_or_else(|| {
                    EngineError::BadRequest("\"aboxes\" must be an array of strings".into())
                })?)?);
            }
            let (batches, stats) = self.engine.answer_batch(&plan, &aboxes);
            let mut payload = String::from("\"batches\": [");
            for (i, answers) in batches.iter().enumerate() {
                if i > 0 {
                    payload.push_str(", ");
                }
                self.write_answers(&mut payload, answers);
            }
            payload.push(']');
            (payload, stats)
        } else {
            let abox = parse_abox(field("abox")?)?;
            let (answers, stats) = self.engine.answer_indexed(&plan, &abox);
            let mut payload = String::from("\"answers\": ");
            self.write_answers(&mut payload, &answers);
            (payload, stats)
        };

        let mut out = String::from("{");
        if let Some(id) = id {
            out.push_str("\"id\": ");
            json::write_str(&mut out, id);
            out.push_str(", ");
        }
        out.push_str("\"status\": \"ok\", ");
        let _ = write!(out, "\"cached\": {cached}, ");
        out.push_str("\"zone\": ");
        json::write_str(&mut out, &format!("{}", plan.report.zone));
        out.push_str(", ");
        out.push_str(&payload);
        let _ = write!(
            out,
            ", \"stats\": {{\"compile_us\": {}, \"eval_us\": {}, \"rounds\": {}, \
             \"derived\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}}}",
            compile_elapsed.as_micros(),
            stats.eval.as_micros(),
            stats.rounds,
            stats.derived,
            self.engine.cache().hits(),
            self.engine.cache().misses(),
        );
        Ok(out)
    }

    fn write_answers(&self, out: &mut String, answers: &BTreeSet<Vec<Term>>) {
        out.push('[');
        for (i, tuple) in answers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, t) in tuple.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_str(out, &format!("{}", t.display(&self.vocab)));
            }
            out.push(']');
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_field<'a>(response: &'a str, needle: &str) -> &'a str {
        assert!(
            response.contains(needle),
            "expected {needle:?} in {response}"
        );
        response
    }

    #[test]
    fn single_abox_roundtrip() {
        let mut s = ServeSession::with_threads(2);
        let resp = s.handle_line(
            r#"{"id": "r1", "ontology": "Manager sub Employee\nEmployee sub Staff", "query": "Staff", "abox": "Manager(ada)\nEmployee(grace)"}"#,
        );
        ok_field(&resp, "\"status\": \"ok\"");
        ok_field(&resp, "\"id\": \"r1\"");
        ok_field(&resp, "\"cached\": false");
        ok_field(&resp, r#"["ada"]"#);
        ok_field(&resp, r#"["grace"]"#);
        // Same OMQ again: served from the cache.
        let resp2 = s.handle_line(
            r#"{"ontology": "Employee sub Staff\nManager sub Employee", "query": "Staff", "abox": "Manager(bob)"}"#,
        );
        ok_field(&resp2, "\"cached\": true");
        ok_field(&resp2, r#"["bob"]"#);
        ok_field(&resp2, "\"cache_hits\": 1");
        // Responses are valid JSON.
        assert!(crate::json::parse(&resp).is_ok());
        assert!(crate::json::parse(&resp2).is_ok());
    }

    #[test]
    fn batched_aboxes() {
        let mut s = ServeSession::with_threads(4);
        let resp = s.handle_line(
            r#"{"ontology": "A sub B", "query": "B", "aboxes": ["A(x)", "B(y)\nA(z)", ""]}"#,
        );
        ok_field(&resp, "\"batches\": ");
        ok_field(&resp, r#"[["x"]], [["y"], ["z"]], []"#);
        assert!(crate::json::parse(&resp).is_ok());
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = ServeSession::with_threads(1);
        let bad_json = s.handle_line("{nope");
        ok_field(&bad_json, "\"status\": \"error\"");
        let bad_query = s.handle_line(r#"{"ontology": "A sub B", "query": "Zzz", "abox": ""}"#);
        ok_field(&bad_query, "does not occur in the ontology");
        let bad_abox = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x"}"#);
        ok_field(&bad_abox, "\"status\": \"error\"");
        // The session still works afterwards.
        let good = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
        ok_field(&good, "\"status\": \"ok\"");
    }
}
