//! Compatibility shim: the native executor now lives in
//! [`crate::backend::native`].
//!
//! The PR that split compilation around the backend-agnostic
//! [`gomq_datalog::ir::PlanIr`] re-homed this module's contents as the
//! native backend. Everything is re-exported here so existing paths —
//! `gomq_engine::exec::{eval_strata, Strata}` and friends — keep
//! compiling unchanged.

pub use crate::backend::native::*;
