//! Stratified, indexed, parallel Datalog≠ evaluation.
//!
//! The one-shot evaluator in `gomq-datalog` re-runs every rule of the
//! program in every fixpoint round. This module:
//!
//! 1. partitions the program's rules into **SCC strata** of its
//!    dependency graph (head relation depends on body relations) and
//!    runs one semi-naive fixpoint per stratum in topological order, so
//!    rules whose inputs are already saturated are never revisited;
//! 2. evaluates against [`IndexedInstance`]s, so joins with a bound
//!    first argument probe a hash bucket instead of scanning;
//! 3. splits the rules of a stratum across a scoped worker pool within
//!    each round ([`std::thread::scope`] — no external dependencies),
//!    merging the per-worker derivations into the next delta.
//!
//! [`eval_program`] is answer-equivalent to [`Program::eval`]; the
//! property tests in `tests/engine_props.rs` check exactly that.

use gomq_core::{DeltaView, FactBuf, IndexedInstance, Instance, RelId, Term};
use gomq_datalog::eval::EvalStats;
use gomq_datalog::{derive_round, Budget, BudgetExceeded, Program, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// One SCC stratum: a rule partition plus whether it is recursive.
///
/// A non-recursive stratum (no rule's body mentions a head relation of
/// the same stratum) saturates in a single derivation pass — no
/// fixpoint iteration, no empty final round.
#[derive(Clone, Debug)]
pub struct Stratum {
    /// The rules of this stratum.
    pub rules: Vec<Rule>,
    /// Whether any rule's body depends on a head relation of this
    /// stratum (then a fixpoint loop is needed).
    pub recursive: bool,
}

/// Rules grouped into SCC strata in topological (bodies-first) order.
///
/// Computed once per compiled plan and reused for every instance the
/// plan is evaluated against.
#[derive(Clone, Debug)]
pub struct Strata {
    /// One rule partition per stratum, dependency order.
    pub strata: Vec<Stratum>,
}

impl Strata {
    /// Stratifies a program by the SCCs of its head-dependency graph.
    pub fn of(program: &Program) -> Strata {
        let idb: BTreeSet<RelId> = program.idb();
        // Dependency edges body-IDB-relation → head relation.
        let nodes: Vec<RelId> = idb.iter().copied().collect();
        let index_of: BTreeMap<RelId, usize> =
            nodes.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        for rule in &program.rules {
            let h = index_of[&rule.head.rel];
            for atom in rule.positive_atoms() {
                if let Some(&b) = index_of.get(&atom.rel) {
                    succ[b].insert(h);
                }
            }
        }
        let comp = scc(&succ);
        let n_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
        // Condensation edges + Kahn topological order.
        let mut cond_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_comps];
        let mut indegree = vec![0usize; n_comps];
        for (b, hs) in succ.iter().enumerate() {
            for &h in hs {
                let (cb, ch) = (comp[b], comp[h]);
                if cb != ch && cond_succ[cb].insert(ch) {
                    indegree[ch] += 1;
                }
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(n_comps);
        let mut queue: Vec<usize> = (0..n_comps).filter(|&c| indegree[c] == 0).collect();
        while let Some(c) = queue.pop() {
            order.push(c);
            for &d in &cond_succ[c] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        debug_assert_eq!(order.len(), n_comps, "condensation must be acyclic");
        let rank_of_comp: BTreeMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(rank, &c)| (c, rank))
            .collect();
        let mut buckets: Vec<Vec<Rule>> = vec![Vec::new(); n_comps];
        for rule in &program.rules {
            let c = comp[index_of[&rule.head.rel]];
            buckets[rank_of_comp[&c]].push(rule.clone());
        }
        let strata = buckets
            .into_iter()
            .filter(|rules| !rules.is_empty())
            .map(|rules| {
                let heads: BTreeSet<RelId> = rules.iter().map(|r| r.head.rel).collect();
                let recursive = rules
                    .iter()
                    .any(|r| r.positive_atoms().any(|a| heads.contains(&a.rel)));
                Stratum { rules, recursive }
            })
            .collect();
        Strata { strata }
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether there are no strata (empty program).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }
}

/// Iterative Tarjan SCC; returns the component id of every node.
fn scc(succ: &[BTreeSet<usize>]) -> Vec<usize> {
    let n = succ.len();
    let mut comp = vec![usize::MAX; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit DFS stack: (node, iterator position over successors).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let push = |v: usize,
                    dfs: &mut Vec<(usize, Vec<usize>, usize)>,
                    index: &mut Vec<usize>,
                    low: &mut Vec<usize>,
                    on_stack: &mut Vec<bool>,
                    stack: &mut Vec<usize>,
                    next_index: &mut usize| {
            index[v] = *next_index;
            low[v] = *next_index;
            *next_index += 1;
            stack.push(v);
            on_stack[v] = true;
            dfs.push((v, succ[v].iter().copied().collect(), 0));
        };
        push(
            root,
            &mut dfs,
            &mut index,
            &mut low,
            &mut on_stack,
            &mut stack,
            &mut next_index,
        );
        while let Some((v, children, pos)) = dfs.last_mut() {
            if *pos < children.len() {
                let w = children[*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    push(
                        w,
                        &mut dfs,
                        &mut index,
                        &mut low,
                        &mut on_stack,
                        &mut stack,
                        &mut next_index,
                    );
                } else if on_stack[w] {
                    let v = *v;
                    low[v] = low[v].min(index[w]);
                }
            } else {
                let v = *v;
                dfs.pop();
                if let Some((parent, _, _)) = dfs.last() {
                    low[*parent] = low[*parent].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Minimum number of delta facts per round before a round is worth
/// splitting across threads; below this the spawn overhead dominates.
const PARALLEL_DELTA_THRESHOLD: usize = 64;

/// One semi-naive round over `rules`, split across `threads` workers.
///
/// The round's delta is the id range of `total` past `frontier` (a
/// [`DeltaView`] — no delta set is materialized, let alone cloned);
/// staged head facts land in the columnar `out` buffer, per-worker
/// buffers being merged with bulk [`FactBuf::append`]s.
fn parallel_round(
    rules: &[Rule],
    total: &IndexedInstance,
    frontier: u32,
    threads: usize,
    out: &mut FactBuf,
) {
    let delta_len = total.len() - frontier as usize;
    let workers = threads.min(rules.len()).max(1);
    if workers == 1 || delta_len < PARALLEL_DELTA_THRESHOLD {
        derive_round(rules, total, &DeltaView::new(total, frontier), out);
        return;
    }
    let chunk_size = rules.len().div_ceil(workers);
    let chunks: Vec<&[Rule]> = rules.chunks(chunk_size).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut buf = FactBuf::new();
                    derive_round(chunk, total, &DeltaView::new(total, frontier), &mut buf);
                    buf
                })
            })
            .collect();
        for h in handles {
            // Re-raise worker panics on the calling thread so the serving
            // layer's catch_unwind isolates them per request.
            let mut buf = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            out.append(&mut buf);
        }
    });
}

/// Interns the staged facts into `total` (slice interning — the only
/// copy is the new facts' arguments landing in the arena) and returns
/// how many were new. The next round's delta is `total`'s id range past
/// the pre-absorb frontier.
fn absorb(staged: &FactBuf, total: &mut IndexedInstance) -> usize {
    let before = total.len();
    for f in staged.iter() {
        total.insert_ref(f.rel, f.args);
    }
    total.len() - before
}

/// Runs the semi-naive fixpoint of one stratum on top of `total`,
/// checking the cooperative budget between rounds.
fn fixpoint_stratum(
    stratum: &Stratum,
    total: &mut IndexedInstance,
    threads: usize,
    stats: &mut EvalStats,
    budget: &Budget,
) -> Result<(), BudgetExceeded> {
    budget.check(stats)?;
    // First pass: every fact so far is "new" for this stratum, so the
    // delta view starts at id 0 (the whole saturated total). The pass is
    // complete for the stratum's inputs because earlier strata are
    // already saturated.
    gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
    stats.rounds = stats.rounds.saturating_add(1);
    let mut staged = FactBuf::new();
    parallel_round(&stratum.rules, total, 0, threads, &mut staged);
    let mut frontier = total.len() as u32;
    stats.derived = stats.derived.saturating_add(absorb(&staged, total));
    if !stratum.recursive {
        // Heads never feed bodies within this stratum: one pass is the
        // fixpoint, skip the would-be-empty confirmation round.
        return Ok(());
    }
    while (frontier as usize) < total.len() {
        budget.check(stats)?;
        gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
        stats.rounds = stats.rounds.saturating_add(1);
        staged.clear();
        parallel_round(&stratum.rules, total, frontier, threads, &mut staged);
        frontier = total.len() as u32;
        stats.derived = stats.derived.saturating_add(absorb(&staged, total));
    }
    Ok(())
}

/// An answer set paired with its evaluation statistics.
pub type EvalOutcome = (BTreeSet<Vec<Term>>, EvalStats);

/// Evaluates `strata` (from `program`) over an indexed instance with up
/// to `threads` workers; returns the goal tuples and statistics.
///
/// Answer-equivalent to [`Program::eval`] on the corresponding plain
/// instance.
pub fn eval_strata(
    strata: &Strata,
    goal: RelId,
    d: &IndexedInstance,
    threads: usize,
) -> EvalOutcome {
    eval_strata_budgeted(strata, goal, d, threads, &Budget::UNLIMITED)
        .expect("the unlimited budget cannot be exceeded")
}

/// [`eval_strata`] under a cooperative resource [`Budget`]: rounds,
/// derived-fact fuel and the wall-clock deadline are checked between
/// rounds (a pathological request stops with [`BudgetExceeded`] instead
/// of monopolizing the session; the work done so far is discarded).
pub fn eval_strata_budgeted(
    strata: &Strata,
    goal: RelId,
    d: &IndexedInstance,
    threads: usize,
    budget: &Budget,
) -> Result<EvalOutcome, BudgetExceeded> {
    // Clones the EDB's store columns wholesale (no per-fact work); every
    // round then appends into this one arena.
    let mut total = d.clone();
    let mut stats = EvalStats::default();
    for stratum in &strata.strata {
        fixpoint_stratum(stratum, &mut total, threads, &mut stats, budget)?;
    }
    let answers = total.facts_of(goal).map(|f| f.args.to_vec()).collect();
    stats.store = total.store_stats();
    Ok((answers, stats))
}

/// Stratifies and evaluates `program` in one call (plan-less entry
/// point; `gomq-engine` plans cache the [`Strata`] instead).
pub fn eval_program(
    program: &Program,
    d: &IndexedInstance,
    threads: usize,
) -> (BTreeSet<Vec<Term>>, EvalStats) {
    eval_strata(&Strata::of(program), program.goal, d, threads)
}

/// Evaluates one stratified plan against many instances concurrently
/// (one instance per worker, work-stealing via an atomic cursor).
pub fn eval_batch(
    strata: &Strata,
    goal: RelId,
    aboxes: &[IndexedInstance],
    threads: usize,
) -> Vec<EvalOutcome> {
    eval_batch_budgeted(strata, goal, aboxes, threads, &Budget::UNLIMITED)
        .expect("the unlimited budget cannot be exceeded")
}

/// [`eval_batch`] under a cooperative [`Budget`]. Round and
/// derived-fact fuel apply *per ABox*; the deadline is shared wall
/// clock. The first exhausted ABox fails the whole batch (remaining
/// workers drain quickly: each checks the budget between rounds).
pub fn eval_batch_budgeted(
    strata: &Strata,
    goal: RelId,
    aboxes: &[IndexedInstance],
    threads: usize,
    budget: &Budget,
) -> Result<Vec<EvalOutcome>, BudgetExceeded> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let workers = threads.min(aboxes.len()).max(1);
    if workers <= 1 {
        return aboxes
            .iter()
            .map(|d| eval_strata_budgeted(strata, goal, d, threads, budget))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<EvalOutcome, BudgetExceeded>>>> =
        aboxes.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= aboxes.len() {
                    break;
                }
                // Each worker evaluates its instance single-threaded;
                // parallelism comes from the batch dimension here.
                let r = eval_strata_budgeted(strata, goal, &aboxes[i], 1, budget);
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot filled")
        })
        .collect()
}

/// Convenience: index a plain instance and evaluate (used by tests and
/// by callers that hold plain [`Instance`]s).
pub fn eval_plain(
    program: &Program,
    d: &Instance,
    threads: usize,
) -> (BTreeSet<Vec<Term>>, EvalStats) {
    eval_program(program, &IndexedInstance::from_interpretation(d), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::{Fact, Vocab};
    use gomq_datalog::{DAtom, DTerm, Literal};

    fn tc_program(v: &mut Vocab) -> Program {
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let s = v.rel("S", 2);
        let g = v.rel("goal", 2);
        Program::new(
            vec![
                Rule::new(
                    DAtom::vars(t, &[0, 1]),
                    vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
                ),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Pos(DAtom::vars(e, &[1, 2])),
                    ],
                ),
                // A second layer on top of T, so there are ≥ 3 strata.
                Rule::new(
                    DAtom::vars(s, &[0, 1]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                    ],
                ),
                Rule::new(
                    DAtom::vars(g, &[0, 1]),
                    vec![Literal::Pos(DAtom::vars(s, &[0, 1]))],
                ),
            ],
            g,
        )
    }

    fn cycle(v: &mut Vocab, n: usize) -> Instance {
        let e = v.rel("E", 2);
        let mut d = Instance::new();
        for i in 0..n {
            let a = v.constant(&format!("c{i}"));
            let b = v.constant(&format!("c{}", (i + 1) % n));
            d.insert(Fact::consts(e, &[a, b]));
        }
        d
    }

    #[test]
    fn strata_order_is_bodies_first() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let strata = Strata::of(&p);
        assert_eq!(strata.len(), 3);
        let t = v.rel("T", 2);
        let s = v.rel("S", 2);
        let g = v.rel("goal", 2);
        let heads: Vec<BTreeSet<RelId>> = strata
            .strata
            .iter()
            .map(|s| s.rules.iter().map(|r| r.head.rel).collect())
            .collect();
        assert_eq!(heads[0], [t].into_iter().collect());
        assert_eq!(heads[1], [s].into_iter().collect());
        assert_eq!(heads[2], [g].into_iter().collect());
    }

    #[test]
    fn stratified_matches_one_shot() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = cycle(&mut v, 7);
        let expected = p.eval(&d);
        for threads in [1, 4] {
            let (got, stats) = eval_plain(&p, &d, threads);
            assert_eq!(got, expected, "threads = {threads}");
            assert!(stats.rounds >= 3);
        }
        assert_eq!(expected.len(), 7 * 6);
    }

    #[test]
    fn batch_matches_individual_evaluation() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let strata = Strata::of(&p);
        let aboxes: Vec<IndexedInstance> = (3..9)
            .map(|n| IndexedInstance::from_interpretation(&cycle(&mut v, n)))
            .collect();
        let batch = eval_batch(&strata, p.goal, &aboxes, 4);
        assert_eq!(batch.len(), aboxes.len());
        for (i, d) in aboxes.iter().enumerate() {
            let (individual, _) = eval_strata(&strata, p.goal, d, 1);
            assert_eq!(batch[i].0, individual, "abox {i}");
        }
    }

    #[test]
    fn empty_program_and_goal_edb_facts() {
        let mut v = Vocab::new();
        let g = v.rel("goal", 1);
        let p = Program::new(vec![], g);
        let a = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(g, &[a]));
        // Goal facts already in the EDB are answers, as in Program::eval.
        let (ans, _) = eval_plain(&p, &d, 2);
        assert_eq!(ans, p.eval(&d));
        assert_eq!(ans.len(), 1);
    }
}
