//! The TCP serving front end: a multi-connection JSONL listener over
//! the same request core as stdin mode.
//!
//! ## Architecture
//!
//! ```text
//!             accept loop (nonblocking, polls the DrainToken)
//!                  │  admission: global + per-IP connection caps
//!                  ▼
//!   one I/O thread per connection ──────────────┐
//!     capped JSONL framing (CappedLineReader,   │ handle_connection
//!     read-timeout ticks → drain/idle checks)   │ (crate::serve)
//!                  │ submit line                ▼
//!        bounded worker pool (backpressure queue; full ⇒ typed
//!        {"status": "overloaded", "limit": "queue"} refusal)
//!                  │
//!        N workers, each a ServeSession over one shared
//!        Arc<ServeShared> (plan cache, vocab, durable session)
//! ```
//!
//! A connection's requests are answered strictly in order: the I/O
//! thread submits one line at a time and blocks for its response, so
//! JSONL pipelining works exactly as it does over stdin. Concurrency
//! comes from connections, capped by the worker pool — when every
//! worker is busy and the queue is full, requests are refused
//! *immediately* with the same `"overloaded"` shape a blown budget
//! produces, instead of queueing without bound.
//!
//! ## Graceful drain
//!
//! When the [`DrainToken`] trips (SIGTERM/SIGINT or programmatic), the
//! listener stops accepting, every connection finishes the request it
//! is serving (queued requests included — the pool drains its queue
//! before workers exit) and closes, and the durable session is flushed:
//! WAL fsync, then a final snapshot
//! ([`ServeShared::drain_persist`]), so a deploy-time restart recovers
//! from the snapshot alone. Connections that ignore the drain longer
//! than [`NetConfig::drain_timeout`] are abandoned (the process is
//! exiting); everything they had acknowledged is already in the WAL.

use crate::drain::DrainToken;
use crate::json::{self, Json};
use crate::serve::{handle_connection, ConnControl, ServeSession, ServeShared};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the TCP front end (the serve core itself is
/// configured by [`crate::ServeConfig`]).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Worker threads executing requests (each owns a [`ServeSession`]
    /// over the shared state).
    pub workers: usize,
    /// Backpressure bound: requests queued (not yet picked up by a
    /// worker) beyond this are refused with `"limit": "queue"`.
    pub queue_depth: usize,
    /// Global cap on simultaneously open connections.
    pub max_conns: usize,
    /// Per-peer-IP cap on simultaneously open connections.
    pub max_conns_per_ip: usize,
    /// Hang up on a connection idle (no complete request) this long.
    /// `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// How long a drain waits for open connections to finish their
    /// in-flight requests before abandoning them.
    pub drain_timeout: Duration,
    /// Socket read timeout — the tick at which connection threads
    /// re-check the drain flag and idle deadline.
    pub poll_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        NetConfig {
            workers: cores,
            queue_depth: (cores * 16).max(64),
            max_conns: 1024,
            max_conns_per_ip: 1024,
            idle_timeout: None,
            drain_timeout: Duration::from_millis(5_000),
            poll_interval: Duration::from_millis(100),
        }
    }
}

/// What a completed [`NetServer::serve`] run did.
#[derive(Clone, Debug)]
pub struct NetReport {
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: u64,
    /// Connections refused at accept time (connection caps).
    pub conns_refused: u64,
    /// Whether the run ended in a graceful drain (currently the only
    /// exit; kept explicit for future listener-error exits).
    pub drained: bool,
    /// Whether some connections outlived [`NetConfig::drain_timeout`]
    /// and were abandoned.
    pub drain_timed_out: bool,
    /// Whether the drain cut a final snapshot (`false` for in-memory
    /// sessions or if the flush failed — the WAL still has everything).
    pub final_snapshot: bool,
}

/// A bound TCP listener, ready to serve. Binding is separate from
/// serving so callers can learn the actual address first (`--listen
/// 127.0.0.1:0` binds an ephemeral port).
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl NetServer {
    /// Binds `addr` (any `ToSocketAddrs` string, e.g. `"127.0.0.1:7401"`).
    pub fn bind(addr: &str) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(NetServer { listener, addr })
    }

    /// The actually bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop until `drain` trips, then drains: stop
    /// accepting, finish in-flight requests, flush the durable session.
    /// Blocks the calling thread for the server's whole lifetime.
    pub fn serve(
        self,
        shared: Arc<ServeShared>,
        config: NetConfig,
        drain: DrainToken,
    ) -> std::io::Result<NetReport> {
        let config = Arc::new(sanitize(config));
        self.listener.set_nonblocking(true)?;
        let pool = Pool::start(shared.clone(), &config);
        let conns = Arc::new(ConnTable::default());
        let mut accepted = 0u64;
        let mut refused = 0u64;
        let mut accept_errors = 0u32;

        while !drain.is_draining() {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    accept_errors = 0;
                    if conns.try_admit(peer.ip(), &config) {
                        accepted += 1;
                        shared.engine().record_conn_open();
                        spawn_connection(
                            stream,
                            peer,
                            shared.clone(),
                            pool.clone(),
                            conns.clone(),
                            config.clone(),
                            drain.clone(),
                        );
                    } else {
                        refused += 1;
                        shared.engine().record_conn_refused();
                        refuse_connection(stream, config.max_conns);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.poll_interval.min(Duration::from_millis(50)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures (EMFILE under a conn
                    // flood) must not kill the server; a persistent
                    // failure streak must not spin it either.
                    accept_errors += 1;
                    if accept_errors >= 100 {
                        return Err(e);
                    }
                    std::thread::sleep(config.poll_interval);
                }
            }
        }
        drop(self.listener); // stop the kernel accepting more

        // Connections notice the drain within one poll tick and close
        // once their in-flight request (if any) is answered.
        let drain_timed_out = !conns.wait_empty(config.drain_timeout);
        // Closing the pool lets workers exit after the queue is empty;
        // queued jobs of abandoned stragglers still complete first, so
        // joining is safe unless we timed out (a stuck evaluation could
        // block forever — the process is exiting anyway).
        pool.close();
        if !drain_timed_out {
            pool.join();
        }
        let final_snapshot = shared.drain_persist().unwrap_or(false);
        Ok(NetReport {
            conns_accepted: accepted,
            conns_refused: refused,
            drained: true,
            drain_timed_out,
            final_snapshot,
        })
    }
}

/// Clamps nonsensical zero-valued knobs to their working minima.
fn sanitize(mut c: NetConfig) -> NetConfig {
    c.workers = c.workers.max(1);
    c.queue_depth = c.queue_depth.max(1);
    c.max_conns = c.max_conns.max(1);
    c.max_conns_per_ip = c.max_conns_per_ip.max(1);
    if c.poll_interval.is_zero() {
        c.poll_interval = Duration::from_millis(100);
    }
    c
}

/// Writes the one-line admission refusal and hangs up.
fn refuse_connection(stream: TcpStream, max_conns: usize) {
    let mut out = String::from("{\"status\": \"overloaded\", \"error\": ");
    json::write_str(
        &mut out,
        &format!("connection limit reached ({max_conns} allowed)"),
    );
    out.push_str(", \"limit\": \"conns\"}");
    let mut stream = stream;
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

// ---- connection accounting ----

#[derive(Default)]
struct ConnTableInner {
    active: usize,
    per_ip: HashMap<IpAddr, usize>,
}

/// Active-connection registry: admission caps plus the condition the
/// drain waits on.
#[derive(Default)]
struct ConnTable {
    inner: Mutex<ConnTableInner>,
    emptied: Condvar,
}

impl ConnTable {
    /// Admits the connection unless a cap is hit; on admit the caller
    /// *must* pair with [`ConnTable::release`].
    fn try_admit(&self, ip: IpAddr, config: &NetConfig) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let per_ip = inner.per_ip.get(&ip).copied().unwrap_or(0);
        if inner.active >= config.max_conns || per_ip >= config.max_conns_per_ip {
            return false;
        }
        inner.active += 1;
        *inner.per_ip.entry(ip).or_insert(0) += 1;
        true
    }

    fn release(&self, ip: IpAddr) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.active = inner.active.saturating_sub(1);
        // Zero-count entries are dropped, not kept: the map must not
        // accumulate an entry per IP ever seen for the life of the
        // process. The decrement saturates for the same reason the
        // active count does — an unpaired release (a bug upstream)
        // must skew accounting, never panic the accept loop.
        if let Some(n) = inner.per_ip.get_mut(&ip) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inner.per_ip.remove(&ip);
            }
        }
        if inner.active == 0 {
            self.emptied.notify_all();
        }
    }

    /// Per-IP map entries currently tracked (tests: pruning invariant).
    #[cfg(test)]
    fn tracked_ips(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .per_ip
            .len()
    }

    /// Waits until no connection is active; `false` on timeout.
    fn wait_empty(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while inner.active > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .emptied
                .wait_timeout(inner, left)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
        true
    }
}

// ---- the bounded worker pool ----

/// One request handed to the pool; the submitting connection thread
/// blocks on `reply`.
struct Job {
    line: String,
    reply: Arc<Reply>,
}

/// A one-shot response slot.
#[derive(Default)]
struct Reply {
    slot: Mutex<Option<String>>,
    ready: Condvar,
}

impl Reply {
    fn put(&self, response: String) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> String {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct PoolInner {
    jobs: VecDeque<Job>,
    executing: usize,
    closing: bool,
}

/// The bounded worker pool: a queue with a hard depth cap, drained by
/// `workers` threads each owning a [`ServeSession`].
struct Pool {
    inner: Mutex<PoolInner>,
    work: Condvar,
    depth: usize,
    shared: Arc<ServeShared>,
}

enum Submit {
    /// The job was queued; wait on the reply.
    Queued(Arc<Reply>),
    /// The queue is at capacity — refuse with `"limit": "queue"`.
    Full,
    /// The pool is shutting down (only reachable from a connection
    /// abandoned past the drain timeout).
    Closing,
}

impl Pool {
    fn start(shared: Arc<ServeShared>, config: &NetConfig) -> Arc<PoolHandle> {
        let pool = Arc::new(Pool {
            inner: Mutex::new(PoolInner {
                jobs: VecDeque::new(),
                executing: 0,
                closing: false,
            }),
            work: Condvar::new(),
            depth: config.queue_depth,
            shared,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let pool = pool.clone();
                std::thread::Builder::new()
                    .name(format!("gomq-worker-{i}"))
                    .spawn(move || pool.worker_loop())
                    .expect("spawn worker thread")
            })
            .collect();
        Arc::new(PoolHandle {
            pool,
            workers: Mutex::new(workers),
        })
    }

    fn submit(&self, line: String) -> Submit {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closing {
            return Submit::Closing;
        }
        if inner.jobs.len() >= self.depth {
            drop(inner);
            self.shared.engine().record_queue_reject();
            return Submit::Full;
        }
        let reply = Arc::new(Reply::default());
        inner.jobs.push_back(Job {
            line,
            reply: reply.clone(),
        });
        let depth = (inner.jobs.len() + inner.executing) as u64;
        drop(inner);
        self.shared.engine().record_queue_depth(depth);
        self.work.notify_one();
        Submit::Queued(reply)
    }

    fn worker_loop(&self) {
        let mut session = ServeSession::with_shared(self.shared.clone());
        loop {
            let job = {
                let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = inner.jobs.pop_front() {
                        inner.executing += 1;
                        break job;
                    }
                    if inner.closing {
                        return;
                    }
                    inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
            };
            // handle_line never panics (its catch_unwind fence turns
            // panics into structured errors), so the reply always lands
            // and the submitter can never deadlock.
            let response = session.handle_line(&job.line);
            job.reply.put(response);
            let depth = {
                let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.executing -= 1;
                (inner.jobs.len() + inner.executing) as u64
            };
            self.shared.engine().record_queue_depth(depth);
        }
    }
}

/// The pool plus its worker join handles.
struct PoolHandle {
    pool: Arc<Pool>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl PoolHandle {
    fn submit(&self, line: String) -> Submit {
        self.pool.submit(line)
    }

    /// Lets workers exit once the queue is empty (queued jobs still
    /// complete first).
    fn close(&self) {
        self.pool
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .closing = true;
        self.pool.work.notify_all();
    }

    fn join(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---- per-connection I/O threads ----

fn spawn_connection(
    stream: TcpStream,
    peer: SocketAddr,
    shared: Arc<ServeShared>,
    pool: Arc<PoolHandle>,
    conns: Arc<ConnTable>,
    config: Arc<NetConfig>,
    drain: DrainToken,
) {
    let shared2 = shared.clone();
    let conns2 = conns.clone();
    let spawned = std::thread::Builder::new()
        .name("gomq-conn".to_owned())
        .spawn(move || {
            run_connection(&stream, shared.clone(), &pool, &config, drain);
            shared.engine().record_conn_close();
            conns.release(peer.ip());
        });
    if spawned.is_err() {
        // Thread exhaustion: the closure never ran, so undo the
        // admission accounting the accept loop already recorded.
        shared2.engine().record_conn_close();
        conns2.release(peer.ip());
    }
}

fn run_connection(
    stream: &TcpStream,
    shared: Arc<ServeShared>,
    pool: &PoolHandle,
    config: &NetConfig,
    drain: DrainToken,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.poll_interval)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let control = ConnControl {
        draining: Some(drain),
        idle_timeout: config.idle_timeout,
    };
    let max_line = shared.max_line_bytes();
    handle_connection(
        BufReader::new(read_half),
        BufWriter::new(stream),
        max_line,
        &control,
        |line| match pool.submit(line.to_owned()) {
            Submit::Queued(reply) => reply.wait(),
            Submit::Full => refuse_queue_full(line),
            Submit::Closing => refuse_draining(line),
        },
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Best-effort request-id extraction for refusals produced without
/// running the request (the line did parse as JSON or we echo nothing).
fn echo_id(line: &str) -> String {
    match json::parse(line) {
        Ok(Json::Obj(o)) => match o.get("id").and_then(Json::as_str) {
            Some(id) => {
                let mut out = String::from("\"id\": ");
                json::write_str(&mut out, id);
                out.push_str(", ");
                out
            }
            None => String::new(),
        },
        _ => String::new(),
    }
}

/// The typed backpressure refusal, mirroring the budget-exhaustion
/// answer shape: `"status": "overloaded"` plus a `"limit"` tag.
fn refuse_queue_full(line: &str) -> String {
    format!(
        "{{{}\"status\": \"overloaded\", \"error\": \"server overloaded: the worker queue is full\", \"limit\": \"queue\"}}",
        echo_id(line)
    )
}

/// Refusal for a request submitted after the pool began shutting down.
fn refuse_draining(line: &str) -> String {
    format!(
        "{{{}\"status\": \"overloaded\", \"error\": \"server is draining\", \"limit\": \"queue\"}}",
        echo_id(line)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ServeConfig;
    use std::io::{BufRead, Write};

    #[test]
    fn conn_table_prunes_departed_ips() {
        let table = ConnTable::default();
        let config = NetConfig::default();
        let ips: Vec<IpAddr> = (0..16u8)
            .map(|i| IpAddr::from([127, 0, 0, i + 1]))
            .collect();
        for ip in &ips {
            assert!(table.try_admit(*ip, &config));
            assert!(table.try_admit(*ip, &config));
        }
        assert_eq!(table.tracked_ips(), ips.len());
        // One of two connections per IP closes: entries must survive.
        for ip in &ips {
            table.release(*ip);
        }
        assert_eq!(table.tracked_ips(), ips.len());
        // The last connection per IP closes: the entry must go with it,
        // not accumulate for the life of the process.
        for ip in &ips {
            table.release(*ip);
        }
        assert_eq!(table.tracked_ips(), 0);
        assert!(table.wait_empty(Duration::from_millis(10)));
        // A departed IP admits again from a clean slate.
        assert!(table.try_admit(ips[0], &config));
        assert_eq!(table.tracked_ips(), 1);
        table.release(ips[0]);
        assert_eq!(table.tracked_ips(), 0);
    }

    #[test]
    fn conn_table_release_tolerates_unpaired_calls() {
        let table = ConnTable::default();
        let config = NetConfig::default();
        let ip = IpAddr::from([127, 0, 0, 1]);
        assert!(table.try_admit(ip, &config));
        table.release(ip);
        // An unpaired release (upstream bug) must not panic or
        // resurrect the entry.
        table.release(ip);
        assert_eq!(table.tracked_ips(), 0);
        assert!(table.try_admit(ip, &config));
    }

    fn start_server(
        config: NetConfig,
    ) -> (SocketAddr, DrainToken, std::thread::JoinHandle<NetReport>) {
        let shared = Arc::new(ServeShared::with_config(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        }));
        let server = NetServer::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        let drain = DrainToken::new();
        let drain2 = drain.clone();
        let handle = std::thread::spawn(move || {
            server
                .serve(shared, config, drain2)
                .expect("serve loop failed")
        });
        (addr, drain, handle)
    }

    fn request(stream: &mut TcpStream, line: &str) -> String {
        writeln!(stream, "{line}").expect("send");
        stream.flush().expect("flush");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        response.trim_end().to_owned()
    }

    #[test]
    fn tcp_roundtrip_and_drain() {
        let config = NetConfig {
            workers: 2,
            poll_interval: Duration::from_millis(20),
            drain_timeout: Duration::from_millis(2_000),
            ..NetConfig::default()
        };
        let (addr, drain, handle) = start_server(config);
        let mut c1 = TcpStream::connect(addr).expect("connect");
        let mut c2 = TcpStream::connect(addr).expect("connect");
        let r1 = request(
            &mut c1,
            r#"{"id": "n1", "ontology": "A sub B", "query": "B", "abox": "A(x)"}"#,
        );
        assert!(r1.contains("\"status\": \"ok\""), "{r1}");
        assert!(r1.contains(r#"[["x"]]"#), "{r1}");
        assert!(r1.contains("\"conns_accepted\": 2"), "{r1}");
        // The second connection shares the plan cache.
        let r2 = request(
            &mut c2,
            r#"{"id": "n2", "ontology": "A sub B", "query": "B", "abox": "A(y)"}"#,
        );
        assert!(r2.contains("\"cached\": true"), "{r2}");
        assert!(crate::json::parse(&r1).is_ok() && crate::json::parse(&r2).is_ok());
        drain.trigger();
        let report = handle.join().expect("server thread");
        assert!(report.drained);
        assert!(!report.drain_timed_out);
        assert_eq!(report.conns_accepted, 2);
        // Drained connections are closed server-side.
        let mut end = String::new();
        BufReader::new(&mut c1).read_line(&mut end).expect("eof");
        assert!(end.is_empty(), "expected EOF after drain, got {end}");
    }

    #[test]
    fn connection_cap_refuses_with_typed_line() {
        let config = NetConfig {
            workers: 1,
            max_conns: 1,
            poll_interval: Duration::from_millis(20),
            drain_timeout: Duration::from_millis(1_000),
            ..NetConfig::default()
        };
        let (addr, drain, handle) = start_server(config);
        let mut keeper = TcpStream::connect(addr).expect("connect");
        // Prove the first connection is admitted before racing a second.
        let ok = request(
            &mut keeper,
            r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#,
        );
        assert!(ok.contains("\"status\": \"ok\""), "{ok}");
        let mut refused = TcpStream::connect(addr).expect("connect");
        let mut line = String::new();
        BufReader::new(&mut refused)
            .read_line(&mut line)
            .expect("refusal line");
        assert!(line.contains("\"limit\": \"conns\""), "{line}");
        assert!(crate::json::parse(line.trim_end()).is_ok(), "{line}");
        drain.trigger();
        let report = handle.join().expect("server thread");
        assert_eq!(report.conns_refused, 1);
    }
}
