//! Graceful-shutdown signaling for the serving front ends.
//!
//! A [`DrainToken`] is a cheap, cloneable flag shared by the accept
//! loop, every connection thread, and the worker pool. Once it trips —
//! programmatically via [`DrainToken::trigger`], or by SIGTERM/SIGINT
//! when the token was built with [`DrainToken::with_signals`] — the
//! server stops accepting connections and reading new requests, finishes
//! every request already in flight, flushes the durable session (WAL
//! fsync + final snapshot, [`crate::ServeShared::drain_persist`]), and
//! exits. That is the deploy contract: a SIGTERM'd server loses nothing
//! it acknowledged and restarts from a fresh snapshot.
//!
//! Signal handling is deliberately primitive: the handler only stores to
//! a process-wide atomic (the only async-signal-safe thing it could do),
//! and the serving loops *poll* that atomic on their existing read/accept
//! timeout ticks, so no self-pipe or signal-dedicated thread is needed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the SIGTERM/SIGINT handler; merged into every token built
/// with [`DrainToken::with_signals`].
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// A shared "start draining" flag. Clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct DrainToken {
    flag: Arc<AtomicBool>,
    follow_signals: bool,
}

impl DrainToken {
    /// A token that only trips programmatically.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally trips on SIGTERM or SIGINT. Installing
    /// the handlers is idempotent; on non-Unix platforms the token
    /// behaves like [`DrainToken::new`].
    pub fn with_signals() -> std::io::Result<Self> {
        install_signal_handlers()?;
        Ok(DrainToken {
            flag: Arc::new(AtomicBool::new(false)),
            follow_signals: true,
        })
    }

    /// Trips the flag: every clone starts draining.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested (by any clone or, for
    /// signal-following tokens, by SIGTERM/SIGINT).
    pub fn is_draining(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
            || (self.follow_signals && SIGNAL_DRAIN.load(Ordering::SeqCst))
    }
}

#[cfg(unix)]
fn install_signal_handlers() -> std::io::Result<()> {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// The libc `sighandler_t`; `SIG_ERR` is `(sighandler_t) -1`.
    type RawHandler = usize;
    extern "C" {
        // std links the platform libc already; declaring the symbol
        // avoids depending on the `libc` crate for two constants and
        // one call.
        fn signal(signum: i32, handler: RawHandler) -> RawHandler;
    }
    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    for sig in [SIGTERM, SIGINT] {
        let prev = unsafe { signal(sig, on_signal as *const () as RawHandler) };
        if prev == usize::MAX {
            return Err(std::io::Error::last_os_error());
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn install_signal_handlers() -> std::io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let t = DrainToken::new();
        let clone = t.clone();
        assert!(!t.is_draining());
        assert!(!clone.is_draining());
        clone.trigger();
        assert!(t.is_draining());
        // Independent tokens are unaffected.
        assert!(!DrainToken::new().is_draining());
    }
}
