//! Crash-consistent session state: a fact store with rollback marks,
//! optionally backed by a write-ahead log and periodic snapshots.
//!
//! A serving session accumulates ABox state across requests via three
//! mutations — `assert` (a batch of facts), `mark` (a rollback point)
//! and `rollback` (truncate back to a mark). [`DurableSession`] applies
//! each mutation only *after* journaling it to the [`Wal`], so a crash
//! at any instant loses at most the unacknowledged record; restart with
//! the same data directory rebuilds the exact pre-crash store
//! ([`DurableSession::open`]): same [`gomq_core::FactId`]s, same
//! answers, torn final record tolerated.
//!
//! ## Snapshots
//!
//! Every `snapshot_every` journaled records the session dumps itself to
//! `snapshot.bin` (columnar store dump plus the interned symbol tables,
//! checksummed, written via temp-file + atomic rename) and truncates the
//! WAL. Recovery restores the snapshot, then replays only WAL records
//! with an lsn above the snapshot's — which also covers a crash between
//! the snapshot rename and the WAL truncation.

use crate::wal::{put_str, put_u32, put_u64, Cursor, SymFact, SymTerm, Wal, WalRecord};
use gomq_core::{Fact, FactStore, IndexedInstance, NullId, RelId, Term, Vocab};
use gomq_datalog::{Budget, Materialization};
use gomq_rewriting::fnv1a;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of `snapshot.bin`.
const SNAP_MAGIC: &[u8; 8] = b"GOMQSNAP";
/// Snapshot format version. Version 2 added the replication epoch;
/// version-1 snapshots are still read (epoch 0).
const SNAP_VERSION: u32 = 2;
/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// WAL file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";

/// A session-persistence failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// An I/O failure (real or injected). The mutation was rolled back
    /// and was *not* applied; the session stays serviceable.
    Io(String),
    /// The snapshot or log is damaged beyond the tolerated torn tail.
    Corrupt(String),
    /// A rollback named a mark that does not exist (or was invalidated
    /// by an earlier rollback).
    UnknownMark(u64),
    /// An earlier failure left the log tail in an unknown state; every
    /// further mutation is refused (queries still work).
    Poisoned(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session I/O failure: {e}"),
            SessionError::Corrupt(e) => write!(f, "session data corrupt: {e}"),
            SessionError::UnknownMark(id) => write!(f, "unknown mark {id}"),
            SessionError::Poisoned(e) => {
                write!(f, "session persistence poisoned by an earlier failure: {e}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What recovery found in the data directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryInfo {
    /// Facts restored from the snapshot.
    pub snapshot_facts: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Facts asserted by the replayed records.
    pub replayed_facts: u64,
    /// Whether a torn/corrupt WAL tail was truncated.
    pub truncated_tail: bool,
}

/// Outcome of one acknowledged mutation.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutationInfo {
    /// Log sequence number of the journaled record (0 when in-memory).
    pub lsn: u64,
    /// Frame bytes appended to the WAL (0 when in-memory).
    pub wal_bytes: u64,
    /// New facts added by an assert (0 for mark/rollback).
    pub added: u64,
    /// Session store size after the mutation.
    pub facts: u64,
    /// Whether this mutation triggered a snapshot.
    pub snapshotted: bool,
}

/// The in-memory half: the session's fact store plus rollback marks.
///
/// The store sits behind an [`Arc`] so a query can snapshot it with a
/// reference-count bump instead of deep-copying the fact columns; only
/// mutations pay for isolation, via [`Arc::make_mut`] copy-on-write
/// (which copies nothing while no reader holds a snapshot).
#[derive(Default)]
struct SessionStore {
    facts: Arc<IndexedInstance>,
    /// Mark id → store length at mark time.
    marks: HashMap<u64, usize>,
    next_mark: u64,
}

impl SessionStore {
    fn apply_assert<'a>(&mut self, facts: impl IntoIterator<Item = &'a Fact>) -> u64 {
        let store = Arc::make_mut(&mut self.facts);
        let mut added = 0u64;
        for f in facts {
            if store.insert_ref(f.rel, &f.args) {
                added += 1;
            }
        }
        added
    }

    fn apply_mark(&mut self, id: u64) {
        self.marks.insert(id, self.facts.len());
        self.next_mark = self.next_mark.max(id + 1);
    }

    fn apply_rollback(&mut self, id: u64) -> Result<(), SessionError> {
        let Some(&target) = self.marks.get(&id) else {
            return Err(SessionError::UnknownMark(id));
        };
        Arc::make_mut(&mut self.facts).truncate(target);
        // Marks taken after the restored point now dangle past the end;
        // the mark rolled back to stays valid (its length == target).
        self.marks.retain(|_, len| *len <= target);
        Ok(())
    }
}

/// Default number of maintained views kept per session.
pub const DEFAULT_MAX_VIEWS: usize = 8;

/// Aggregate outcome of maintaining every registered view through one
/// session rollback ([`DurableSession::maintain_views_rollback`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ViewMaintenance {
    /// Facts overcount-deleted across all views (DRed delete phase).
    pub deleted: u64,
    /// Facts rederived across all views (DRed rederive phase).
    pub rederived: u64,
    /// Views dropped because maintenance blew its budget.
    pub over_budget: u64,
    /// Views dropped because maintenance panicked (the panic is
    /// contained here; the session store itself was never touched).
    pub panicked: u64,
}

/// One registered materialized view plus its LRU recency stamp.
struct ViewSlot {
    view: Materialization,
    last_used: u64,
}

/// Plan-keyed registry of maintained session materializations, LRU-
/// capped like the plan cache.
///
/// Views are checked *out* for maintenance ([`ViewRegistry::take`]) and
/// re-registered afterwards ([`ViewRegistry::put`]), so the session
/// lock is never held across a sync. The registry's `epoch` is bumped
/// by every session rollback; `put` refuses a view checked out under an
/// older epoch — a view that raced a rollback is silently dropped
/// rather than re-registered stale (the next query rebuilds it).
///
/// Views never outlive the process: recovery (snapshot restore + WAL
/// replay) starts with an empty registry, and because replay re-interns
/// symbolic facts deterministically — same [`gomq_core::FactId`]s, same
/// iteration order — a view rebuilt after recovery produces answers
/// byte-identical to the pre-crash ones.
pub struct ViewRegistry {
    views: HashMap<u64, ViewSlot>,
    cap: usize,
    tick: u64,
    evicted: u64,
    epoch: u64,
}

impl Default for ViewRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_VIEWS)
    }
}

impl ViewRegistry {
    /// An empty registry holding at most `cap` views (0 disables
    /// maintenance: `take` always misses and `put` always discards).
    pub fn new(cap: usize) -> Self {
        ViewRegistry {
            views: HashMap::new(),
            cap,
            tick: 0,
            evicted: 0,
            epoch: 0,
        }
    }

    /// Whether maintained views are enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Changes the capacity, evicting LRU views if it shrank. Views
    /// dropped by the change count in [`ViewRegistry::evicted`].
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        if cap == 0 {
            self.evicted += self.views.len() as u64;
            self.views.clear();
        } else {
            self.shrink_to_cap();
        }
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Views dropped so far, for *any* reason: the LRU cap, a
    /// stale-epoch re-registration refused after a rollback, failed
    /// maintenance, a capacity change, or an externally noted drop
    /// ([`ViewRegistry::note_dropped`]). The counter is authoritative
    /// for the engine's `views_evicted` total — every path a checked-
    /// out or registered view can die on must land here, or the
    /// cumulative block drifts from what actually happened.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Counts views that died outside the registry (a failed sync
    /// consumed one, or a non-recording view was discarded to rebuild
    /// with derivation recording).
    pub fn note_dropped(&mut self, n: u64) {
        self.evicted = self.evicted.saturating_add(n);
    }

    /// The current epoch (bumped by every session rollback).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Checks the view for `key` out of the registry (the caller owns
    /// it until [`ViewRegistry::put`]). `None` on a miss or when
    /// maintenance is disabled.
    pub fn take(&mut self, key: u64) -> Option<Materialization> {
        if !self.enabled() {
            return None;
        }
        self.views.remove(&key).map(|s| s.view)
    }

    /// Re-registers a view checked out under `epoch`. Returns `false`
    /// (dropping the view, counted in [`ViewRegistry::evicted`]) when
    /// maintenance is disabled or a rollback intervened since the
    /// checkout.
    pub fn put(&mut self, key: u64, view: Materialization, epoch: u64) -> bool {
        if !self.enabled() || epoch != self.epoch {
            self.evicted += 1;
            return false;
        }
        self.tick += 1;
        self.views.insert(
            key,
            ViewSlot {
                view,
                last_used: self.tick,
            },
        );
        self.shrink_to_cap();
        true
    }

    /// Invalidates checked-out views (called on every store shrink).
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Evicts least-recently-used views down to the capacity. The view
    /// inserted last holds the newest stamp, so it is never the victim.
    fn shrink_to_cap(&mut self) {
        while self.views.len() > self.cap {
            let Some(victim) = self
                .views
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&k, _)| k)
            else {
                break;
            };
            self.views.remove(&victim);
            self.evicted += 1;
        }
    }
}

/// Persistence state: the WAL handle plus snapshot policy.
struct Persistence {
    wal: Wal,
    dir: PathBuf,
    fsync: bool,
    /// Journaled records since the last snapshot; a snapshot fires when
    /// this reaches `snapshot_every` (0 disables periodic snapshots).
    snapshot_every: u64,
    records_since_snapshot: u64,
    poisoned: Option<String>,
}

/// Durability knobs for [`DurableSession::open`].
#[derive(Clone, Copy, Debug)]
pub struct PersistOptions {
    /// fsync the WAL after every record (and snapshot files always).
    pub fsync: bool,
    /// Snapshot after this many journaled records (0 = never).
    pub snapshot_every: u64,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: false,
            snapshot_every: 64,
        }
    }
}

/// A sink for successfully journaled WAL frames. The replication hub
/// implements this: every acknowledged record is published to connected
/// replicas right after it becomes durable locally.
pub trait RecordSink: Send + Sync {
    /// Hands over one journaled frame (complete wire encoding, exactly
    /// the bytes appended to the log) at its lsn.
    fn publish(&self, lsn: u64, frame: Vec<u8>);

    /// Notes that a durable snapshot covering everything up to `lsn`
    /// was cut: frames at or below it are recoverable via snapshot
    /// bootstrap, so a sink may release them.
    fn note_snapshot(&self, _lsn: u64) {}
}

/// The session store, optionally journaled to disk. In-memory sessions
/// ([`DurableSession::in_memory`]) share the same mutation API with all
/// persistence calls skipped.
pub struct DurableSession {
    store: SessionStore,
    persist: Option<Persistence>,
    views: ViewRegistry,
    /// Highest replication epoch seen (journaled, snapshotted, or
    /// learned from a peer's promotion).
    repl_epoch: u64,
    /// Where journaled frames are published for replica shipping.
    publisher: Option<Arc<dyn RecordSink>>,
}

impl Default for DurableSession {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl DurableSession {
    /// A purely in-memory session (no WAL, no snapshots).
    pub fn in_memory() -> Self {
        DurableSession {
            store: SessionStore::default(),
            persist: None,
            views: ViewRegistry::default(),
            repl_epoch: 0,
            publisher: None,
        }
    }

    /// Opens (and recovers) a session from `dir`: restores the snapshot
    /// if one exists, replays WAL records past it (truncating a torn
    /// tail), and leaves the log open for appending.
    ///
    /// `vocab` must be freshly created — snapshot restore re-interns the
    /// dumped symbol tables and needs the id space to itself.
    pub fn open(
        dir: &Path,
        opts: PersistOptions,
        vocab: &mut Vocab,
    ) -> Result<(Self, RecoveryInfo), SessionError> {
        std::fs::create_dir_all(dir).map_err(|e| SessionError::Io(e.to_string()))?;
        let mut info = RecoveryInfo::default();
        let mut store = SessionStore::default();
        let mut last_lsn = 0u64;
        let mut repl_epoch = 0u64;
        if let Some(snap) = read_snapshot(&dir.join(SNAPSHOT_FILE))? {
            last_lsn = snap.last_lsn;
            repl_epoch = snap.epoch;
            restore_snapshot(snap, vocab, &mut store)?;
            info.snapshot_facts = store.facts.len() as u64;
        }
        let replayed =
            Wal::replay(&dir.join(WAL_FILE)).map_err(|e| SessionError::Io(e.to_string()))?;
        info.truncated_tail = replayed.truncated;
        for (lsn, record) in &replayed.records {
            if *lsn <= last_lsn {
                continue; // already folded into the snapshot
            }
            info.replayed_records += 1;
            match record {
                WalRecord::Assert(syms) => {
                    let facts: Vec<Fact> =
                        syms.iter().map(|sf| resolve_sym_fact(vocab, sf)).collect();
                    info.replayed_facts += store.apply_assert(facts.iter());
                }
                WalRecord::Mark(id) => store.apply_mark(*id),
                WalRecord::Rollback(id) => store.apply_rollback(*id)?,
                WalRecord::Epoch(e) => repl_epoch = repl_epoch.max(*e),
            }
            last_lsn = last_lsn.max(*lsn);
        }
        let wal = Wal::open(&dir.join(WAL_FILE), opts.fsync, last_lsn + 1)
            .map_err(|e| SessionError::Io(e.to_string()))?;
        Ok((
            DurableSession {
                store,
                views: ViewRegistry::default(),
                persist: Some(Persistence {
                    wal,
                    dir: dir.to_owned(),
                    fsync: opts.fsync,
                    snapshot_every: opts.snapshot_every,
                    records_since_snapshot: replayed.records.len() as u64,
                    poisoned: None,
                }),
                repl_epoch,
                publisher: None,
            },
            info,
        ))
    }

    /// Number of facts in the session store.
    pub fn len(&self) -> usize {
        self.store.facts.len()
    }

    /// Whether the session store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.facts.len() == 0
    }

    /// Whether the session journals to disk.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// A shared snapshot of the session's indexed store: a reference-
    /// count bump, not a copy. Read paths (queries, view syncs) hold
    /// the `Arc` and evaluate outside the session lock; a concurrent
    /// mutation copies the store on write instead, so the snapshot is
    /// immutable for its whole lifetime.
    pub fn share_store(&self) -> Arc<IndexedInstance> {
        Arc::clone(&self.store.facts)
    }

    /// A full deep clone of the session's indexed store. Prefer
    /// [`DurableSession::share_store`] — the serve read path never
    /// copies the fact columns; this remains for callers that want a
    /// mutable private copy.
    pub fn clone_store(&self) -> IndexedInstance {
        (*self.store.facts).clone()
    }

    /// The session's maintained-view registry.
    pub fn views(&self) -> &ViewRegistry {
        &self.views
    }

    /// Mutable access to the maintained-view registry.
    pub fn views_mut(&mut self) -> &mut ViewRegistry {
        &mut self.views
    }

    /// Sets how many maintained views the session keeps (0 disables).
    pub fn set_view_capacity(&mut self, cap: usize) {
        self.views.set_capacity(cap);
    }

    /// Runs the DRed delete-rederive pass over every registered view
    /// after the session store shrank to `keep` facts. A view whose
    /// maintenance fails (blown budget or panic) is dropped — the next
    /// query rebuilds it from the store — so the session itself never
    /// pays for a pathological view. Call after a successful
    /// [`DurableSession::rollback`], with the same store length.
    pub fn maintain_views_rollback(&mut self, keep: usize, budget: &Budget) -> ViewMaintenance {
        let mut out = ViewMaintenance::default();
        let keys: Vec<u64> = self.views.views.keys().copied().collect();
        for key in keys {
            let Some(mut slot) = self.views.views.remove(&key) else {
                continue;
            };
            // A view that lagged behind on syncs never saw the doomed
            // facts; rolling back to its own frontier is a no-op.
            let target = keep.min(slot.view.base_len());
            match catch_unwind(AssertUnwindSafe(|| slot.view.rollback(target, budget))) {
                Ok(Ok(stats)) => {
                    out.deleted = out.deleted.saturating_add(stats.ivm_deleted as u64);
                    out.rederived = out.rederived.saturating_add(stats.ivm_rederived as u64);
                    self.views.views.insert(key, slot);
                }
                Ok(Err(_)) => {
                    out.over_budget += 1;
                    self.views.note_dropped(1);
                }
                Err(_) => {
                    out.panicked += 1;
                    self.views.note_dropped(1);
                }
            }
        }
        out
    }

    /// The session's durable position: `(last applied LSN, fact
    /// count)`. This is what a certificate's `snapshot` binding
    /// records — the pair identifies exactly which store state the
    /// answer was computed over (the LSN is 0 for in-memory sessions,
    /// where only the fact count binds).
    pub fn position(&self) -> (u64, u64) {
        let lsn = self
            .persist
            .as_ref()
            .map_or(0, |p| p.wal.next_lsn().saturating_sub(1));
        (lsn, self.store.facts.len() as u64)
    }

    /// Journals one record, rolling the mutation attempt back on
    /// failure. A durably journaled record is republished to the
    /// replication sink (if one is attached) — publication happens only
    /// *after* the append succeeded, so replicas can never hold a frame
    /// the primary rolled back.
    fn journal(&mut self, record: &WalRecord) -> Result<(u64, u64), SessionError> {
        let Some(p) = self.persist.as_mut() else {
            return Ok((0, 0));
        };
        if let Some(why) = &p.poisoned {
            return Err(SessionError::Poisoned(why.clone()));
        }
        match p.wal.append(record) {
            Ok((lsn, bytes)) => {
                if let Some(sink) = &self.publisher {
                    sink.publish(lsn, record.encode_frame(lsn));
                }
                Ok((lsn, bytes))
            }
            Err(e) => {
                let msg = e.to_string();
                if msg.contains("could not be rolled back") {
                    p.poisoned = Some(msg.clone());
                }
                Err(SessionError::Io(msg))
            }
        }
    }

    /// Attaches the sink journaled frames are republished to (the
    /// primary's replication hub).
    pub fn set_publisher(&mut self, sink: Arc<dyn RecordSink>) {
        self.publisher = Some(sink);
    }

    /// The highest replication epoch this session has seen (0 when the
    /// node never took part in a failover).
    pub fn repl_epoch(&self) -> u64 {
        self.repl_epoch
    }

    /// Raises the in-memory epoch without journaling — used when a node
    /// *learns* of a peer's higher epoch (fencing) rather than
    /// promoting itself.
    pub fn observe_epoch(&mut self, epoch: u64) {
        self.repl_epoch = self.repl_epoch.max(epoch);
    }

    /// Journals an epoch bump (promotion): the record fences any
    /// resurrected primary still on a lower epoch, and survives crash
    /// and snapshot like every other mutation.
    pub fn stamp_epoch(&mut self, epoch: u64) -> Result<MutationInfo, SessionError> {
        let (lsn, wal_bytes) = self.journal(&WalRecord::Epoch(epoch))?;
        self.repl_epoch = self.repl_epoch.max(epoch);
        self.bump_record_count();
        Ok(MutationInfo {
            lsn,
            wal_bytes,
            added: 0,
            facts: self.store.facts.len() as u64,
            snapshotted: false,
        })
    }

    /// Applies one record shipped from the primary, journaling it
    /// locally at the *primary's* lsn so the replica's durable position
    /// (and certificate bindings) match the primary's byte-for-byte.
    ///
    /// Records must arrive in lsn order: one at or below the local
    /// position is a duplicate (already applied — `Ok(false)`), one
    /// past the expected next lsn is a gap and refuses with
    /// [`SessionError::Corrupt`] rather than silently diverging.
    pub fn apply_replicated(
        &mut self,
        lsn: u64,
        record: &WalRecord,
        vocab: &mut Vocab,
    ) -> Result<bool, SessionError> {
        let Some(p) = self.persist.as_ref() else {
            return Err(SessionError::Io(
                "replica apply requires a durable session".into(),
            ));
        };
        let expected = p.wal.next_lsn();
        if lsn < expected {
            return Ok(false); // duplicate re-ship after a reconnect
        }
        if lsn > expected {
            return Err(SessionError::Corrupt(format!(
                "replication gap: expected lsn {expected}, got {lsn}"
            )));
        }
        self.journal(record)?;
        match record {
            WalRecord::Assert(syms) => {
                let facts: Vec<Fact> = syms.iter().map(|sf| resolve_sym_fact(vocab, sf)).collect();
                self.store.apply_assert(facts.iter());
            }
            WalRecord::Mark(id) => self.store.apply_mark(*id),
            WalRecord::Rollback(id) => {
                self.store.apply_rollback(*id)?;
                self.views.bump_epoch();
            }
            WalRecord::Epoch(e) => self.repl_epoch = self.repl_epoch.max(*e),
        }
        self.bump_record_count();
        Ok(true)
    }

    /// Installs a snapshot shipped by the primary over the *live*
    /// session: the replica's catch-up fallback when it reconnects from
    /// behind the primary's retained log window and tailing is no
    /// longer possible ("copy immutable objects, then flip HEAD",
    /// mid-life edition).
    ///
    /// The image's dense symbol ids assume a fresh vocabulary, but a
    /// serving replica's vocabulary holds extra names interned by
    /// queries — so every dumped id is remapped through the live tables
    /// by name. The raw image is persisted as the local snapshot (its
    /// ids are self-consistent for a fresh recovery), the journal is
    /// emptied and fast-forwarded to the snapshot's position, and the
    /// store is swapped. Returns the installed `(lsn, epoch)`.
    pub fn install_replicated_snapshot(
        &mut self,
        bytes: &[u8],
        vocab: &mut Vocab,
    ) -> Result<(u64, u64), SessionError> {
        let Some(p) = self.persist.as_ref() else {
            return Err(SessionError::Io(
                "snapshot install requires a durable session".into(),
            ));
        };
        if let Some(why) = &p.poisoned {
            return Err(SessionError::Poisoned(why.clone()));
        }
        let snap = parse_snapshot(bytes)?;
        let corrupt = |why: &str| SessionError::Corrupt(format!("snapshot: {why}"));
        let const_map: Vec<gomq_core::ConstId> =
            snap.consts.iter().map(|n| vocab.constant(n)).collect();
        let rel_map: Vec<RelId> = snap
            .rels
            .iter()
            .map(|(n, a)| vocab.rel(n, *a as usize))
            .collect();
        vocab.ensure_nulls(snap.null_horizon);
        let arena = snap
            .store_arena
            .iter()
            .map(|t| match t {
                Term::Const(c) => const_map
                    .get(c.0 as usize)
                    .map(|&id| Term::Const(id))
                    .ok_or("dangling constant id"),
                Term::Null(n) if n.0 < snap.null_horizon => Ok(Term::Null(*n)),
                Term::Null(_) => Err("dangling null id"),
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(corrupt)?;
        let rels = snap
            .store_rels
            .iter()
            .map(|r| rel_map.get(r.0 as usize).copied().ok_or("dangling relation id"))
            .collect::<Result<Vec<_>, _>>()
            .map_err(corrupt)?;
        let fact_store =
            FactStore::from_columns(rels, snap.store_starts, arena).map_err(|e| corrupt(&e))?;
        let len = fact_store.len();
        if snap.marks.iter().any(|&(_, l)| l as usize > len) {
            return Err(corrupt("mark past the end of the store"));
        }
        // Persist the image before flipping in-memory state, with the
        // same temp-write / fsync / rename / dir-sync discipline as
        // snapshot_now — a crash mid-install recovers either the old or
        // the new position, never a torn mix.
        let p = self.persist.as_mut().expect("checked durable above");
        let tmp = p.dir.join("snapshot.tmp");
        let target = p.dir.join(SNAPSHOT_FILE);
        let write = || -> std::io::Result<()> {
            std::fs::write(&tmp, bytes)?;
            std::fs::File::open(&tmp)?.sync_data()?;
            std::fs::rename(&tmp, &target)?;
            if let Ok(d) = std::fs::File::open(&p.dir) {
                let _ = d.sync_data();
            }
            Ok(())
        };
        write().map_err(|e| SessionError::Io(e.to_string()))?;
        p.wal
            .reset_to(snap.last_lsn + 1)
            .map_err(|e| SessionError::Io(e.to_string()))?;
        p.records_since_snapshot = 0;
        self.store.facts = Arc::new(IndexedInstance::from_store(fact_store));
        self.store.marks = snap.marks.iter().map(|&(id, l)| (id, l as usize)).collect();
        self.store.next_mark = snap.next_mark;
        self.repl_epoch = self.repl_epoch.max(snap.epoch);
        // Views synced against the replaced store must not survive it.
        self.views.bump_epoch();
        Ok((snap.last_lsn, snap.epoch))
    }

    /// Asserts a batch of facts: journal first, then apply. `syms` and
    /// `facts` must describe the same batch (the serve layer builds both
    /// while holding the vocabulary lock).
    pub fn assert(
        &mut self,
        syms: Vec<SymFact>,
        facts: &[Fact],
    ) -> Result<MutationInfo, SessionError> {
        let (lsn, wal_bytes) = self.journal(&WalRecord::Assert(syms))?;
        let added = self.store.apply_assert(facts.iter());
        self.bump_record_count();
        Ok(MutationInfo {
            lsn,
            wal_bytes,
            added,
            facts: self.store.facts.len() as u64,
            snapshotted: false,
        })
    }

    /// Creates a rollback mark, returning `(mark id, mutation info)`.
    pub fn mark(&mut self) -> Result<(u64, MutationInfo), SessionError> {
        let id = self.store.next_mark;
        let (lsn, wal_bytes) = self.journal(&WalRecord::Mark(id))?;
        self.store.apply_mark(id);
        self.bump_record_count();
        Ok((
            id,
            MutationInfo {
                lsn,
                wal_bytes,
                added: 0,
                facts: self.store.facts.len() as u64,
                snapshotted: false,
            },
        ))
    }

    /// Rolls the store back to a mark. The mark is validated *before*
    /// journaling, so an invalid rollback never reaches the log.
    pub fn rollback(&mut self, id: u64) -> Result<MutationInfo, SessionError> {
        if !self.store.marks.contains_key(&id) {
            return Err(SessionError::UnknownMark(id));
        }
        let (lsn, wal_bytes) = self.journal(&WalRecord::Rollback(id))?;
        self.store
            .apply_rollback(id)
            .expect("mark existence was checked before journaling");
        // The store shrank: views checked out across this rollback must
        // not be re-registered (they may have synced doomed facts).
        self.views.bump_epoch();
        self.bump_record_count();
        Ok(MutationInfo {
            lsn,
            wal_bytes,
            added: 0,
            facts: self.store.facts.len() as u64,
            snapshotted: false,
        })
    }

    fn bump_record_count(&mut self) {
        if let Some(p) = self.persist.as_mut() {
            p.records_since_snapshot += 1;
        }
    }

    /// Whether the snapshot policy says it is time to snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.persist.as_ref().is_some_and(|p| {
            p.poisoned.is_none()
                && p.snapshot_every > 0
                && p.records_since_snapshot >= p.snapshot_every
        })
    }

    /// Dumps the session to `snapshot.bin` (temp file + atomic rename)
    /// and truncates the WAL. A failed snapshot leaves the WAL intact —
    /// nothing is lost, the next mutation retries.
    pub fn snapshot_now(&mut self, vocab: &Vocab) -> Result<(), SessionError> {
        let Some(p) = self.persist.as_mut() else {
            return Ok(());
        };
        if let Some(why) = &p.poisoned {
            return Err(SessionError::Poisoned(why.clone()));
        }
        let last_lsn = p.wal.next_lsn() - 1;
        let bytes = encode_snapshot(vocab, &self.store, last_lsn, self.repl_epoch);
        if let Some(gomq_core::faults::IoFault::Error | gomq_core::faults::IoFault::Short) =
            gomq_core::faults::io_point(gomq_core::faults::SNAPSHOT_WRITE)
        {
            return Err(SessionError::Io("chaos: injected snapshot failure".into()));
        }
        let tmp = p.dir.join("snapshot.tmp");
        let target = p.dir.join(SNAPSHOT_FILE);
        let write = || -> std::io::Result<()> {
            std::fs::write(&tmp, &bytes)?;
            if p.fsync {
                std::fs::File::open(&tmp)?.sync_data()?;
            }
            std::fs::rename(&tmp, &target)?;
            if p.fsync {
                // Durable rename needs the directory synced too; best
                // effort on filesystems that refuse to fsync directories.
                if let Ok(d) = std::fs::File::open(&p.dir) {
                    let _ = d.sync_data();
                }
            }
            Ok(())
        };
        write().map_err(|e| SessionError::Io(e.to_string()))?;
        // Rotate rather than truncate: the pre-snapshot records are
        // sealed aside as `wal.old` for shipping and triage; they are
        // never replayed (all at or below the snapshot's lsn).
        p.wal
            .rotate()
            .map_err(|e| SessionError::Io(e.to_string()))?;
        p.records_since_snapshot = 0;
        if let Some(sink) = &self.publisher {
            sink.note_snapshot(last_lsn);
        }
        Ok(())
    }

    /// Encodes the session's current state as snapshot bytes — exactly
    /// what `snapshot.bin` would contain — without touching disk. The
    /// primary ships this to a bootstrapping replica, which installs it
    /// as its local snapshot and tails the log from the embedded lsn.
    pub fn encode_current_snapshot(&self, vocab: &Vocab) -> Vec<u8> {
        let last_lsn = self.position().0;
        encode_snapshot(vocab, &self.store, last_lsn, self.repl_epoch)
    }

    /// Orderly-shutdown flush: fsync the WAL (so every acknowledged
    /// mutation is stable even if the next step fails), then cut a final
    /// snapshot. After a clean drain a restart recovers from the
    /// snapshot alone — zero WAL replay — which is the deploy story the
    /// serving front end advertises. No-op for in-memory sessions.
    pub fn drain(&mut self, vocab: &Vocab) -> Result<(), SessionError> {
        let Some(p) = self.persist.as_mut() else {
            return Ok(());
        };
        if let Some(why) = &p.poisoned {
            return Err(SessionError::Poisoned(why.clone()));
        }
        p.wal.sync().map_err(|e| SessionError::Io(e.to_string()))?;
        self.snapshot_now(vocab)
    }
}

/// Probes a data directory for its durable replication position without
/// opening a session: `(last applied lsn, highest epoch)` from the
/// snapshot header plus any WAL records past it. A missing directory or
/// empty log probes as `(0, 0)`. The follower sends this in its HELLO
/// before recovery runs, so the primary can decide between shipping a
/// snapshot and tailing the log.
pub(crate) fn local_log_position(dir: &Path) -> Result<(u64, u64), SessionError> {
    let mut last = 0u64;
    let mut epoch = 0u64;
    if let Some(snap) = read_snapshot(&dir.join(SNAPSHOT_FILE))? {
        last = snap.last_lsn;
        epoch = snap.epoch;
    }
    let replayed = Wal::replay(&dir.join(WAL_FILE)).map_err(|e| SessionError::Io(e.to_string()))?;
    for (lsn, record) in &replayed.records {
        if *lsn <= last {
            continue;
        }
        if let WalRecord::Epoch(e) = record {
            epoch = epoch.max(*e);
        }
    }
    Ok((last.max(replayed.last_lsn), epoch))
}

/// Reads `(last lsn, epoch)` out of a snapshot byte image's header
/// (checksum is *not* verified here — installation replays through the
/// fully validating [`read_snapshot`] on the next open).
pub(crate) fn snapshot_position(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < 8 + 4 + 16 || &bytes[..8] != SNAP_MAGIC {
        return None;
    }
    let mut c = Cursor::new(&bytes[8..]);
    let version = c.take_u32().ok()?;
    let last_lsn = c.take_u64().ok()?;
    let epoch = if version >= 2 { c.take_u64().ok()? } else { 0 };
    Some((last_lsn, epoch))
}

/// Resolves a symbolic fact against the vocabulary, interning names as
/// needed (replay re-creates exactly the names the live session used).
pub fn resolve_sym_fact(vocab: &mut Vocab, sf: &SymFact) -> Fact {
    let rel = vocab.rel(&sf.rel, sf.args.len());
    let args = sf
        .args
        .iter()
        .map(|t| match t {
            SymTerm::Const(name) => Term::Const(vocab.constant(name)),
            SymTerm::Null(n) => {
                vocab.ensure_nulls(n + 1);
                Term::Null(NullId(*n))
            }
        })
        .collect();
    Fact::new(rel, args)
}

/// Converts an interned fact to its symbolic form via the vocabulary.
pub fn sym_fact(vocab: &Vocab, rel: RelId, args: &[Term]) -> SymFact {
    SymFact {
        rel: vocab.rel_name(rel).to_owned(),
        args: args
            .iter()
            .map(|t| match t {
                Term::Const(c) => SymTerm::Const(vocab.const_name(*c).to_owned()),
                Term::Null(n) => SymTerm::Null(n.0),
            })
            .collect(),
    }
}

// ---- snapshot encode/decode ----

struct Snapshot {
    last_lsn: u64,
    epoch: u64,
    next_mark: u64,
    null_horizon: u32,
    consts: Vec<String>,
    rels: Vec<(String, u32)>,
    store_rels: Vec<RelId>,
    store_starts: Vec<u32>,
    store_arena: Vec<Term>,
    marks: Vec<(u64, u64)>,
}

fn encode_snapshot(vocab: &Vocab, store: &SessionStore, last_lsn: u64, epoch: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(4096);
    b.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut b, SNAP_VERSION);
    put_u64(&mut b, last_lsn);
    put_u64(&mut b, epoch);
    put_u64(&mut b, store.next_mark);
    put_u32(&mut b, vocab.null_count());
    put_u32(&mut b, vocab.const_count() as u32);
    for i in 0..vocab.const_count() as u32 {
        put_str(&mut b, vocab.const_name(gomq_core::ConstId(i)));
    }
    put_u32(&mut b, vocab.rel_count() as u32);
    for r in vocab.rels() {
        put_str(&mut b, vocab.rel_name(r));
        put_u32(&mut b, vocab.arity(r) as u32);
    }
    let (rels, starts, arena) = store.facts.store().columns();
    put_u32(&mut b, rels.len() as u32);
    for r in rels {
        put_u32(&mut b, r.0);
    }
    for s in starts {
        put_u32(&mut b, *s);
    }
    put_u32(&mut b, arena.len() as u32);
    for t in arena {
        match t {
            Term::Const(c) => {
                b.push(0);
                put_u32(&mut b, c.0);
            }
            Term::Null(n) => {
                b.push(1);
                put_u32(&mut b, n.0);
            }
        }
    }
    put_u32(&mut b, store.marks.len() as u32);
    let mut marks: Vec<(u64, u64)> = store
        .marks
        .iter()
        .map(|(&id, &len)| (id, len as u64))
        .collect();
    marks.sort_unstable();
    for (id, len) in marks {
        put_u64(&mut b, id);
        put_u64(&mut b, len);
    }
    let sum = fnv1a(&b);
    put_u64(&mut b, sum);
    b
}

fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, SessionError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SessionError::Io(e.to_string())),
    };
    parse_snapshot(&bytes).map(Some)
}

/// Checksum-verifies and decodes one GOMQSNAP image.
fn parse_snapshot(bytes: &[u8]) -> Result<Snapshot, SessionError> {
    let corrupt = |why: String| SessionError::Corrupt(format!("snapshot: {why}"));
    if bytes.len() < SNAP_MAGIC.len() + 12 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != sum {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut c = Cursor::new(&body[8..]);
    let mut parse = || -> Result<Snapshot, String> {
        let version = c.take_u32()?;
        if version != 1 && version != SNAP_VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let last_lsn = c.take_u64()?;
        let epoch = if version >= 2 { c.take_u64()? } else { 0 };
        let next_mark = c.take_u64()?;
        let null_horizon = c.take_u32()?;
        let n_consts = c.take_u32()? as usize;
        let mut consts = Vec::with_capacity(n_consts.min(1 << 20));
        for _ in 0..n_consts {
            consts.push(c.take_str()?);
        }
        let n_rels = c.take_u32()? as usize;
        let mut rels = Vec::with_capacity(n_rels.min(1 << 20));
        for _ in 0..n_rels {
            let name = c.take_str()?;
            let arity = c.take_u32()?;
            rels.push((name, arity));
        }
        let n_facts = c.take_u32()? as usize;
        let mut store_rels = Vec::with_capacity(n_facts.min(1 << 20));
        for _ in 0..n_facts {
            store_rels.push(RelId(c.take_u32()?));
        }
        let mut store_starts = Vec::with_capacity((n_facts + 1).min(1 << 20));
        for _ in 0..n_facts + 1 {
            store_starts.push(c.take_u32()?);
        }
        let n_terms = c.take_u32()? as usize;
        let mut store_arena = Vec::with_capacity(n_terms.min(1 << 20));
        for _ in 0..n_terms {
            store_arena.push(match c.take_u8()? {
                0 => Term::Const(gomq_core::ConstId(c.take_u32()?)),
                1 => Term::Null(NullId(c.take_u32()?)),
                t => return Err(format!("unknown term tag {t}")),
            });
        }
        let n_marks = c.take_u32()? as usize;
        let mut marks = Vec::with_capacity(n_marks.min(1 << 20));
        for _ in 0..n_marks {
            let id = c.take_u64()?;
            let len = c.take_u64()?;
            marks.push((id, len));
        }
        if !c.done() {
            return Err("trailing bytes".into());
        }
        Ok(Snapshot {
            last_lsn,
            epoch,
            next_mark,
            null_horizon,
            consts,
            rels,
            store_rels,
            store_starts,
            store_arena,
            marks,
        })
    };
    parse().map_err(corrupt)
}

fn restore_snapshot(
    snap: Snapshot,
    vocab: &mut Vocab,
    store: &mut SessionStore,
) -> Result<(), SessionError> {
    let corrupt = |why: &str| SessionError::Corrupt(format!("snapshot: {why}"));
    if vocab.rel_count() != 0 || vocab.const_count() != 0 {
        return Err(corrupt("restore requires a fresh vocabulary"));
    }
    // Re-intern the dumped tables in id order, so the dense ids the
    // dumped store columns refer to come back out identically.
    for (i, name) in snap.consts.iter().enumerate() {
        let id = vocab.constant(name);
        if id.0 as usize != i {
            return Err(corrupt("duplicate constant in dump"));
        }
    }
    for (i, (name, arity)) in snap.rels.iter().enumerate() {
        let id = vocab.rel(name, *arity as usize);
        if id.0 as usize != i {
            return Err(corrupt("duplicate relation in dump"));
        }
    }
    vocab.ensure_nulls(snap.null_horizon);
    let n_consts = vocab.const_count() as u32;
    let n_rels = vocab.rel_count() as u32;
    for t in &snap.store_arena {
        match t {
            Term::Const(c) if c.0 >= n_consts => return Err(corrupt("dangling constant id")),
            Term::Null(n) if n.0 >= snap.null_horizon => return Err(corrupt("dangling null id")),
            _ => {}
        }
    }
    if snap.store_rels.iter().any(|r| r.0 >= n_rels) {
        return Err(corrupt("dangling relation id"));
    }
    let fact_store = FactStore::from_columns(snap.store_rels, snap.store_starts, snap.store_arena)
        .map_err(|e| corrupt(&e))?;
    let len = fact_store.len();
    store.facts = Arc::new(IndexedInstance::from_store(fact_store));
    store.marks = snap.marks.iter().map(|&(id, l)| (id, l as usize)).collect();
    if store.marks.values().any(|&l| l > len) {
        return Err(corrupt("mark past the end of the store"));
    }
    store.next_mark = snap.next_mark;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::parse::parse_instance;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gomq-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_text(session: &mut DurableSession, vocab: &mut Vocab, text: &str) -> MutationInfo {
        let d = parse_instance(text, vocab).unwrap();
        let facts: Vec<Fact> = d.iter().map(|f| f.to_fact()).collect();
        let syms: Vec<SymFact> = facts
            .iter()
            .map(|f| sym_fact(vocab, f.rel, &f.args))
            .collect();
        session.assert(syms, &facts).unwrap()
    }

    fn store_shape(s: &DurableSession, vocab: &Vocab) -> Vec<String> {
        s.clone_store()
            .iter()
            .map(|f| format!("{}", f.display(vocab)))
            .collect()
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tmpdir("reopen");
        let shape_before;
        {
            let mut vocab = Vocab::new();
            let (mut s, info) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            assert_eq!(info.replayed_records, 0);
            let i1 = assert_text(&mut s, &mut vocab, "R(a,b)\nS(c)\n");
            assert_eq!(i1.added, 2);
            let (m, _) = s.mark().unwrap();
            assert_text(&mut s, &mut vocab, "S(doomed)\n");
            s.rollback(m).unwrap();
            assert_text(&mut s, &mut vocab, "R(b,c)\n");
            assert_eq!(s.len(), 3);
            shape_before = store_shape(&s, &vocab);
        }
        let mut vocab = Vocab::new();
        let (s, info) = DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
        assert_eq!(info.replayed_records, 5);
        assert_eq!(info.replayed_facts, 3 + 1); // doomed counts, then rolls back
        assert_eq!(s.len(), 3);
        assert_eq!(store_shape(&s, &vocab), shape_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_replay() {
        let dir = tmpdir("snaptail");
        let shape_before;
        {
            let mut vocab = Vocab::new();
            let (mut s, _) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            assert_text(&mut s, &mut vocab, "R(a,b)\nR(b,c)\n");
            s.snapshot_now(&vocab).unwrap();
            // Mutations after the snapshot live only in the WAL.
            assert_text(&mut s, &mut vocab, "S(d)\n");
            shape_before = store_shape(&s, &vocab);
        }
        let mut vocab = Vocab::new();
        let (s, info) = DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
        assert_eq!(info.snapshot_facts, 2);
        assert_eq!(info.replayed_records, 1);
        assert_eq!(s.len(), 3);
        assert_eq!(store_shape(&s, &vocab), shape_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_due_follows_policy() {
        let dir = tmpdir("due");
        let mut vocab = Vocab::new();
        let opts = PersistOptions {
            fsync: false,
            snapshot_every: 2,
        };
        let (mut s, _) = DurableSession::open(&dir, opts, &mut vocab).unwrap();
        assert!(!s.snapshot_due());
        assert_text(&mut s, &mut vocab, "R(a,b)\n");
        assert!(!s.snapshot_due());
        assert_text(&mut s, &mut vocab, "R(b,c)\n");
        assert!(s.snapshot_due());
        s.snapshot_now(&vocab).unwrap();
        assert!(!s.snapshot_due());
        // The WAL was truncated; reopening relies on the snapshot alone.
        let mut vocab2 = Vocab::new();
        let (s2, info) = DurableSession::open(&dir, opts, &mut vocab2).unwrap();
        assert_eq!(info.snapshot_facts, 2);
        assert_eq!(info.replayed_records, 0);
        assert_eq!(s2.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_mark_is_rejected_without_journaling() {
        let dir = tmpdir("badmark");
        let mut vocab = Vocab::new();
        let (mut s, _) = DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
        assert!(matches!(s.rollback(42), Err(SessionError::UnknownMark(42))));
        // Nothing was journaled: reopening replays zero records.
        drop(s);
        let mut vocab2 = Vocab::new();
        let (_, info) = DurableSession::open(&dir, PersistOptions::default(), &mut vocab2).unwrap();
        assert_eq!(info.replayed_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_invalidates_later_marks() {
        let mut s = DurableSession::in_memory();
        let mut vocab = Vocab::new();
        assert_text(&mut s, &mut vocab, "R(a,b)\n");
        let (m1, _) = s.mark().unwrap();
        assert_text(&mut s, &mut vocab, "R(b,c)\n");
        let (m2, _) = s.mark().unwrap();
        s.rollback(m1).unwrap();
        assert_eq!(s.len(), 1);
        // m2 pointed past the restored length and is gone; m1 survives.
        let err = s.rollback(m2).unwrap_err();
        assert_eq!(err, SessionError::UnknownMark(m2));
        s.rollback(m1).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn corrupt_snapshot_is_reported() {
        let dir = tmpdir("corruptsnap");
        let mut vocab = Vocab::new();
        {
            let (mut s, _) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            assert_text(&mut s, &mut vocab, "R(a,b)\n");
            s.snapshot_now(&vocab).unwrap();
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        let mut vocab2 = Vocab::new();
        let Err(err) = DurableSession::open(&dir, PersistOptions::default(), &mut vocab2) else {
            panic!("corrupt snapshot was accepted");
        };
        assert!(matches!(err, SessionError::Corrupt(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nulls_round_trip_through_log_and_snapshot() {
        let dir = tmpdir("nulls");
        {
            let mut vocab = Vocab::new();
            let (mut s, _) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            let r = vocab.rel("R", 2);
            let a = Term::Const(vocab.constant("açai ☂"));
            let n = Term::Null(vocab.fresh_null());
            let f = Fact::new(r, vec![a, n]);
            let syms = vec![sym_fact(&vocab, f.rel, &f.args)];
            s.assert(syms, std::slice::from_ref(&f)).unwrap();
            s.snapshot_now(&vocab).unwrap();
        }
        let mut vocab = Vocab::new();
        let (s, _) = DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(vocab.null_count(), 1);
        let store = s.clone_store();
        let f = store.iter().next().unwrap();
        assert!(matches!(f.args[1], Term::Null(NullId(0))));
        assert_eq!(format!("{}", f.args[0].display(&vocab)), "açai ☂");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    use gomq_datalog::{DAtom, Literal, Rule};

    /// `B(x) ← A(x)` — the smallest program a view can maintain.
    fn b_from_a(v: &mut Vocab) -> (Vec<Rule>, RelId) {
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        (
            vec![Rule::new(
                DAtom::vars(b, &[0]),
                vec![Literal::Pos(DAtom::vars(a, &[0]))],
            )],
            b,
        )
    }

    #[test]
    fn shared_store_snapshot_is_isolated_from_mutations() {
        let mut s = DurableSession::in_memory();
        let mut vocab = Vocab::new();
        assert_text(&mut s, &mut vocab, "R(a,b)\n");
        let snap = s.share_store();
        assert_text(&mut s, &mut vocab, "R(b,c)\n");
        assert_eq!(snap.len(), 1, "the snapshot is immutable");
        assert_eq!(s.len(), 2);
        assert_eq!(s.share_store().len(), 2, "fresh snapshots see the write");
    }

    #[test]
    fn view_registry_lru_caps_and_epoch_blocks_stale_reinsertion() {
        let mut s = DurableSession::in_memory();
        let mut vocab = Vocab::new();
        let (rules, goal) = b_from_a(&mut vocab);
        assert_text(&mut s, &mut vocab, "A(x)\n");
        let (m, _) = s.mark().unwrap();
        let (view, _) =
            Materialization::build(&rules, goal, &s.share_store(), &Budget::UNLIMITED).unwrap();
        // LRU: capacity 2, three inserts, the untouched one is evicted.
        s.set_view_capacity(2);
        let epoch = s.views().epoch();
        assert!(s.views_mut().put(1, view.clone(), epoch));
        assert!(s.views_mut().put(2, view.clone(), epoch));
        let _ = s.views_mut().take(1); // touch 1 so 2 becomes LRU
        assert!(s.views_mut().put(1, view.clone(), epoch));
        assert!(s.views_mut().put(3, view.clone(), epoch));
        assert_eq!(s.views().len(), 2);
        assert_eq!(s.views().evicted(), 1);
        assert!(s.views_mut().take(2).is_none(), "2 was the LRU victim");
        // Epoch: a view checked out across a rollback is refused — and
        // the refusal counts as a drop, so the cumulative eviction
        // total never understates how many views actually died.
        let out = s.views_mut().take(1).unwrap();
        s.rollback(m).unwrap();
        assert!(!s.views_mut().put(1, out, epoch));
        assert!(s.views_mut().take(1).is_none());
        assert_eq!(s.views().evicted(), 2, "stale-epoch drop is counted");
        // Capacity 0 disables the registry outright; the view it still
        // held is a counted drop, as is a put against the disabled
        // registry.
        s.set_view_capacity(0);
        let epoch = s.views().epoch();
        assert_eq!(s.views().evicted(), 3, "capacity-0 clear is counted");
        assert!(!s.views_mut().put(9, view, epoch));
        assert!(s.views().is_empty());
        assert_eq!(s.views().evicted(), 4, "disabled-registry put is counted");
        // External drops (failed syncs, recording rebuilds) are noted
        // through the same counter.
        s.views_mut().note_dropped(1);
        assert_eq!(s.views().evicted(), 5);
    }

    #[test]
    fn session_rollback_maintains_registered_views() {
        let mut s = DurableSession::in_memory();
        let mut vocab = Vocab::new();
        let (rules, goal) = b_from_a(&mut vocab);
        assert_text(&mut s, &mut vocab, "A(keep)\n");
        let (m, _) = s.mark().unwrap();
        assert_text(&mut s, &mut vocab, "A(doomed)\n");
        let (view, _) =
            Materialization::build(&rules, goal, &s.share_store(), &Budget::UNLIMITED).unwrap();
        assert_eq!(view.answers().len(), 2);
        let epoch = s.views().epoch();
        assert!(s.views_mut().put(1, view, epoch));
        s.rollback(m).unwrap();
        let maint = s.maintain_views_rollback(s.len(), &Budget::UNLIMITED);
        assert!(maint.deleted > 0, "DRed must retract doomed consequences");
        assert_eq!(maint.over_budget + maint.panicked, 0);
        let view = s.views_mut().take(1).expect("the view survived");
        let keep = Term::Const(vocab.constant("keep"));
        assert_eq!(view.answers(), [vec![keep]].into_iter().collect());
    }

    #[test]
    fn failed_rollback_maintenance_counts_the_dropped_view() {
        let mut s = DurableSession::in_memory();
        let mut vocab = Vocab::new();
        let (rules, goal) = b_from_a(&mut vocab);
        assert_text(&mut s, &mut vocab, "A(keep)\n");
        let (m, _) = s.mark().unwrap();
        assert_text(&mut s, &mut vocab, "A(doomed)\n");
        let (view, _) =
            Materialization::build(&rules, goal, &s.share_store(), &Budget::UNLIMITED).unwrap();
        let epoch = s.views().epoch();
        assert!(s.views_mut().put(1, view, epoch));
        s.rollback(m).unwrap();
        // A zero-round budget makes the DRed pass fail: the view must
        // be dropped *and* the drop must land in the eviction total.
        let before = s.views().evicted();
        let tight = Budget {
            max_rounds: Some(0),
            max_derived: None,
            deadline: None,
        };
        let maint = s.maintain_views_rollback(s.len(), &tight);
        assert_eq!(maint.over_budget, 1);
        assert!(s.views().is_empty(), "the failed view was dropped");
        assert_eq!(s.views().evicted(), before + 1, "the drop is counted");
    }

    #[test]
    fn epoch_survives_replay_and_snapshot() {
        let dir = tmpdir("epoch");
        {
            let mut vocab = Vocab::new();
            let (mut s, _) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            assert_eq!(s.repl_epoch(), 0);
            assert_text(&mut s, &mut vocab, "R(a,b)\n");
            s.stamp_epoch(3).unwrap();
            assert_eq!(s.repl_epoch(), 3);
        }
        // WAL replay rebuilds the epoch.
        {
            let mut vocab = Vocab::new();
            let (mut s, _) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            assert_eq!(s.repl_epoch(), 3);
            // A snapshot carries the epoch even after the log rotates.
            let vocab_now = vocab.clone();
            s.snapshot_now(&vocab_now).unwrap();
        }
        {
            let mut vocab = Vocab::new();
            let (s, info) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            assert_eq!(info.replayed_records, 0, "snapshot covers the log");
            assert_eq!(s.repl_epoch(), 3);
        }
        // The pre-open probe agrees with a full recovery.
        let (lsn, epoch) = local_log_position(&dir).unwrap();
        assert_eq!(epoch, 3);
        assert!(lsn >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observe_epoch_is_in_memory_until_stamped() {
        let dir = tmpdir("observe");
        {
            let mut vocab = Vocab::new();
            let (mut s, _) =
                DurableSession::open(&dir, PersistOptions::default(), &mut vocab).unwrap();
            s.observe_epoch(7);
            assert_eq!(s.repl_epoch(), 7);
            s.observe_epoch(5);
            assert_eq!(s.repl_epoch(), 7, "observation is monotone");
        }
        let (_, epoch) = local_log_position(&dir).unwrap();
        assert_eq!(epoch, 0, "an observed epoch is not journaled");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_replicated_roundtrips_duplicates_and_gaps() {
        let primary_dir = tmpdir("repl-primary");
        let replica_dir = tmpdir("repl-replica");
        // The primary journals mutations and we capture the exact
        // frames its publisher would ship.
        struct Captured(std::sync::Mutex<Vec<(u64, Vec<u8>)>>);
        impl RecordSink for Captured {
            fn publish(&self, lsn: u64, frame: Vec<u8>) {
                self.0.lock().unwrap().push((lsn, frame));
            }
        }
        let sink = Arc::new(Captured(std::sync::Mutex::new(Vec::new())));
        let mut primary_vocab = Vocab::new();
        let (mut primary, _) =
            DurableSession::open(&primary_dir, PersistOptions::default(), &mut primary_vocab)
                .unwrap();
        primary.set_publisher(Arc::clone(&sink) as Arc<dyn RecordSink>);
        assert_text(&mut primary, &mut primary_vocab, "R(a,b)\nS(c)\n");
        let (mark, _) = primary.mark().unwrap();
        assert_text(&mut primary, &mut primary_vocab, "S(doomed)\n");
        primary.rollback(mark).unwrap();
        let frames = sink.0.lock().unwrap().clone();
        assert_eq!(frames.len(), 4, "assert, mark, assert, rollback");

        // A replica applies the shipped frames and converges to the
        // same store and position.
        let mut replica_vocab = Vocab::new();
        let (mut replica, _) =
            DurableSession::open(&replica_dir, PersistOptions::default(), &mut replica_vocab)
                .unwrap();
        for (lsn, frame) in &frames {
            let (flsn, record, _) = WalRecord::decode_frame(frame).unwrap();
            assert_eq!(flsn, *lsn);
            assert!(replica
                .apply_replicated(*lsn, &record, &mut replica_vocab)
                .unwrap());
        }
        assert_eq!(replica.position(), primary.position());
        assert_eq!(
            store_shape(&replica, &replica_vocab),
            store_shape(&primary, &primary_vocab)
        );
        // A duplicate (re-shipped after reconnect) is a no-op.
        let (lsn, record, _) = WalRecord::decode_frame(&frames[0].1).unwrap();
        assert!(!replica
            .apply_replicated(lsn, &record, &mut replica_vocab)
            .unwrap());
        assert_eq!(replica.position(), primary.position());
        // A gap (skipped lsn) is refused as corrupt, not silently
        // applied out of order.
        let next = replica.position().0 + 5;
        match replica.apply_replicated(next, &record, &mut replica_vocab) {
            Err(SessionError::Corrupt(msg)) => {
                assert!(msg.contains("replication gap"), "{msg}")
            }
            other => panic!("gap must be Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&primary_dir).unwrap();
        std::fs::remove_dir_all(&replica_dir).unwrap();
    }

    #[test]
    fn shipped_snapshot_bootstraps_a_replica() {
        let primary_dir = tmpdir("snapship-primary");
        let replica_dir = tmpdir("snapship-replica");
        let mut vocab = Vocab::new();
        let (mut primary, _) =
            DurableSession::open(&primary_dir, PersistOptions::default(), &mut vocab).unwrap();
        assert_text(&mut primary, &mut vocab, "R(a,b)\nS(c)\n");
        primary.stamp_epoch(2).unwrap();
        let image = primary.encode_current_snapshot(&vocab);
        assert_eq!(
            snapshot_position(&image),
            Some((primary.position().0, 2)),
            "header probe must agree with the session position"
        );
        // Install the image the way `repl::bootstrap_follower` does.
        std::fs::create_dir_all(&replica_dir).unwrap();
        std::fs::write(replica_dir.join(SNAPSHOT_FILE), &image).unwrap();
        let mut replica_vocab = Vocab::new();
        let (replica, info) =
            DurableSession::open(&replica_dir, PersistOptions::default(), &mut replica_vocab)
                .unwrap();
        assert_eq!(info.snapshot_facts, 2);
        assert_eq!(replica.position().0, primary.position().0);
        assert_eq!(replica.repl_epoch(), 2);
        assert_eq!(
            store_shape(&replica, &replica_vocab),
            store_shape(&primary, &vocab)
        );
        std::fs::remove_dir_all(&primary_dir).unwrap();
        std::fs::remove_dir_all(&replica_dir).unwrap();
    }

    #[test]
    fn live_snapshot_install_remaps_a_polluted_vocab() {
        let primary_dir = tmpdir("snapinstall-primary");
        let replica_dir = tmpdir("snapinstall-replica");
        let mut vocab = Vocab::new();
        let (mut primary, _) =
            DurableSession::open(&primary_dir, PersistOptions::default(), &mut vocab).unwrap();
        assert_text(&mut primary, &mut vocab, "R(a,b)\nS(c)\n");
        primary.stamp_epoch(3).unwrap();
        let image = primary.encode_current_snapshot(&vocab);

        // A live replica whose vocabulary interned extra names before
        // the install (queries do this), so the dump's dense ids do not
        // line up with the live ids and must be remapped by name.
        let mut replica_vocab = Vocab::new();
        replica_vocab.constant("zebra");
        replica_vocab.rel("Query", 1);
        let (mut replica, _) =
            DurableSession::open(&replica_dir, PersistOptions::default(), &mut replica_vocab)
                .unwrap();
        assert_text(&mut replica, &mut replica_vocab, "Stale(x)\n");

        let (lsn, epoch) = replica
            .install_replicated_snapshot(&image, &mut replica_vocab)
            .unwrap();
        assert_eq!((lsn, epoch), (primary.position().0, 3));
        assert_eq!(replica.position(), primary.position());
        assert_eq!(replica.repl_epoch(), 3);
        assert_eq!(
            store_shape(&replica, &replica_vocab),
            store_shape(&primary, &vocab)
        );
        // The installed state is durable: a fresh open recovers it with
        // an empty journal (the stale pre-install log is gone).
        drop(replica);
        let mut fresh_vocab = Vocab::new();
        let (recovered, info) =
            DurableSession::open(&replica_dir, PersistOptions::default(), &mut fresh_vocab)
                .unwrap();
        assert_eq!(info.replayed_records, 0, "journal must be empty after install");
        assert_eq!(recovered.position(), primary.position());
        assert_eq!(
            store_shape(&recovered, &fresh_vocab),
            store_shape(&primary, &vocab)
        );
        std::fs::remove_dir_all(&primary_dir).unwrap();
        std::fs::remove_dir_all(&replica_dir).unwrap();
    }
}
