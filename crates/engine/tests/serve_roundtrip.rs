//! End-to-end test of the `gomq-serve` binary: feed JSONL requests on
//! stdin, check the JSONL responses on stdout.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_serve(input: &str, extra_args: &[&str]) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gomq-serve"))
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gomq-serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("gomq-serve exits");
    assert!(out.status.success(), "gomq-serve failed: {out:?}");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn jsonl_requests_roundtrip_with_plan_caching() {
    let requests = concat!(
        r#"{"id": "r1", "ontology": "Manager sub Employee\nEmployee sub Staff", "query": "Staff", "abox": "Manager(ada)\nStaff(alan)"}"#,
        "\n",
        "\n", // blank lines are skipped
        r#"{"id": "r2", "ontology": "Employee sub Staff\nManager sub Employee", "query": "Staff", "abox": "Employee(grace)"}"#,
        "\n",
        r#"{"id": "r3", "ontology": "A sub B", "query": "B", "aboxes": ["A(x)", "", "A(y)\nB(z)"]}"#,
        "\n",
        r#"{"id": "r4", "ontology": "A sub B", "query": "Missing", "abox": ""}"#,
        "\n",
    );
    let (stdout, stderr) = run_serve(requests, &["--threads", "2"]);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one response per request: {stdout}");

    // r1: fresh compile, both the asserted and the derived Staff answer.
    assert!(lines[0].contains(r#""id": "r1""#));
    assert!(lines[0].contains(r#""status": "ok""#));
    assert!(lines[0].contains(r#""cached": false"#));
    assert!(lines[0].contains(r#"["ada"]"#) && lines[0].contains(r#"["alan"]"#));

    // r2 poses the same OMQ with the axioms reordered: plan-cache hit.
    // The request-scoped stats carry the per-request hit flag; the
    // cumulative counters live in the separate "engine" block.
    assert!(lines[1].contains(r#""id": "r2""#));
    assert!(lines[1].contains(r#""cached": true"#));
    assert!(lines[1].contains(r#"["grace"]"#));
    assert!(lines[1].contains(r#""stats": {"#));
    assert!(lines[1].contains(r#""cache_hit": true"#));
    assert!(lines[1].contains(r#""engine": {"#));
    assert!(lines[1].contains(r#""cache_hits": 1"#));
    assert!(lines[1].contains(r#""cache_misses": 1"#));
    // r1 was a miss, and its request-scoped stats must say so even
    // though the engine totals later count hits.
    assert!(lines[0].contains(r#""cache_hit": false"#));

    // r3: a batch, one answer array per ABox in order.
    assert!(lines[2].contains(r#""batches": [[["x"]], [], [["y"], ["z"]]]"#));

    // r4: an error response, not a crash.
    assert!(lines[3].contains(r#""id": "r4""#));
    assert!(lines[3].contains(r#""status": "error""#));

    // The EOF summary on stderr reports the three served evaluations.
    assert!(stderr.contains("3 requests"), "stderr: {stderr}");
    assert!(stderr.contains("1 cache hits"), "stderr: {stderr}");
}

#[test]
fn limits_and_panics_are_survivable_end_to_end() {
    let requests = concat!(
        // Blows the session-wide --max-derived limit set below.
        r#"{"id": "hot", "ontology": "C0 sub C1\nC1 sub C2\nC2 sub C3", "query": "C3", "abox": "C0(a)\nC0(b)\nC0(c)\nC0(d)"}"#,
        "\n",
        // Trips the vocabulary arity assertion inside the DL parser.
        r#"{"id": "boom", "ontology": "A sub ex R.A\nR sub B", "query": "B", "abox": ""}"#,
        "\n",
        // A well-behaved request afterwards still answers.
        r#"{"id": "ok", "ontology": "A sub B", "query": "B", "abox": "A(x)"}"#,
        "\n",
    );
    let (stdout, stderr) = run_serve(requests, &["--threads", "2", "--max-derived", "4"]);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one response per request: {stdout}");
    assert!(lines[0].contains(r#""id": "hot""#));
    assert!(lines[0].contains(r#""status": "overloaded""#));
    assert!(lines[0].contains(r#""limit": "derived""#));
    assert!(lines[1].contains(r#""id": "boom""#));
    assert!(lines[1].contains(r#""status": "error""#));
    assert!(lines[1].contains("panic isolated"));
    assert!(lines[2].contains(r#""id": "ok""#));
    assert!(lines[2].contains(r#""status": "ok""#));
    assert!(lines[2].contains(r#"["x"]"#));
    assert!(stderr.contains("1 overloaded"), "stderr: {stderr}");
    assert!(stderr.contains("1 panics isolated"), "stderr: {stderr}");
}

#[test]
fn help_flag_prints_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_gomq-serve"))
        .arg("--help")
        .output()
        .expect("run gomq-serve --help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Usage: gomq-serve"));
}
