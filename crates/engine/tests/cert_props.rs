//! Property and crash tests for proof-carrying answers: every tuple a
//! certified request answers must come with a certificate that the
//! *standalone* verifier (`gomq-cert`, which shares no code with the
//! engine) accepts, and whose verified answers are exactly the answers
//! in the response — across all three answer paths (one-shot fixpoint,
//! IVM-maintained session views, the bitset type kernel), in memory and
//! across a SIGKILL + WAL-replay restart (where the snapshot binding
//! `(lsn, base)` must also be byte-identical, pinning FactId/LSN
//! determinism of recovery).

mod common;

use common::{tmpdir, Serve};
use gomq_cert::json::{self as cjson, Value};
use gomq_cert::{verify_value, Snapshot, Verified};
use gomq_engine::{Budget, Engine, ServeConfig, ServeSession};
use proptest::collection::vec;
use proptest::prelude::*;

/// The OMQ pool — three distinct plans so a tiny view cap also
/// exercises LRU eviction and recording rebuild on the certified path.
const OMQS: &[(&str, &str)] = &[
    (r"A sub B\nB sub C", "C"),
    (r"Manager sub Employee\nEmployee sub Staff", "Staff"),
    ("A sub B", "B"),
];

/// Relations asserts draw from: body relations of every OMQ plus noise.
const RELS: &[&str] = &["A", "B", "C", "Manager", "Employee", "Staff"];

/// Parses an `"ok"` query response with the *verifier's own* JSON
/// parser, checks the embedded certificate with [`verify_value`], and
/// checks the verified answer tuples are exactly the response's
/// `"answers"`. Returns the verification report (for snapshot checks).
fn check_certified(response: &str) -> Verified {
    let doc = cjson::parse(response).unwrap_or_else(|e| panic!("bad JSON ({e}): {response}"));
    let Value::Obj(obj) = &doc else {
        panic!("response is not an object: {response}")
    };
    assert_eq!(
        obj.get("status").and_then(Value::as_str),
        Some("ok"),
        "unexpected failure response: {response}"
    );
    let mut want: Vec<Vec<String>> = obj
        .get("answers")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("no answers array in {response}"))
        .iter()
        .map(|row| {
            row.as_arr()
                .expect("answer tuple is an array")
                .iter()
                .map(|t| t.as_str().expect("answer term is a string").to_owned())
                .collect()
        })
        .collect();
    let cert = obj
        .get("certificate")
        .unwrap_or_else(|| panic!("certified response has no certificate: {response}"));
    let verified =
        verify_value(cert).unwrap_or_else(|e| panic!("certificate rejected ({e}): {response}"));
    let mut got = verified.answers.clone();
    got.sort();
    want.sort();
    assert_eq!(
        got, want,
        "verified answers diverge from response answers: {response}"
    );
    verified
}

/// An in-memory serving session with the given view-registry capacity.
fn session(max_views: usize) -> ServeSession {
    ServeSession::with_config(ServeConfig {
        threads: 1,
        max_views,
        ..ServeConfig::default()
    })
}

// ---------------------------------------------------------------------
// Path 1: one-shot fixpoint over a request ABox.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every certified plain-ABox answer verifies standalone, and a
    /// request-ABox certificate binds to no session position.
    #[test]
    fn plain_abox_certificates_verify(
        facts in vec((0u8..RELS.len() as u8, 0u8..10), 0..12),
        omq in 0u8..OMQS.len() as u8,
    ) {
        let mut s = session(0);
        let abox: Vec<String> = facts
            .iter()
            .map(|&(r, k)| format!("{}(k{k})", RELS[r as usize]))
            .collect();
        let (ontology, query) = OMQS[omq as usize];
        let line = format!(
            r#"{{"ontology": "{ontology}", "query": "{query}", "abox": "{}", "certificate": true}}"#,
            abox.join(r"\n")
        );
        let verified = check_certified(&s.handle_line(&line));
        prop_assert!(verified.snapshot.is_none(), "request-ABox cert claims a session binding");
        // The certificate's goal is the *rewriting's* goal relation
        // (e.g. "_goal"), not the user-facing query name.
        prop_assert!(!verified.goal.is_empty());
    }
}

// ---------------------------------------------------------------------
// Paths 1+2 together: session queries, views on vs. off.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Assert(Vec<(u8, u8)>),
    Mark,
    Rollback(u8),
    Query(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let assert_op = || vec((0u8..RELS.len() as u8, 0u8..12), 1..4).prop_map(Op::Assert);
    let query_op = || (0u8..OMQS.len() as u8).prop_map(Op::Query);
    prop_oneof![
        assert_op(),
        assert_op(),
        Just(Op::Mark),
        (0u8..8).prop_map(Op::Rollback),
        query_op(),
        query_op(),
    ]
}

/// Renders ops into request lines (every query certified). Mark ids and
/// store lengths are simulated client-side so rollbacks name live marks
/// — same bookkeeping as `ivm_props::script_lines`.
fn script_lines(ops: &[Op]) -> Vec<String> {
    let mut store: Vec<String> = Vec::new();
    let mut marks: Vec<(u64, usize)> = Vec::new();
    let mut next_mark = 0u64;
    let mut q = 0usize;
    let mut lines = Vec::new();
    for op in ops {
        match op {
            Op::Assert(batch) => {
                let mut parts = Vec::new();
                for &(r, k) in batch {
                    let fact = format!("{}(k{k})", RELS[r as usize % RELS.len()]);
                    if !store.contains(&fact) {
                        store.push(fact.clone());
                    }
                    parts.push(fact);
                }
                lines.push(format!(
                    r#"{{"op": "assert", "abox": "{}"}}"#,
                    parts.join(r"\n")
                ));
            }
            Op::Mark => {
                marks.push((next_mark, store.len()));
                next_mark += 1;
                lines.push(r#"{"op": "mark"}"#.to_owned());
            }
            Op::Rollback(i) => {
                if marks.is_empty() {
                    continue;
                }
                let (id, len) = marks[*i as usize % marks.len()];
                store.truncate(len);
                marks.retain(|&(_, l)| l <= len);
                lines.push(format!(r#"{{"op": "rollback", "mark": {id}}}"#));
            }
            Op::Query(i) => {
                let (ontology, query) = OMQS[*i as usize % OMQS.len()];
                q += 1;
                lines.push(format!(
                    r#"{{"id": "q{q}", "ontology": "{ontology}", "query": "{query}", "session": true, "certificate": true}}"#
                ));
            }
        }
    }
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random session scripts where *every* query asks for a
    /// certificate: on the maintained-view path (tiny LRU cap, so
    /// eviction, recording rebuild and rollback maintenance all happen)
    /// and on the views-off from-scratch path, every answer verifies
    /// standalone, the two paths agree tuple-for-tuple, and both bind
    /// to the same session position.
    #[test]
    fn session_certificates_verify_on_both_paths(ops in vec(op_strategy(), 1..32)) {
        let lines = script_lines(&ops);
        let mut on = session(2);
        let mut off = session(0);
        for line in &lines {
            let a = on.handle_line(line);
            let b = off.handle_line(line);
            if !line.contains("\"certificate\": true") {
                continue;
            }
            let va = check_certified(&a);
            let vb = check_certified(&b);
            let mut maintained = va.answers.clone();
            maintained.sort();
            let mut recomputed = vb.answers.clone();
            recomputed.sort();
            prop_assert_eq!(
                maintained, recomputed,
                "certified answers diverge between maintained and recompute on {}", line
            );
            // In-memory sessions journal nothing, so the binding is
            // (lsn 0, live base size) — identical mutations, identical
            // position on both paths.
            prop_assert!(va.snapshot.is_some(), "session cert must bind to a position");
            prop_assert_eq!(&va.snapshot, &vb.snapshot, "paths bind to different positions");
        }
    }
}

// ---------------------------------------------------------------------
// Path 3: the bitset type kernel (engine API — the serve protocol
// routes unary-certified requests through the fixpoint, so the kernel
// is certified at the engine boundary).
// ---------------------------------------------------------------------

#[test]
fn typed_kernel_certificates_verify() {
    use gomq_core::parse::parse_instance;
    use gomq_core::Vocab;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;
    use std::sync::Mutex;

    let mut v = Vocab::new();
    let engine = Engine::with_threads(1);
    let dl = parse_ontology(
        "Manager sub Employee\nEmployee sub Staff\nManager sub ex ReportsTo.Employee\n",
        &mut v,
    )
    .unwrap();
    let o = to_gf(&dl);
    let staff = v.find_rel("Staff").unwrap();
    let (plan, _, _) = engine.plan(&o, staff, &mut v);
    let plan = plan.unwrap();
    let abox = parse_instance(
        "Manager(ada)\nEmployee(grace)\nReportsTo(grace,ada)\n",
        &mut v,
    )
    .unwrap();
    let (kernel_answers, _) = engine.answer_typed(&plan, &abox);
    let vocab = Mutex::new(v);
    let (answers, cert, stats) = engine
        .answer_typed_certified(&plan, &abox, &Budget::UNLIMITED, &vocab)
        .expect("typed certified answering succeeds");
    assert_eq!(answers, kernel_answers, "certified path changed answers");
    assert_eq!(stats.cert_bytes, cert.len());
    assert!(stats.typed, "the kernel ran");
    let verified = gomq_cert::verify(&cert).expect("kernel certificate verifies");
    assert_eq!(verified.answers.len(), answers.len());
    assert!(verified.snapshot.is_none());
}

// ---------------------------------------------------------------------
// Crash consistency: SIGKILL + WAL replay.
// ---------------------------------------------------------------------

/// Acceptance: a killed-and-recovered session answers every remaining
/// certified query with a certificate that (a) verifies standalone and
/// (b) carries the *same* answers and `(lsn, base)` binding as an
/// uninterrupted run — FactIds and LSNs are deterministic across
/// replay, so the binding survives the crash byte-for-byte.
#[test]
fn certificates_survive_sigkill_and_replay() {
    let extra = [
        "--threads",
        "1",
        "--snapshot-every",
        "3",
        "--max-views",
        "4",
    ];
    let ontology = r"A sub B\nB sub C";
    let query = |id: usize| {
        format!(
            r#"{{"id": "q{id}", "ontology": "{ontology}", "query": "C", "session": true, "certificate": true}}"#
        )
    };
    let assert_line = |facts: &str| format!(r#"{{"op": "assert", "abox": "{facts}"}}"#);
    let lines = vec![
        assert_line(r"A(x0)\nB(y0)"),
        query(0), // builds + registers the recording materialization
        assert_line("A(x1)"),
        query(1), // maintained hit, certified from the synced view
        r#"{"op": "mark"}"#.to_owned(),
        assert_line(r"A(x2)\nA(x3)"),
        query(2), // hot at the kill point
        // ---- kill point: 7 acknowledged requests ----
        r#"{"op": "rollback", "mark": 0}"#.to_owned(),
        query(3), // certified after rollback maintenance
        assert_line("A(x4)"),
        query(4),
    ];
    let kill_after = 7;

    let run = |dir: &std::path::Path, kill: bool| -> Vec<(Vec<Vec<String>>, Option<Snapshot>)> {
        let mut reports = Vec::new();
        let mut serve = Some(Serve::spawn(dir, &extra));
        for (i, line) in lines.iter().enumerate() {
            if kill && i == kill_after {
                serve.take().expect("server running").kill();
                serve = Some(Serve::spawn(dir, &extra));
            }
            let response = serve.as_mut().expect("server running").request(line);
            if line.contains("\"certificate\": true") {
                let verified = check_certified(&response);
                assert!(
                    verified.snapshot.is_some(),
                    "durable session cert must bind to a position: {response}"
                );
                let mut answers = verified.answers;
                answers.sort();
                reports.push((answers, verified.snapshot));
            }
        }
        serve.take().expect("server running").finish();
        reports
    };

    let base_dir = tmpdir("cert-base");
    let base = run(&base_dir, false);
    assert_eq!(base.len(), 5, "the script poses five certified queries");
    let kill_dir = tmpdir("cert-kill");
    let got = run(&kill_dir, true);
    assert_eq!(
        got, base,
        "certified answers or snapshot bindings diverged after SIGKILL + replay"
    );
    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}
