//! Property tests for the crash-consistency layer: random mutation
//! streams — unicode and astral-plane constants, labelled nulls, marks
//! and rollbacks — journaled through the WAL, optionally folded into
//! snapshots, then recovered into a fresh vocabulary must rebuild an
//! *observationally equal* session store. A torn tail appended to the
//! log must be truncated without losing any acknowledged record.

use gomq_core::{Fact, Term, Vocab};
use gomq_engine::session::{sym_fact, DurableSession, PersistOptions};
use gomq_engine::wal::{SymFact, SymTerm, Wal, WalRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per generated case.
fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gomq-walprop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders a constant name; a third of them get astral-plane and
/// combining characters so the byte-level codec sees multi-byte UTF-8.
fn const_name(i: u8) -> String {
    match i % 3 {
        0 => format!("c{i}"),
        1 => format!("κλειώ-{i}"),
        _ => format!("𝔘{i}☃\u{0301}"),
    }
}

/// One scripted mutation: assert a small batch, take a mark, or roll
/// back to a previously taken mark.
type OpSpec = (u8, Vec<(u8, u8, u8, bool)>);

/// Applies a script to a session, tracking taken marks so rollbacks
/// always name a plausible target.
fn apply_script(
    session: &mut DurableSession,
    vocab: &mut Vocab,
    script: &[OpSpec],
) -> Result<(), String> {
    let mut marks: Vec<u64> = Vec::new();
    for (op, batch) in script {
        match op % 4 {
            0 | 1 => {
                let mut facts = Vec::new();
                for &(rel, a, b, null) in batch {
                    let r = vocab.rel(&format!("R{}", rel % 4), 2);
                    let x = Term::Const(vocab.constant(&const_name(a % 6)));
                    let y = if null {
                        Term::Null(vocab.fresh_null())
                    } else {
                        Term::Const(vocab.constant(&const_name(b % 6)))
                    };
                    facts.push(Fact::new(r, vec![x, y]));
                }
                let syms: Vec<SymFact> = facts
                    .iter()
                    .map(|f| sym_fact(vocab, f.rel, &f.args))
                    .collect();
                session.assert(syms, &facts).map_err(|e| e.to_string())?;
            }
            2 => {
                let (id, _) = session.mark().map_err(|e| e.to_string())?;
                marks.push(id);
            }
            _ => {
                if !marks.is_empty() {
                    let pick = marks[*op as usize % marks.len()];
                    // Rolling back invalidates later marks; tolerate that.
                    if session.rollback(pick).is_ok() {
                        marks.retain(|&m| m <= pick);
                    }
                }
            }
        }
    }
    Ok(())
}

/// The observational content of a session store: every fact rendered
/// through the vocabulary, in fact-id order. Two stores with this
/// rendering equal answer every query identically.
fn observe(session: &DurableSession, vocab: &Vocab) -> Vec<String> {
    session
        .clone_store()
        .iter()
        .map(|f| format!("{}", f.display(vocab)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WAL-only recovery (snapshots disabled): replaying the journal
    /// into a fresh vocabulary rebuilds the exact observational store,
    /// even after a torn frame is appended to the log tail.
    #[test]
    fn wal_replay_rebuilds_the_store(
        script in proptest::collection::vec(
            (
                proptest::arbitrary::any::<u8>(),
                proptest::collection::vec(
                    (0u8..4, 0u8..6, 0u8..6, proptest::arbitrary::any::<bool>()),
                    0..5,
                ),
            ),
            1..20,
        ),
        torn in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..40),
    ) {
        let dir = tmpdir("replay");
        let opts = PersistOptions { fsync: false, snapshot_every: 0 };
        let expected = {
            let mut vocab = Vocab::new();
            let (mut s, _) = DurableSession::open(&dir, opts, &mut vocab).unwrap();
            apply_script(&mut s, &mut vocab, &script).unwrap();
            observe(&s, &vocab)
        };
        // Simulate a crash mid-append: garbage (or a prefix of a valid
        // frame) lands after the last acknowledged record.
        if !torn.is_empty() {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal.log"))
                .unwrap();
            f.write_all(&torn).unwrap();
        }
        let mut vocab2 = Vocab::new();
        let (s2, info) = DurableSession::open(&dir, opts, &mut vocab2).unwrap();
        prop_assert_eq!(observe(&s2, &vocab2), expected);
        if !torn.is_empty() {
            // Either the garbage failed frame validation (truncated) or,
            // rarely, it was a decodable frame — then it replayed.
            prop_assert!(info.truncated_tail || info.replayed_records > 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshot + tail recovery: forcing a snapshot at an arbitrary
    /// point in the script (remaining mutations only in the WAL) must
    /// recover to the same observational store as the uninterrupted
    /// session.
    #[test]
    fn snapshot_and_tail_rebuild_the_store(
        script in proptest::collection::vec(
            (
                proptest::arbitrary::any::<u8>(),
                proptest::collection::vec(
                    (0u8..4, 0u8..6, 0u8..6, proptest::arbitrary::any::<bool>()),
                    0..5,
                ),
            ),
            2..16,
        ),
        cut in proptest::arbitrary::any::<u8>(),
    ) {
        let dir = tmpdir("snap");
        let opts = PersistOptions { fsync: false, snapshot_every: 0 };
        let expected = {
            let mut vocab = Vocab::new();
            let (mut s, _) = DurableSession::open(&dir, opts, &mut vocab).unwrap();
            let at = (cut as usize) % script.len();
            apply_script(&mut s, &mut vocab, &script[..at]).unwrap();
            s.snapshot_now(&vocab).unwrap();
            apply_script(&mut s, &mut vocab, &script[at..]).unwrap();
            observe(&s, &vocab)
        };
        let mut vocab2 = Vocab::new();
        let (s2, _) = DurableSession::open(&dir, opts, &mut vocab2).unwrap();
        prop_assert_eq!(observe(&s2, &vocab2), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The WAL frame codec is the identity on arbitrary symbolic
    /// records, including empty batches, zero-arity facts and strings
    /// that exercise every UTF-8 length class.
    #[test]
    fn wal_records_round_trip(
        records in proptest::collection::vec(
            (
                0u8..3,
                proptest::collection::vec(
                    (0u8..5, proptest::collection::vec(
                        (proptest::arbitrary::any::<bool>(), 0u8..9),
                        0..4,
                    )),
                    0..4,
                ),
                proptest::arbitrary::any::<u8>(),
            ),
            1..12,
        ),
    ) {
        let dir = tmpdir("codec");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, false, 1).unwrap();
        let mut written = Vec::new();
        for (tag, batch, n) in &records {
            let record = match tag % 3 {
                0 => WalRecord::Assert(
                    batch
                        .iter()
                        .map(|(rel, args)| SymFact {
                            rel: format!("S{}", rel % 5),
                            args: args
                                .iter()
                                .map(|&(is_null, v)| if is_null {
                                    SymTerm::Null(v as u32)
                                } else {
                                    SymTerm::Const(const_name(v))
                                })
                                .collect(),
                        })
                        .collect(),
                ),
                1 => WalRecord::Mark(*n as u64),
                _ => WalRecord::Rollback(*n as u64),
            };
            wal.append(&record).unwrap();
            written.push(record);
        }
        drop(wal);
        let replayed = Wal::replay(&path).unwrap();
        prop_assert!(!replayed.truncated);
        let got: Vec<WalRecord> = replayed.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, written);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
