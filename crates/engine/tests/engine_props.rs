//! Property tests: the engine's indexed, stratified, parallel executor
//! is answer-equivalent to the reference `Program::eval`, and the full
//! cached OMQ path is answer-equivalent to the one-shot
//! classify-emit-eval pipeline — including across cache-hit
//! re-evaluation.

use gomq_core::{Fact, IndexedInstance, Instance, RelId, Vocab};
use gomq_datalog::{DAtom, DTerm, Literal, Program, Rule};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::exec::{eval_strata, Strata};
use gomq_engine::Engine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::ElementTypeSystem;
use proptest::prelude::*;

/// One randomly drawn rule: `(head_choice, body_atom_specs, neq_flag)`.
type RuleSpec = (u8, Vec<(u8, u32, u32)>, u8);

/// Builds a random but well-formed Datalog≠ program plus instance from
/// integer specs, so every generated case satisfies range restriction
/// and the goal-not-in-body invariant by construction.
fn build_case(rule_specs: &[RuleSpec], fact_specs: &[(u8, u8, u8)]) -> (Vocab, Program, Instance) {
    let mut v = Vocab::new();
    // Body-eligible relations: three unary, three binary, plus three
    // dedicated IDB relations. The goal G is kept out of bodies.
    let mut body_rels: Vec<RelId> = Vec::new();
    for i in 0..3 {
        body_rels.push(v.rel(&format!("U{i}"), 1));
    }
    for i in 0..3 {
        body_rels.push(v.rel(&format!("B{i}"), 2));
    }
    let idb: Vec<RelId> = vec![v.rel("I0", 1), v.rel("I1", 2), v.rel("I2", 1)];
    body_rels.extend(&idb);
    let goal = v.rel("G", 1);
    let consts: Vec<_> = (0..5).map(|i| v.constant(&format!("c{i}"))).collect();

    let mut rules = Vec::new();
    for (head_choice, body_spec, neq_flag) in rule_specs {
        let mut body: Vec<Literal> = Vec::new();
        let mut body_vars: Vec<u32> = Vec::new();
        for &(rel_choice, v1, v2) in body_spec {
            let rel = body_rels[rel_choice as usize % body_rels.len()];
            let args: Vec<u32> = if v.arity(rel) == 1 {
                vec![v1 % 3]
            } else {
                vec![v1 % 3, v2 % 3]
            };
            for &var in &args {
                if !body_vars.contains(&var) {
                    body_vars.push(var);
                }
            }
            body.push(Literal::Pos(DAtom::vars(rel, &args)));
        }
        if *neq_flag % 4 == 0 && body_vars.len() >= 2 {
            body.push(Literal::Neq(
                DTerm::Var(body_vars[0]),
                DTerm::Var(body_vars[1]),
            ));
        }
        // Head: goal for one in four rules, an IDB relation otherwise;
        // head variables are drawn from the body so range restriction
        // holds by construction.
        let head_rel = if *head_choice % 4 == 3 {
            goal
        } else {
            idb[*head_choice as usize % idb.len()]
        };
        let head_args: Vec<u32> = (0..v.arity(head_rel))
            .map(|i| body_vars[i % body_vars.len()])
            .collect();
        rules.push(Rule::new(DAtom::vars(head_rel, &head_args), body));
    }
    let program = Program::new(rules, goal);

    let mut d = Instance::new();
    // EDB facts over every relation, the goal included (goal facts in
    // the input are legal and must surface as answers).
    let mut all_rels = body_rels.clone();
    all_rels.push(goal);
    for &(rel_choice, c1, c2) in fact_specs {
        let rel = all_rels[rel_choice as usize % all_rels.len()];
        let args = if v.arity(rel) == 1 {
            vec![consts[c1 as usize % consts.len()]]
        } else {
            vec![
                consts[c1 as usize % consts.len()],
                consts[c2 as usize % consts.len()],
            ]
        };
        d.insert(Fact::consts(rel, &args));
    }
    (v, program, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed + stratified + parallel evaluation answers exactly what
    /// the reference semi-naive evaluator answers, for any thread count,
    /// and stays stable when the cached strata are re-evaluated.
    #[test]
    fn executor_matches_reference_eval(
        rule_specs in proptest::collection::vec(
            (
                proptest::arbitrary::any::<u8>(),
                proptest::collection::vec((0u8..9, 0u32..3, 0u32..3), 1..4),
                proptest::arbitrary::any::<u8>(),
            ),
            1..8,
        ),
        fact_specs in proptest::collection::vec((0u8..10, 0u8..5, 0u8..5), 0..30),
        threads in 1usize..5,
    ) {
        let (_v, program, d) = build_case(&rule_specs, &fact_specs);
        let expected = program.eval(&d);
        let indexed = IndexedInstance::from_interpretation(&d);
        // The strata are what an OmqPlan caches: evaluate twice to model
        // a cache-hit re-evaluation and demand identical answers.
        let strata = Strata::of(&program);
        let (first, stats) = eval_strata(&strata, program.goal, &indexed, threads);
        let (second, _) = eval_strata(&strata, program.goal, &indexed, threads);
        prop_assert_eq!(&first, &expected);
        prop_assert_eq!(&second, &expected);
        prop_assert!(stats.rounds >= strata.strata.len());
    }
}

/// Renders one random Horn ontology text from axiom specs.
fn ontology_text(axioms: &[(u8, u8, u8)]) -> String {
    let mut text = String::new();
    for &(i, j, kind) in axioms {
        let (a, b) = (i % 4, j % 4);
        match kind % 3 {
            0 => text.push_str(&format!("A{a} sub A{b}\n")),
            1 => text.push_str(&format!("A{a} sub ex R.A{b}\n")),
            _ => text.push_str(&format!("ex R.A{a} sub A{b}\n")),
        }
    }
    text
}

/// Renders one random ABox text (concept and role assertions).
fn abox_text(facts: &[(u8, u8, u8)]) -> String {
    let mut text = String::new();
    for &(r, c1, c2) in facts {
        match r % 5 {
            4 => text.push_str(&format!("R(c{},c{})\n", c1 % 6, c2 % 6)),
            a => text.push_str(&format!("A{a}(c{})\n", c1 % 6)),
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full engine path (plan cache + indexed parallel executor)
    /// answers random Horn OMQs exactly like the one-shot
    /// build-emit-eval pipeline, and the second, cache-hit evaluation
    /// returns the same answers.
    #[test]
    fn cached_omq_path_matches_one_shot_pipeline(
        axioms in proptest::collection::vec(
            (0u8..4, 0u8..4, 0u8..3),
            1..6,
        ),
        facts in proptest::collection::vec(
            (proptest::arbitrary::any::<u8>(), 0u8..6, 0u8..6),
            0..15,
        ),
        query_choice in 0u8..4,
    ) {
        let mut v = Vocab::new();
        let dl = parse_ontology(&ontology_text(&axioms), &mut v)
            .expect("generated ontology must parse");
        let o = to_gf(&dl);
        let query = match v.find_rel(&format!("A{}", query_choice % 4)) {
            Some(r) => r,
            // The queried concept does not occur in this ontology draw.
            None => return Ok(()),
        };
        let abox = gomq_core::parse::parse_instance(&abox_text(&facts), &mut v)
            .expect("generated abox must parse");

        let engine = Engine::with_threads(4);
        let (plan1, hit1, _) = engine.plan(&o, query, &mut v);
        match plan1 {
            Ok(plan) => {
                prop_assert!(!hit1);
                // Reference: one-shot pipeline on the same vocabulary.
                let sys = ElementTypeSystem::build(&o, &v)
                    .expect("engine compiled, so the one-shot build must succeed");
                let reference = emit_datalog(&sys, query, &mut v).eval(&abox);
                let (answers, _) = engine.answer(&plan, &abox);
                prop_assert_eq!(&answers, &reference);
                // Cache hit: same plan object, same answers.
                let (plan2, hit2, _) = engine.plan(&o, query, &mut v);
                prop_assert!(hit2);
                let (answers2, _) = engine.answer(&plan2.unwrap(), &abox);
                prop_assert_eq!(&answers2, &reference);
            }
            Err(_) => {
                // The engine may only reject what the rewriter rejects.
                prop_assert!(ElementTypeSystem::build(&o, &v).is_err());
            }
        }
    }
}
