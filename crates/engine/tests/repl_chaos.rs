//! Chaos-proven failover for WAL-shipped read replicas.
//!
//! A primary (`--replicate-to`) ships its journal to a follower
//! (`--follow --promote-on-disconnect`) while a TCP client drives
//! acknowledged asserts at the primary. The primary is then SIGKILLed at
//! several distinct points mid-stream. The failover contract says:
//!
//! * before the kill, the follower serves session reads with an honest
//!   per-request `"staleness"` field and refuses writes with a typed
//!   `"read-only"` status;
//! * after the kill, the follower promotes itself and answers the
//!   session query byte-identically to a fresh single node fed exactly
//!   the acknowledged asserts — nothing lost, nothing invented;
//! * certified replica reads carry certificates the standalone
//!   `gomq-cert` verifier accepts, bound to the replayed `(lsn, base)`;
//! * a resurrected old primary is fenced by the promoted node and
//!   refuses writes with a typed `"fenced"` status.
//!
//! In a `--features chaos` build the child processes run under
//! `--chaos-seed`, so the `repl.ship` / `repl.apply` fault seams inject
//! periodic I/O errors into the shipping path and the failover must
//! additionally survive mid-stream disconnect/reconnect cycles.

mod common;

use common::{answers_of, tmpdir, Serve};
use gomq_cert::json::{self as cjson, Value};
use gomq_cert::{verify_value, Verified};
use gomq_engine::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ONTOLOGY: &str = r"Manager sub Employee\nEmployee sub Staff";

/// Extra flags shared by every node; in a chaos build the standard
/// deterministic fault plan is installed in each child, firing the
/// `repl.ship` and `repl.apply` seams.
fn node_flags() -> Vec<&'static str> {
    let mut flags = vec!["--threads", "1", "--workers", "2", "--snapshot-every", "4"];
    if cfg!(feature = "chaos") {
        flags.extend(["--chaos-seed", "20260808"]);
    }
    flags
}

/// Reserves an ephemeral port and frees it again, so a later process
/// can bind it by number. Fencing needs the resurrected primary to come
/// back on the *same* replication address the promoted node keeps
/// pinging.
fn reserve_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("local addr").port()
}

/// A `gomq-serve --listen` child with its announced client address and
/// a thread draining stderr.
struct Node {
    child: Child,
    addr: String,
    stderr: std::thread::JoinHandle<String>,
}

impl Node {
    fn spawn(dir: &Path, extra: &[&str]) -> Node {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gomq-serve"))
            .arg("--data-dir")
            .arg(dir)
            .args(["--listen", "127.0.0.1:0"])
            .args(node_flags())
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn gomq-serve --listen");
        let mut lines = BufReader::new(child.stderr.take().expect("stderr piped"));
        let addr = loop {
            let mut line = String::new();
            assert!(
                lines.read_line(&mut line).expect("read stderr") > 0,
                "node exited before announcing its client address"
            );
            if let Some(addr) = line.trim().strip_prefix("gomq-serve: listening on ") {
                break addr.to_owned();
            }
        };
        // Keep draining stderr so the child can never block on a full
        // pipe (reconnect chatter under chaos is noisy).
        let stderr = std::thread::spawn(move || {
            let mut rest = String::new();
            let mut line = String::new();
            while lines.read_line(&mut line).unwrap_or(0) > 0 {
                rest.push_str(&line);
                line.clear();
            }
            rest
        });
        Node {
            child,
            addr,
            stderr,
        }
    }

    /// SIGKILL — no flush, no drain, the hard crash.
    fn kill(mut self) -> String {
        self.child.kill().expect("kill node");
        let _ = self.child.wait();
        self.stderr.join().expect("stderr thread")
    }
}

/// A line-oriented TCP client for one node.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect to {addr} failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        };
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    /// Sends one request line and blocks for its response; `None` when
    /// the node closed the connection instead.
    fn try_request(&mut self, line: &str) -> Option<String> {
        if writeln!(self.writer, "{line}").is_err() {
            return None;
        }
        let _ = self.writer.flush();
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(n) if n > 0 => Some(response.trim_end().to_owned()),
            _ => None,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.try_request(line)
            .unwrap_or_else(|| panic!("node closed the connection on: {line}"))
    }
}

fn assert_line(i: usize) -> String {
    format!(r#"{{"id": "a{i}", "op": "assert", "abox": "Manager(f{i})"}}"#)
}

/// Drives one request to an `"ok"` acknowledgement, retrying typed
/// `"error"` responses: under `--chaos-seed` the WAL seams inject
/// append failures, which roll the journal back and leave the request
/// unacknowledged — exactly the case a real client retries.
fn acked(client: &mut Client, line: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let response = client.request(line);
        let obj = parse_obj(&response);
        match obj.get("status").and_then(Json::as_str) {
            Some("ok") => return response,
            Some("error") => {
                assert!(
                    Instant::now() < deadline,
                    "request never acknowledged: {response}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            _ => panic!("unexpected response to {line}: {response}"),
        }
    }
}

fn query_line(id: &str, certificate: bool) -> String {
    let cert = if certificate {
        r#", "certificate": true"#
    } else {
        ""
    };
    format!(
        r#"{{"id": "{id}", "ontology": "{ONTOLOGY}", "query": "Staff", "session": true{cert}}}"#
    )
}

/// Parses a response into its JSON object, panicking on malformed JSON.
fn parse_obj(response: &str) -> std::collections::BTreeMap<String, Json> {
    match json::parse(response).unwrap_or_else(|e| panic!("bad JSON ({e}): {response}")) {
        Json::Obj(obj) => obj,
        other => panic!("response is not an object: {other:?}"),
    }
}

/// Checks the embedded certificate of an `"ok"` response with the
/// standalone verifier and cross-checks the verified answers against
/// the response's own `"answers"`.
fn check_certified(response: &str) -> Verified {
    let doc = cjson::parse(response).unwrap_or_else(|e| panic!("bad JSON ({e}): {response}"));
    let Value::Obj(obj) = &doc else {
        panic!("response is not an object: {response}")
    };
    assert_eq!(
        obj.get("status").and_then(Value::as_str),
        Some("ok"),
        "certified request failed: {response}"
    );
    let mut want: Vec<Vec<String>> = obj
        .get("answers")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("no answers array in {response}"))
        .iter()
        .map(|row| {
            row.as_arr()
                .expect("answer tuple is an array")
                .iter()
                .map(|t| t.as_str().expect("answer term is a string").to_owned())
                .collect()
        })
        .collect();
    let cert = obj
        .get("certificate")
        .unwrap_or_else(|| panic!("certified response has no certificate: {response}"));
    let verified =
        verify_value(cert).unwrap_or_else(|e| panic!("certificate rejected ({e}): {response}"));
    let mut got = verified.answers.clone();
    got.sort();
    want.sort();
    assert_eq!(
        got, want,
        "verified answers diverge from response answers: {response}"
    );
    verified
}

/// Polls the replica until it answers the session query with
/// `"staleness": 0` and exactly `expect_facts` Staff answers, returning
/// the caught-up response.
fn await_caught_up(client: &mut Client, expect_facts: usize) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let response = client.request(&query_line("probe", false));
        let obj = parse_obj(&response);
        if obj.get("status").and_then(Json::as_str) == Some("ok")
            && matches!(obj.get("staleness"), Some(Json::Num(n)) if *n == 0.0)
            && obj
                .get("answers")
                .and_then(Json::as_arr)
                .is_some_and(|a| a.len() == expect_facts)
        {
            return response;
        }
        assert!(
            Instant::now() < deadline,
            "replica never caught up to {expect_facts} facts: {response}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// What a failover round leaves behind: the promoted node, a client on
/// it, its data dir, and the replication address the dead primary
/// served on (the promoted node keeps fencing that address).
struct Failover {
    replica: Node,
    reads: Client,
    replica_dir: std::path::PathBuf,
    repl_addr: String,
}

/// Runs the acknowledged-prefix failover round: drive `kill_after`
/// acknowledged asserts at the primary, wait for the replica to catch
/// up, SIGKILL the primary, and return the promoted node plus the
/// replica client once promotion has landed.
fn failover_round(tag: &str, kill_after: usize) -> Failover {
    let primary_dir = tmpdir(&format!("repl-{tag}-primary"));
    let replica_dir = tmpdir(&format!("repl-{tag}-replica"));
    let repl_port = reserve_port();
    let repl_addr = format!("127.0.0.1:{repl_port}");

    let primary = Node::spawn(&primary_dir, &["--replicate-to", &repl_addr]);
    let replica = Node::spawn(
        &replica_dir,
        &["--follow", &repl_addr, "--promote-on-disconnect"],
    );

    let mut writes = Client::connect(&primary.addr);
    for i in 0..kill_after {
        acked(&mut writes, &assert_line(i));
    }

    // The follower refuses writes with the typed read-only status while
    // it still follows.
    let mut reads = Client::connect(&replica.addr);
    let refusal = reads.request(r#"{"id": "w", "op": "assert", "abox": "Manager(doomed)"}"#);
    let obj = parse_obj(&refusal);
    assert_eq!(
        obj.get("status").and_then(Json::as_str),
        Some("read-only"),
        "follower write was not refused as read-only: {refusal}"
    );

    await_caught_up(&mut reads, kill_after);
    let _primary_stderr = primary.kill();

    // Promotion (reconnect window exhausted) drops the `"staleness"`
    // field from replica answers: the node is a primary now.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let response = reads.request(&query_line("promoted", false));
        let obj = parse_obj(&response);
        if obj.get("status").and_then(Json::as_str) == Some("ok") && !obj.contains_key("staleness")
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never promoted itself: {response}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    std::fs::remove_dir_all(&primary_dir).ok();
    Failover {
        replica,
        reads,
        replica_dir,
        repl_addr,
    }
}

/// The oracle: a fresh single node fed exactly the acknowledged
/// asserts, answering the same session query.
fn oracle_answers(tag: &str, kill_after: usize, query: &str) -> Json {
    let dir = tmpdir(&format!("repl-{tag}-oracle"));
    let mut serve = Serve::spawn(&dir, &["--threads", "1"]);
    for i in 0..kill_after {
        let response = serve.request(&assert_line(i));
        let obj = parse_obj(&response);
        assert_eq!(obj.get("status").and_then(Json::as_str), Some("ok"));
    }
    let response = serve.request(query);
    serve.finish();
    std::fs::remove_dir_all(&dir).ok();
    let (_, answers) = answers_of(&response).expect("oracle query answers");
    answers
}

#[test]
fn promoted_replica_serves_exactly_the_acknowledged_facts() {
    // Three distinct kill points: early (inside the first snapshot
    // window), mid-stream, and late (past a snapshot rotation).
    for (tag, kill_after) in [("k3", 3), ("k7", 7), ("k11", 11)] {
        let mut round = failover_round(tag, kill_after);
        let reads = &mut round.reads;

        let promoted = acked(reads, &query_line("final", false));
        let (_, got) = answers_of(&promoted).expect("promoted query answers");
        let want = oracle_answers(tag, kill_after, &query_line("final", false));
        assert_eq!(
            got, want,
            "promoted replica diverged from the acknowledged prefix at kill point {kill_after}"
        );

        // The promoted node accepts writes again.
        acked(reads, &assert_line(kill_after));

        round.replica.kill();
        std::fs::remove_dir_all(&round.replica_dir).ok();
    }
}

#[test]
fn replica_reads_carry_verifiable_certificates() {
    let kill_after = 5;
    let primary_dir = tmpdir("repl-cert-primary");
    let replica_dir = tmpdir("repl-cert-replica");
    let repl_port = reserve_port();
    let repl_addr = format!("127.0.0.1:{repl_port}");

    let primary = Node::spawn(&primary_dir, &["--replicate-to", &repl_addr]);
    let replica = Node::spawn(&replica_dir, &["--follow", &repl_addr]);

    let mut writes = Client::connect(&primary.addr);
    for i in 0..kill_after {
        acked(&mut writes, &assert_line(i));
    }
    let mut reads = Client::connect(&replica.addr);
    await_caught_up(&mut reads, kill_after);

    // A certified read on the *follower* verifies standalone and binds
    // to the replayed position: one WAL record and one base fact per
    // acknowledged assert.
    let certified = acked(&mut reads, &query_line("cert", true));
    let verified = check_certified(&certified);
    let snapshot = verified
        .snapshot
        .expect("replica session certificate has a snapshot binding");
    assert_eq!(
        (snapshot.lsn, snapshot.base),
        (kill_after as u64, kill_after as u64),
        "certificate binds to the wrong replayed position"
    );

    primary.kill();
    replica.kill();
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

#[test]
fn resurrected_primary_is_fenced_by_the_promoted_node() {
    let kill_after = 4;
    let mut round = failover_round("fence", kill_after);

    // The old primary comes back from an empty directory on the same
    // replication address the promoted node keeps pinging. (Its data
    // dir is gone — the fence must not depend on any local state.)
    acked(&mut round.reads, &query_line("post", false));
    let resurrected_dir = tmpdir("repl-fence-resurrected");
    let resurrected = Node::spawn(&resurrected_dir, &["--replicate-to", &round.repl_addr]);

    // The promoted node's fencer pings every 250ms; the resurrected
    // primary must flip to the typed fenced refusal.
    let mut old = Client::connect(&resurrected.addr);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let Some(response) =
            old.try_request(r#"{"id": "z", "op": "assert", "abox": "Manager(zombie)"}"#)
        else {
            // The node may drop the connection while flipping roles;
            // reconnect and keep probing.
            std::thread::sleep(Duration::from_millis(100));
            old = Client::connect(&resurrected.addr);
            continue;
        };
        let obj = parse_obj(&response);
        if obj.get("status").and_then(Json::as_str) == Some("fenced") {
            assert!(
                matches!(obj.get("epoch"), Some(Json::Num(n)) if *n >= 1.0),
                "fenced refusal must carry the superseding epoch: {response}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "resurrected primary was never fenced: {response}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    resurrected.kill();
    round.replica.kill();
    std::fs::remove_dir_all(&resurrected_dir).ok();
    std::fs::remove_dir_all(&round.replica_dir).ok();
}
