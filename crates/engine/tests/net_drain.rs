//! Graceful-drain equivalence for `gomq-serve --listen`.
//!
//! K concurrent TCP connections pipeline session asserts at the server,
//! and SIGTERM lands while they are in flight. The drain contract says:
//! (a) every request the clients sent is still answered before the
//! server closes the connections and exits, and (b) the shutdown cuts a
//! final snapshot, so a restart over the same `--data-dir` serves the
//! exact same session store — judged byte-identically across two
//! independent restarts, and against the statically known fact set.

mod common;

use common::{answers_of, tmpdir, Serve};
use gomq_engine::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const ONTOLOGY: &str = r"Manager sub Employee\nEmployee sub Staff";
const CONNS: usize = 4;
const ASSERTS_PER_CONN: usize = 5;

/// A `gomq-serve --listen` child plus its resolved ephemeral address
/// and a thread collecting its stderr.
struct Listener {
    child: Child,
    addr: String,
    stderr: std::thread::JoinHandle<String>,
}

fn spawn_listener(dir: &std::path::Path) -> Listener {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gomq-serve"))
        .arg("--data-dir")
        .arg(dir)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--threads",
            "1",
            "--workers",
            "2",
            "--drain-timeout-ms",
            "10000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gomq-serve --listen");
    let mut lines = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            lines.read_line(&mut line).expect("read stderr") > 0,
            "server exited before announcing its address"
        );
        if let Some(addr) = line.trim().strip_prefix("gomq-serve: listening on ") {
            break addr.to_owned();
        }
    };
    // Keep draining stderr so the child can never block on a full pipe;
    // the collected text carries the drain summary we assert on.
    let stderr = std::thread::spawn(move || {
        let mut rest = String::new();
        let mut line = String::new();
        while lines.read_line(&mut line).unwrap_or(0) > 0 {
            rest.push_str(&line);
            line.clear();
        }
        rest
    });
    Listener {
        child,
        addr,
        stderr,
    }
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM failed");
}

/// The constant asserted by connection `c`'s request `i`.
fn fact_const(c: usize, i: usize) -> String {
    format!("w{c}x{i}")
}

fn session_query(id: &str) -> String {
    format!(r#"{{"id": "{id}", "ontology": "{ONTOLOGY}", "query": "Staff", "session": true}}"#)
}

/// Flattens a query's `"answers"` (an array of tuples) into a sorted
/// list of constants for set comparison.
fn constants_of(answers: &Json) -> Vec<String> {
    let mut constants: Vec<String> = answers
        .as_arr()
        .expect("answers is an array")
        .iter()
        .map(|tuple| {
            let tuple = tuple.as_arr().expect("answer tuple");
            assert_eq!(tuple.len(), 1, "Staff is unary");
            tuple[0].as_str().expect("constant").to_owned()
        })
        .collect();
    constants.sort();
    constants
}

#[test]
fn sigterm_mid_load_answers_in_flight_and_recovers_identically() {
    let dir = tmpdir("net-drain");

    // Phase 1: K connections pipeline their asserts without reading a
    // single response, so SIGTERM lands with requests in flight at
    // every stage: unread in socket buffers, queued in the worker pool,
    // and executing.
    let listener = spawn_listener(&dir);
    let mut conns: Vec<TcpStream> = (0..CONNS)
        .map(|_| TcpStream::connect(&listener.addr).expect("connect"))
        .collect();
    for (c, conn) in conns.iter_mut().enumerate() {
        for i in 0..ASSERTS_PER_CONN {
            let line = format!(
                r#"{{"id": "a{c}-{i}", "op": "assert", "abox": "Manager({})"}}"#,
                fact_const(c, i)
            );
            writeln!(conn, "{line}").expect("send assert");
        }
        conn.flush().expect("flush asserts");
    }
    std::thread::sleep(std::time::Duration::from_millis(150));
    sigterm(&listener.child);

    // (a) Every pipelined request is answered, in order, then the
    // server closes the connection.
    for (c, conn) in conns.into_iter().enumerate() {
        let mut lines = BufReader::new(conn);
        for i in 0..ASSERTS_PER_CONN {
            let mut response = String::new();
            assert!(
                lines.read_line(&mut response).expect("read response") > 0,
                "conn {c}: response {i} lost in the drain"
            );
            let parsed = json::parse(response.trim_end()).expect("response parses");
            let Json::Obj(obj) = parsed else {
                panic!("conn {c}: response {i} is not an object")
            };
            assert_eq!(
                obj.get("status").and_then(Json::as_str),
                Some("ok"),
                "conn {c}: assert {i} failed: {response}"
            );
            assert_eq!(
                obj.get("id").and_then(Json::as_str),
                Some(format!("a{c}-{i}").as_str()),
                "conn {c}: response {i} out of order: {response}"
            );
        }
        let mut eof = String::new();
        assert_eq!(
            lines.read_line(&mut eof).expect("read eof"),
            0,
            "conn {c}: expected EOF after drain, got {eof}"
        );
    }
    let mut child = listener.child;
    let status = child.wait().expect("wait for drained server");
    assert!(status.success(), "drained server exited with {status}");
    let stderr = listener.stderr.join().expect("stderr thread");
    assert!(
        stderr.contains("final snapshot cut"),
        "drain summary missing the final snapshot: {stderr}"
    );

    // (b) Two independent restarts over the same --data-dir answer the
    // session query byte-identically, and the store holds exactly the
    // acknowledged facts.
    let mut restart = Serve::spawn(&dir, &["--threads", "1"]);
    let first = restart.request(&session_query("q-restart-1"));
    restart.finish();
    let mut restart = Serve::spawn(&dir, &["--threads", "1"]);
    let second = restart.request(&session_query("q-restart-2"));
    restart.finish();

    let (_, first_answers) = answers_of(&first).expect("first restart answers");
    let (_, second_answers) = answers_of(&second).expect("second restart answers");
    assert_eq!(
        first_answers, second_answers,
        "restarts over the same data dir diverged"
    );
    let mut expected: Vec<String> = (0..CONNS)
        .flat_map(|c| (0..ASSERTS_PER_CONN).map(move |i| fact_const(c, i)))
        .collect();
    expected.sort();
    assert_eq!(
        constants_of(&first_answers),
        expected,
        "recovered store does not hold exactly the acknowledged facts"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
