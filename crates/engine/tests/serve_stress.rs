//! Stress tests for the hardened serving path: single-flight plan
//! compilation under thread contention, LRU capacity bounds, budget
//! exhaustion, panic isolation, and the E16 adversarial request stream
//! (see EXPERIMENTS.md) — all through the public `ServeSession` JSONL
//! surface.

use gomq_engine::cache::PlanCache;
use gomq_engine::{Engine, Limits, ServeConfig, ServeSession, ServeShared};
use std::sync::Arc;
use std::thread;

fn request(id: &str, ontology: &str, query: &str, abox: &str) -> String {
    format!(
        r#"{{"id": "{id}", "ontology": "{}", "query": "{query}", "abox": "{}"}}"#,
        ontology.replace('\n', "\\n"),
        abox.replace('\n', "\\n"),
    )
}

/// N threads hammer one shared engine with the same small set of OMQs:
/// every distinct OMQ compiles exactly once (single flight), everything
/// else is a verified cache hit, and every response is correct.
#[test]
fn concurrent_sessions_compile_each_omq_once() {
    const THREADS: usize = 8;
    const ITERS: usize = 5;
    const OMQS: usize = 4;
    let shared = Arc::new(ServeShared::with_config(ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    }));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let mut session = ServeSession::with_shared(shared);
                for iter in 0..ITERS {
                    for omq in 0..OMQS {
                        let ontology = format!("K{omq}A sub K{omq}B\nK{omq}B sub K{omq}C");
                        let abox = format!("K{omq}A(t{t}i{iter})");
                        let resp = session.handle_line(&request(
                            &format!("t{t}-{iter}-{omq}"),
                            &ontology,
                            &format!("K{omq}C"),
                            &abox,
                        ));
                        assert!(
                            resp.contains("\"status\": \"ok\""),
                            "thread {t} iter {iter} omq {omq}: {resp}"
                        );
                        assert!(
                            resp.contains(&format!(r#"[["t{t}i{iter}"]]"#)),
                            "wrong answers: {resp}"
                        );
                    }
                }
            });
        }
    });
    let stats = shared.engine().stats();
    let lookups = (THREADS * ITERS * OMQS) as u64;
    assert_eq!(stats.cache_misses, OMQS as u64, "one compile per OMQ");
    assert_eq!(stats.cache_hits, lookups - OMQS as u64);
    assert_eq!(stats.cache_size, OMQS as u64);
    assert_eq!(stats.requests, lookups);
    assert_eq!(stats.overloaded, 0);
    assert_eq!(stats.panics, 0);
}

/// A capacity-2 cache serving four OMQs never grows past its cap and
/// keeps answering correctly through evictions and recompiles.
#[test]
fn lru_cache_stays_bounded_across_requests() {
    let mut session = ServeSession::with_config(ServeConfig {
        threads: 1,
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    for round in 0..3 {
        for omq in 0..4 {
            let ontology = format!("L{omq}A sub L{omq}B");
            let resp = session.handle_line(&request(
                &format!("r{round}-{omq}"),
                &ontology,
                &format!("L{omq}B"),
                &format!("L{omq}A(c{round})"),
            ));
            assert!(resp.contains("\"status\": \"ok\""), "{resp}");
            assert!(resp.contains(&format!(r#"[["c{round}"]]"#)), "{resp}");
            assert!(session.engine().cache().len() <= 2, "cache over capacity");
        }
    }
    let stats = session.engine().stats();
    assert!(stats.cache_size <= 2);
    assert!(stats.cache_evictions >= 2, "stats: {stats:?}");
    // Cycling through 4 OMQs with room for 2 forces recompiles.
    assert!(stats.cache_misses > 4, "stats: {stats:?}");
}

/// A budget-exhausted request answers "overloaded" and leaves the
/// session fully serviceable — including for the very same OMQ.
#[test]
fn exhausted_budgets_leave_the_session_healthy() {
    let mut session = ServeSession::with_threads(2);
    let chain = (0..10)
        .map(|i| format!("C{i} sub C{}\n", i + 1))
        .collect::<String>();
    let big_abox = (0..100).map(|i| format!("C0(x{i})\n")).collect::<String>();
    let mut blow = request("blow", &chain, "C10", &big_abox);
    blow.truncate(blow.len() - 1);
    blow.push_str(r#", "limits": {"max_derived": 5}}"#);
    let resp = session.handle_line(&blow);
    assert!(resp.contains("\"status\": \"overloaded\""), "{resp}");
    assert!(resp.contains("\"limit\": \"derived\""), "{resp}");

    let mut timed = request("timed", &chain, "C10", "C0(y)");
    timed.truncate(timed.len() - 1);
    timed.push_str(r#", "limits": {"timeout_ms": 0}}"#);
    let resp = session.handle_line(&timed);
    assert!(resp.contains("\"status\": \"overloaded\""), "{resp}");
    assert!(resp.contains("\"limit\": \"deadline\""), "{resp}");

    // Unlimited retry of the same OMQ (already cached) succeeds.
    let resp = session.handle_line(&request("ok", &chain, "C10", "C0(z)"));
    assert!(resp.contains("\"status\": \"ok\""), "{resp}");
    assert!(resp.contains(r#"[["z"]]"#), "{resp}");
    let stats = session.engine().stats();
    assert_eq!(stats.overloaded, 2);
    assert_eq!(stats.cache_misses, 1, "one compile covers all three");
}

/// The E16 adversarial stream: a forced-collision cache (every OMQ
/// hashes to the same bucket), a non-rewritable OMQ, a budget-blowing
/// ABox, and a panicking input — interleaved with good requests. Every
/// line gets a structured response, later answers stay correct, and the
/// cache never exceeds its cap.
#[test]
fn adversarial_stream_is_fully_survivable() {
    fn colliding(_: &str) -> u64 {
        0x42
    }
    let engine = Engine::with_cache(2, PlanCache::with_capacity_and_hasher(2, colliding));
    let shared = Arc::new(ServeShared::with_engine(engine, Limits::default()));
    let mut session = ServeSession::with_shared(Arc::clone(&shared));

    // A 21-concept cycle: its closure needs more than 20 bits, which the
    // element-type construction rejects — a protocol-reachable
    // non-rewritable OMQ.
    let big_cycle = (0..21)
        .map(|i| format!("A{i} sub A{}\n", (i + 1) % 21))
        .collect::<String>();
    let chain = (0..10)
        .map(|i| format!("C{i} sub C{}\n", i + 1))
        .collect::<String>();
    let big_abox = (0..100).map(|i| format!("C0(x{i})\n")).collect::<String>();
    let mut blow = request("blow", &chain, "C10", &big_abox);
    blow.truncate(blow.len() - 1);
    blow.push_str(r#", "limits": {"max_derived": 5}}"#);

    let stream: Vec<(String, &str)> = vec![
        // Two different OMQs that collide in the hash: the full-text
        // check must keep their plans apart.
        (request("c1", "P sub Q", "Q", "P(p)"), r#"[["p"]]"#),
        (request("c2", "X sub Y", "Y", "X(x)"), r#"[["x"]]"#),
        // Non-rewritable: structured error, negatively cached.
        (
            request("nr", &big_cycle, "A0", "A0(a)"),
            "not element-type rewritable",
        ),
        // Budget blowup.
        (blow, "\"status\": \"overloaded\""),
        // Panicking input (arity clash on R inside the DL parser).
        (
            request("boom", "A sub ex R.A\nR sub B", "B", ""),
            "panic isolated",
        ),
        // The same colliding OMQs again: still correct, now cache hits
        // (or clean recompiles after eviction, never wrong answers).
        (request("c1b", "P sub Q", "Q", "P(pp)"), r#"[["pp"]]"#),
        (request("c2b", "X sub Y", "Y", "X(xx)"), r#"[["xx"]]"#),
        // The non-rewritable OMQ again: the cached failure replays.
        (
            request("nrb", &big_cycle, "A0", "A0(a)"),
            "not element-type rewritable",
        ),
        // And a fresh good request to close the stream.
        (request("end", "M sub N", "N", "M(m)"), r#"[["m"]]"#),
    ];
    for (line, expect) in &stream {
        let resp = session.handle_line(line);
        assert!(resp.contains(expect), "expected {expect:?} in {resp}");
        assert!(
            resp.contains("\"status\": "),
            "unstructured response: {resp}"
        );
        assert!(
            session.engine().cache().len() <= 2,
            "cache exceeded its cap mid-stream"
        );
    }
    let stats = shared.engine().stats();
    assert!(stats.panics >= 1, "stats: {stats:?}");
    assert!(stats.overloaded >= 1, "stats: {stats:?}");
    assert!(stats.cache_size <= 2, "stats: {stats:?}");
}
