//! Chaos-build check for incremental view maintenance: with panic
//! faults injected at the `ivm.apply` seam (the entry of every view
//! sync and rollback maintenance), a views-on session must never
//! answer a query *wrongly* — a fault either surfaces as an isolated
//! `"status": "error"` (sync path, view dropped and rebuilt next time)
//! or is swallowed by the rollback fence (view dropped) — and every
//! `"ok"` answer must still equal full recompute.
//!
//! This lives in its own integration binary because the fault plan is
//! process-global: installing it next to the fault-free `ivm_props`
//! cases would poison their assertions.

#![cfg(feature = "chaos")]

use gomq_engine::faults::{self, FaultKind, FaultPlan, IVM_APPLY};
use gomq_engine::json::{self, Json};
use gomq_engine::{ServeConfig, ServeSession};

/// The `"answers"` of an `"ok"` query response; `None` for failures.
fn query_answers(response: &str) -> Option<Json> {
    let parsed = json::parse(response).unwrap_or_else(|e| panic!("bad JSON ({e}): {response}"));
    let Json::Obj(obj) = parsed else {
        panic!("response is not an object: {response}")
    };
    match obj.get("status").and_then(Json::as_str) {
        Some("ok") => Some(
            obj.get("answers")
                .cloned()
                .expect("query response has answers"),
        ),
        _ => None,
    }
}

fn session(max_views: usize) -> ServeSession {
    ServeSession::with_config(ServeConfig {
        threads: 1,
        max_views,
        ..ServeConfig::default()
    })
}

#[test]
fn ivm_faults_never_corrupt_answers() {
    let ontology = r"A sub B\nB sub C";
    let query = |id: usize| {
        format!(r#"{{"id": "q{id}", "ontology": "{ontology}", "query": "C", "session": true}}"#)
    };
    // A deterministic mixed script: asserts and queries with a mark /
    // rollback cycle, long enough for period-3 faults to fire often.
    let mut lines = Vec::new();
    for round in 0..12 {
        lines.push(format!(r#"{{"op": "assert", "abox": "A(x{round})"}}"#));
        if round == 4 {
            lines.push(r#"{"op": "mark"}"#.to_owned());
        }
        if round == 8 {
            lines.push(r#"{"op": "rollback", "mark": 0}"#.to_owned());
        }
        lines.push(query(round));
    }

    for seed in [1u64, 7, 42] {
        faults::install(FaultPlan::new(seed).rule(IVM_APPLY, FaultKind::Panic, 3));
        let mut on = session(4);
        let mut off = session(0); // never touches the IVM_APPLY seam
        let mut ok_answers = 0u64;
        let mut isolated = 0u64;
        for line in &lines {
            let a = on.handle_line(line);
            let b = off.handle_line(line);
            if !line.contains("\"session\": true") {
                continue;
            }
            let expect = query_answers(&b).expect("recompute oracle must succeed");
            match query_answers(&a) {
                Some(got) => {
                    assert_eq!(
                        got, expect,
                        "maintained answers diverged under ivm.apply faults (seed {seed}) \
                         on {line}\nmaintained: {a}\nrecompute: {b}"
                    );
                    ok_answers += 1;
                }
                None => isolated += 1, // fault fired mid-sync, fence held
            }
        }
        faults::uninstall();
        assert!(
            ok_answers > 0,
            "seed {seed}: every query faulted — the drop-and-rebuild path never ran"
        );
        // The engine's own telemetry saw the injected faults (directly as
        // error responses or swallowed by the rollback maintenance fence).
        let stats = on.engine().stats();
        assert!(
            isolated == 0 || stats.panics > 0 || stats.faults_injected > 0,
            "isolated failures must be visible in the engine totals"
        );
    }
}
