//! Shared driver for integration tests that spawn the `gomq-serve`
//! binary: a request-by-request stdin-mode harness and the response
//! comparison helpers the recovery tests judge equivalence with.
//!
//! Each integration test compiles this module independently, so not
//! every test uses every helper.
#![allow(dead_code)]

use gomq_engine::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// A fresh per-process scratch directory for a `--data-dir`.
pub fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gomq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running stdin-mode `gomq-serve` driven one acknowledged request at
/// a time.
pub struct Serve {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Serve {
    /// Spawns `gomq-serve --data-dir <dir> <extra...>` with piped
    /// stdin/stdout.
    pub fn spawn(dir: &Path, extra: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gomq-serve"))
            .arg("--data-dir")
            .arg(dir)
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gomq-serve");
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        Serve {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and blocks for its response — the request
    /// is *acknowledged* once this returns, so a later kill must not
    /// lose its effect.
    pub fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut response = String::new();
        self.stdout.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "server died before responding");
        response.trim_end().to_owned()
    }

    /// SIGKILL — no flush, no shutdown hook, the hard crash.
    pub fn kill(mut self) {
        self.child.kill().expect("kill gomq-serve");
        let _ = self.child.wait();
    }

    /// Orderly EOF shutdown.
    pub fn finish(self) {
        drop(self.stdin);
        let mut child = self.child;
        let _ = child.wait();
    }
}

/// Extracts `(id, answers)` from a query response; `None` for mutation
/// acknowledgements. Engine counters and cache flags legitimately
/// differ across restarts, so equivalence is judged on answers alone.
pub fn answers_of(response: &str) -> Option<(String, Json)> {
    let parsed = json::parse(response).unwrap_or_else(|e| panic!("bad JSON ({e}): {response}"));
    let Json::Obj(obj) = parsed else {
        panic!("response is not an object: {response}")
    };
    assert_eq!(
        obj.get("status").and_then(Json::as_str),
        Some("ok"),
        "unexpected failure response: {response}"
    );
    let id = obj.get("id").and_then(Json::as_str)?.to_owned();
    Some((id, obj.get("answers").cloned().expect("query has answers")))
}
