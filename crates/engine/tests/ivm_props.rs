//! Property tests for incremental view maintenance: random session
//! scripts (asserts, marks, rollbacks, session queries) driven through
//! a views-on serving session must answer every query identically to a
//! views-off oracle that recomputes each fixpoint from scratch — in
//! memory, and across a drop-and-recover restart over the same WAL.
//! A separate binary-level test SIGKILLs `gomq-serve` with an active
//! materialization and checks the recovered session answers
//! byte-identically.

mod common;

use common::{tmpdir, Serve};
use gomq_engine::json::{self, Json};
use gomq_engine::{ServeConfig, ServeSession};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// The OMQ pool: three distinct plans so a small view cap sees LRU
/// eviction and rebuild, not just steady-state hits.
const OMQS: &[(&str, &str)] = &[
    (r"A sub B\nB sub C", "C"),
    (r"Manager sub Employee\nEmployee sub Staff", "Staff"),
    ("A sub B", "B"),
];

/// Relations the asserts draw from: every OMQ sees base facts both of
/// its body relations and of unrelated ones.
const RELS: &[&str] = &["A", "B", "C", "Manager", "Employee", "Staff"];

#[derive(Clone, Debug)]
enum Op {
    /// Assert a small batch of `REL(k<n>)` facts (duplicates allowed).
    Assert(Vec<(u8, u8)>),
    /// Take a rollback mark.
    Mark,
    /// Roll back to a previously taken mark (index into the valid ones).
    Rollback(u8),
    /// Pose OMQ `i` with `"session": true`.
    Query(u8),
}

fn assert_op() -> impl Strategy<Value = Op> {
    vec((0u8..RELS.len() as u8, 0u8..12), 1..4).prop_map(Op::Assert)
}

fn query_op() -> impl Strategy<Value = Op> {
    (0u8..OMQS.len() as u8).prop_map(Op::Query)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's prop_oneof! has no weighted arms; repeating an arm
    // biases the stream toward asserts and queries.
    prop_oneof![
        assert_op(),
        assert_op(),
        Just(Op::Mark),
        (0u8..8).prop_map(Op::Rollback),
        query_op(),
        query_op(),
    ]
}

/// Renders the ops into concrete request lines. Mark ids and store
/// lengths are deterministic (ids count up from 0; asserts dedup in
/// insertion order; rollback truncates), so the valid-mark bookkeeping
/// is simulated client-side and every rollback names a live mark.
fn script_lines(ops: &[Op]) -> Vec<String> {
    let mut store: Vec<String> = Vec::new(); // unique facts, insertion order
    let mut marks: Vec<(u64, usize)> = Vec::new(); // valid (id, len)
    let mut next_mark = 0u64;
    let mut q = 0usize;
    let mut lines = Vec::new();
    for op in ops {
        match op {
            Op::Assert(batch) => {
                let mut parts = Vec::new();
                for &(r, k) in batch {
                    let fact = format!("{}(k{k})", RELS[r as usize % RELS.len()]);
                    if !store.contains(&fact) {
                        store.push(fact.clone());
                    }
                    parts.push(fact);
                }
                lines.push(format!(
                    r#"{{"op": "assert", "abox": "{}"}}"#,
                    parts.join(r"\n")
                ));
            }
            Op::Mark => {
                marks.push((next_mark, store.len()));
                next_mark += 1;
                lines.push(r#"{"op": "mark"}"#.to_owned());
            }
            Op::Rollback(i) => {
                if marks.is_empty() {
                    continue;
                }
                let (id, len) = marks[*i as usize % marks.len()];
                store.truncate(len);
                marks.retain(|&(_, l)| l <= len);
                lines.push(format!(r#"{{"op": "rollback", "mark": {id}}}"#));
            }
            Op::Query(i) => {
                let (ontology, query) = OMQS[*i as usize % OMQS.len()];
                q += 1;
                lines.push(format!(
                    r#"{{"id": "q{q}", "ontology": "{ontology}", "query": "{query}", "session": true}}"#
                ));
            }
        }
    }
    lines
}

/// An in-memory serving session with the given view-registry capacity.
fn session(max_views: usize) -> ServeSession {
    ServeSession::with_config(ServeConfig {
        threads: 1,
        max_views,
        ..ServeConfig::default()
    })
}

/// The `"answers"` of an `"ok"` query response; `None` for failures.
fn query_answers(response: &str) -> Option<Json> {
    let parsed = json::parse(response).unwrap_or_else(|e| panic!("bad JSON ({e}): {response}"));
    let Json::Obj(obj) = parsed else {
        panic!("response is not an object: {response}")
    };
    match obj.get("status").and_then(Json::as_str) {
        Some("ok") => Some(
            obj.get("answers")
                .cloned()
                .expect("query response has answers"),
        ),
        _ => None,
    }
}

/// Feeds identical lines to the maintained session and the recompute
/// oracle; every session query must agree.
fn drive_and_compare(lines: &[String], on: &mut ServeSession, off: &mut ServeSession) {
    for line in lines {
        let a = on.handle_line(line);
        let b = off.handle_line(line);
        if !line.contains("\"session\": true") {
            continue;
        }
        let expect = query_answers(&b).expect("oracle query must succeed");
        let got = query_answers(&a).expect("maintained query must succeed");
        assert_eq!(
            got, expect,
            "maintained answers diverged from recompute on {line}\nmaintained: {a}\nrecompute: {b}"
        );
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per generated case.
fn case_dir(tag: &str) -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gomq-ivm-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: a session whose queries are answered by
    /// counting-DRed maintained views (with a deliberately tiny LRU cap,
    /// so eviction and rebuild happen too) agrees with full recompute on
    /// every query of every random script.
    #[test]
    fn maintained_answers_match_recompute(ops in vec(op_strategy(), 1..32)) {
        let lines = script_lines(&ops);
        let mut on = session(2);
        let mut off = session(0);
        drive_and_compare(&lines, &mut on, &mut off);
    }

    /// Same invariant across a restart: the script is split, the durable
    /// views-on session is dropped mid-stream, and a fresh session
    /// recovered from the snapshot + WAL (with an empty view registry)
    /// must keep agreeing with an uninterrupted in-memory oracle.
    #[test]
    fn maintained_views_agree_after_wal_replay(
        ops in vec(op_strategy(), 1..24),
        split in 0usize..24,
    ) {
        let lines = script_lines(&ops);
        let split = split.min(lines.len());
        let dir = case_dir("replay");
        let durable = |_tag: &str| ServeSession::with_config(ServeConfig {
            threads: 1,
            max_views: 2,
            data_dir: Some(dir.clone()),
            snapshot_every: 3,
            ..ServeConfig::default()
        });
        let mut off = session(0);
        {
            let mut on = durable("a");
            drive_and_compare(&lines[..split], &mut on, &mut off);
        } // dropped: recovery must rebuild from snapshot + WAL alone
        let mut on = durable("b");
        drive_and_compare(&lines[split..], &mut on, &mut off);
        drop(on);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The raw `"answers": [...]` bytes of a query response, so restart
/// equivalence is judged byte-for-byte, not just structurally.
fn raw_answers(response: &str) -> String {
    let start = response
        .find("\"answers\": ")
        .unwrap_or_else(|| panic!("no answers in {response}"));
    let end = response
        .find(", \"stats\"")
        .unwrap_or_else(|| panic!("no stats in {response}"));
    response[start..end].to_owned()
}

/// Acceptance: a server with an *active materialization* (a maintained
/// view serving repeat queries) is SIGKILLed and restarted over the same
/// data directory; the recovered session must answer every remaining
/// query byte-identically to an uninterrupted run.
#[test]
fn maintained_views_survive_sigkill_and_replay() {
    let extra = [
        "--threads",
        "1",
        "--snapshot-every",
        "3",
        "--max-views",
        "4",
    ];
    let ontology = r"A sub B\nB sub C";
    let query = |id: usize| {
        format!(r#"{{"id": "q{id}", "ontology": "{ontology}", "query": "C", "session": true}}"#)
    };
    let assert_line = |facts: &str| format!(r#"{{"op": "assert", "abox": "{facts}"}}"#);
    let lines = vec![
        assert_line(r"A(x0)\nB(y0)"),
        query(0), // builds + registers the materialization
        assert_line("A(x1)"),
        query(1), // maintained hit
        r#"{"op": "mark"}"#.to_owned(),
        assert_line(r"A(x2)\nA(x3)"),
        query(2), // maintained hit, view is hot at the kill point
        // ---- kill point: 7 acknowledged requests ----
        r#"{"op": "rollback", "mark": 0}"#.to_owned(),
        query(3),
        assert_line("A(x4)"),
        query(4),
    ];
    let kill_after = 7;

    let run = |dir: &std::path::Path, kill: bool| -> Vec<String> {
        let mut answers = Vec::new();
        let mut serve = Some(Serve::spawn(dir, &extra));
        for (i, line) in lines.iter().enumerate() {
            if kill && i == kill_after {
                serve.take().expect("server running").kill();
                serve = Some(Serve::spawn(dir, &extra));
            }
            let response = serve.as_mut().expect("server running").request(line);
            if line.contains("\"session\": true") {
                answers.push(raw_answers(&response));
            }
        }
        serve.take().expect("server running").finish();
        answers
    };

    let base_dir = tmpdir("ivm-base");
    let base = run(&base_dir, false);
    assert_eq!(base.len(), 5, "the script poses five queries");
    let kill_dir = tmpdir("ivm-kill");
    let got = run(&kill_dir, true);
    assert_eq!(
        got, base,
        "recovered session answers diverged byte-for-byte after SIGKILL"
    );
    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}
