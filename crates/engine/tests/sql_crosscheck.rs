//! Native ≡ SQL cross-check: every generated non-recursive OMQ answers
//! identically on the native fixpoint backend and on the emitted-SQL
//! backend, and every recursive one is refused with the typed
//! `non-rewritable-to-sql` status — never answered wrongly.
//!
//! The two pipelines share nothing past the `PlanIr`: the native path
//! evaluates rule structs semi-naively over interned term columns, the
//! SQL path renders text and runs it on the `gomq-sqlexec` nested-loop
//! executor over string tables. Agreement is therefore strong evidence
//! that both implement the same certain-answer semantics.

use gomq_core::{IndexedInstance, Vocab};
use gomq_datalog::Budget;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::{Engine, Limits, OmqPlan, ServeConfig, ServeSession};
use proptest::prelude::*;
use std::sync::Mutex;

/// Renders a random pure concept hierarchy — always acyclic, so every
/// draw must compile to SQL.
fn hierarchy_text(axioms: &[(u8, u8)]) -> String {
    let mut text = String::new();
    for &(i, j) in axioms {
        text.push_str(&format!("A{} sub A{}\n", i % 5, j % 5));
    }
    text
}

/// Renders a random Horn ontology that may include existential role
/// axioms — those typically make the rewriting recursive.
fn role_text(axioms: &[(u8, u8, u8)]) -> String {
    let mut text = String::new();
    for &(i, j, kind) in axioms {
        let (a, b) = (i % 4, j % 4);
        match kind % 3 {
            0 => text.push_str(&format!("A{a} sub A{b}\n")),
            1 => text.push_str(&format!("A{a} sub ex R.A{b}\n")),
            _ => text.push_str(&format!("ex R.A{a} sub A{b}\n")),
        }
    }
    text
}

/// Renders one random ABox text (concept and role assertions).
fn abox_text(facts: &[(u8, u8, u8)], roles: bool) -> String {
    let mut text = String::new();
    for &(r, c1, c2) in facts {
        match r % 6 {
            5 if roles => text.push_str(&format!("R(c{},c{})\n", c1 % 6, c2 % 6)),
            a => text.push_str(&format!("A{}(c{})\n", a % 5, c1 % 6)),
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure hierarchies always emit SQL, and the SQL answers equal the
    /// native answers on every random ABox.
    #[test]
    fn hierarchy_omqs_agree_across_backends(
        axioms in proptest::collection::vec((0u8..5, 0u8..5), 1..8),
        facts in proptest::collection::vec(
            (proptest::arbitrary::any::<u8>(), 0u8..6, 0u8..6),
            0..20,
        ),
        query_choice in 0u8..5,
    ) {
        let mut v = Vocab::new();
        let dl = parse_ontology(&hierarchy_text(&axioms), &mut v)
            .expect("generated ontology must parse");
        let o = to_gf(&dl);
        let query = match v.find_rel(&format!("A{}", query_choice % 5)) {
            Some(r) => r,
            None => return Ok(()), // queried concept absent in this draw
        };
        let plan = OmqPlan::compile(&o, query, &mut v)
            .expect("hierarchies are Horn, hence rewritable");
        prop_assert!(
            plan.sql.is_ok(),
            "a pure hierarchy must emit SQL, got {:?}",
            plan.sql.as_ref().err()
        );
        let abox = gomq_core::parse::parse_instance(&abox_text(&facts, false), &mut v)
            .expect("generated abox must parse");
        let indexed = IndexedInstance::from_interpretation(&abox);
        let engine = Engine::with_threads(2);
        let (native, _) = engine.answer_indexed(&plan, &indexed);
        let vocab = Mutex::new(v);
        let (sql, _) = engine
            .answer_indexed_sql(&plan, &indexed, &Budget::UNLIMITED, &vocab)
            .expect("non-recursive plan must run on the SQL backend");
        prop_assert_eq!(&sql, &native);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Role-bearing OMQs through the full serve path with
    /// `"backend": "sql"`: when the plan emits SQL the answers equal
    /// the native backend's, and when it does not the response is the
    /// typed refusal — a wrong answer set is never produced.
    #[test]
    fn served_sql_requests_agree_or_refuse(
        axioms in proptest::collection::vec((0u8..4, 0u8..4, 0u8..3), 1..6),
        facts in proptest::collection::vec(
            (proptest::arbitrary::any::<u8>(), 0u8..6, 0u8..6),
            0..15,
        ),
        query_choice in 0u8..4,
    ) {
        let onto = role_text(&axioms);
        let query = format!("A{}", query_choice % 4);
        if !onto.contains(&query) {
            return Ok(()); // queried concept absent in this draw
        }
        let abox = abox_text(&facts, true);
        let mut s = ServeSession::with_config(ServeConfig {
            threads: 2,
            limits: Limits::default(),
            ..ServeConfig::default()
        });
        let line = |backend: &str| {
            format!(
                r#"{{"ontology": {}, "query": {}, "abox": {}, "backend": "{backend}"}}"#,
                json_str(&onto),
                json_str(&query),
                json_str(&abox),
            )
        };
        let native = s.handle_line(&line("native"));
        let sql = s.handle_line(&line("sql"));
        if native.contains("\"status\": \"error\"") {
            // The OMQ itself is not rewritable (outside the element-type
            // class); the SQL backend must agree it is unanswerable.
            prop_assert!(!sql.contains("\"status\": \"ok\""), "sql answered: {sql}");
            return Ok(());
        }
        prop_assert!(native.contains("\"status\": \"ok\""), "native failed: {native}");
        if sql.contains("\"status\": \"non-rewritable-to-sql\"") {
            prop_assert!(sql.contains("recursive"), "untyped refusal: {sql}");
        } else {
            prop_assert!(sql.contains("\"status\": \"ok\""), "sql failed: {sql}");
            prop_assert_eq!(answers_of(&native), answers_of(&sql));
        }
        // Whatever happened, the session stays healthy.
        let again = s.handle_line(&line("native"));
        prop_assert!(again.contains("\"status\": \"ok\"") || again.contains("\"status\": \"error\""));
    }
}

/// JSON-encodes a string (the serve protocol takes ontology/ABox text
/// inline).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the `"answers": [...]` slice of a response for comparison.
fn answers_of(response: &str) -> String {
    let from = response
        .find("\"answers\": ")
        .unwrap_or_else(|| panic!("no answers in {response}"));
    let to = response[from..]
        .find(", \"stats\"")
        .map(|i| from + i)
        .unwrap_or(response.len());
    response[from..to].to_string()
}

/// The paper's example families from `examples/data`, deterministically:
/// the role-free org chart runs on both backends with equal answers;
/// the role-bearing company ontology is SQL-refused but natively
/// answered; the transitive anatomy ontology is not rewritable at all.
#[test]
fn example_families_cross_check() {
    let read = |name: &str| {
        std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../examples/data")
                .join(name),
        )
        .unwrap()
    };
    let mut s = ServeSession::with_threads(2);
    let line = |onto: &str, query: &str, abox: &str, backend: &str| {
        format!(
            r#"{{"ontology": {}, "query": {}, "abox": {}, "backend": "{backend}"}}"#,
            json_str(onto),
            json_str(query),
            json_str(abox),
        )
    };

    let org = read("org.dl");
    let org_facts = read("org.facts");
    let native = s.handle_line(&line(&org, "Person", &org_facts, "native"));
    let sql = s.handle_line(&line(&org, "Person", &org_facts, "sql"));
    assert!(native.contains("\"status\": \"ok\""), "native: {native}");
    assert!(sql.contains("\"status\": \"ok\""), "sql: {sql}");
    assert_eq!(answers_of(&native), answers_of(&sql));
    for name in ["ada", "grace", "alan"] {
        assert!(
            sql.contains(&format!("[\"{name}\"]")),
            "missing {name}: {sql}"
        );
    }

    let company = read("company.dl");
    let company_facts = read("company.facts");
    let native = s.handle_line(&line(&company, "Employee", &company_facts, "native"));
    let refused = s.handle_line(&line(&company, "Employee", &company_facts, "sql"));
    assert!(native.contains("\"status\": \"ok\""), "native: {native}");
    assert!(
        refused.contains("\"status\": \"non-rewritable-to-sql\""),
        "expected typed refusal: {refused}"
    );

    let anatomy = read("anatomy.dl");
    let anatomy_facts = read("anatomy.facts");
    let err = s.handle_line(&line(&anatomy, "Organ", &anatomy_facts, "sql"));
    assert!(err.contains("\"status\": \"error\""), "anatomy: {err}");
}
