//! Kill-and-restart equivalence for the `gomq-serve` binary.
//!
//! A scripted session (asserts, marks, rollbacks, session queries) is
//! driven request-by-request, waiting for each acknowledgement. The
//! server is then SIGKILLed at several distinct points mid-stream — in
//! one case with a torn half-frame appended to the WAL to model a crash
//! mid-`write(2)` — restarted over the same `--data-dir`, and fed the
//! remaining requests. Every query must answer byte-identically to an
//! uninterrupted run of the same script.

mod common;

use common::{answers_of, tmpdir, Serve};
use gomq_engine::json::Json;

/// The scripted session: interleaved mutations and session queries.
/// Returns the request lines; queries carry ids `q<n>`.
fn script() -> Vec<String> {
    let ontology = r#"Manager sub Employee\nEmployee sub Staff"#;
    let query = |id: usize| {
        format!(r#"{{"id": "q{id}", "ontology": "{ontology}", "query": "Staff", "session": true}}"#)
    };
    let assert = |facts: &str| format!(r#"{{"op": "assert", "abox": "{facts}"}}"#);
    let mut lines = Vec::new();
    let mut q = 0;
    for block in 0..6 {
        lines.push(assert(&format!("Manager(m{block})")));
        lines.push(assert(&format!("Employee(e{block})\\nStaff(s{block})")));
        if block == 2 {
            lines.push(r#"{"op": "mark"}"#.to_owned());
        }
        if block == 4 {
            // Drop blocks 3–4, then keep building on the restored state.
            lines.push(r#"{"op": "rollback", "mark": 0}"#.to_owned());
        }
        lines.push(query(q));
        q += 1;
    }
    lines.push(assert("Manager(closing)"));
    lines.push(query(q));
    lines
}

/// Runs the whole script uninterrupted and returns every query's
/// answers by id.
fn uninterrupted(extra: &[&str]) -> Vec<(String, Json)> {
    let dir = tmpdir("base");
    let mut serve = Serve::spawn(&dir, extra);
    let mut answers = Vec::new();
    for line in script() {
        let response = serve.request(&line);
        answers.extend(answers_of(&response));
    }
    serve.finish();
    std::fs::remove_dir_all(&dir).unwrap();
    answers
}

/// Kills the server after `kill_after` acknowledged requests (optionally
/// tearing the WAL tail), restarts it over the same directory, replays
/// the rest of the script, and returns every query's answers by id.
fn interrupted(kill_after: usize, tear_tail: bool, extra: &[&str]) -> Vec<(String, Json)> {
    let dir = tmpdir(&format!("kill{kill_after}"));
    let lines = script();
    assert!(kill_after < lines.len(), "kill point inside the script");
    let mut answers = Vec::new();

    let mut serve = Serve::spawn(&dir, extra);
    for line in &lines[..kill_after] {
        let response = serve.request(line);
        answers.extend(answers_of(&response));
    }
    serve.kill();
    if tear_tail {
        // A crash mid-write leaves a torn frame: half a header and
        // garbage where the checksum should be. Recovery must truncate
        // it, not refuse the log.
        use std::io::Write as _;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .expect("wal exists at the kill point");
        wal.write_all(&[0x2a, 0x00, 0x00, 0x00, 0xde, 0xad])
            .unwrap();
    }

    let mut serve = Serve::spawn(&dir, extra);
    for line in &lines[kill_after..] {
        let response = serve.request(line);
        answers.extend(answers_of(&response));
    }
    serve.finish();
    std::fs::remove_dir_all(&dir).unwrap();
    answers
}

#[test]
fn sigkill_and_restart_preserve_query_answers() {
    let extra = ["--threads", "1", "--snapshot-every", "4"];
    let base = uninterrupted(&extra);
    assert_eq!(base.len(), 7, "the script poses seven queries");
    // Three distinct injection points: before the mark, between mark and
    // rollback (with a torn WAL tail), and after the rollback.
    for (kill_after, tear) in [(3, false), (9, true), (16, false)] {
        let got = interrupted(kill_after, tear, &extra);
        assert_eq!(
            got, base,
            "answers diverged after SIGKILL at request {kill_after} (tear={tear})"
        );
    }
}

#[test]
fn fsync_mode_recovers_identically() {
    let extra = ["--threads", "1", "--snapshot-every", "3", "--fsync"];
    let base = uninterrupted(&extra);
    let got = interrupted(7, true, &extra);
    assert_eq!(got, base, "fsync run diverged after SIGKILL");
}
