//! Offline shim for the subset of the [`rand`] 0.8 API this workspace
//! uses (`SeedableRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`,
//! and the `SmallRng`/`StdRng` types).
//!
//! The build environment has no access to a crate registry, so the real
//! `rand` crate cannot be fetched. This crate provides a deterministic
//! splitmix64/xoshiro256** generator behind the same trait names. It is
//! **not** cryptographically secure and is only meant for seeded test and
//! corpus generation.
//!
//! [`rand`]: https://docs.rs/rand/0.8

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly; implemented for half-open and
/// inclusive integer ranges.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range using `draw` as an
    /// entropy source.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (draw() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (draw() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface.
pub trait Rng {
    /// Returns the next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, same construction as rand's `gen`.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// A small, fast, non-cryptographic generator (xoshiro-class in the real
/// crate; splitmix64 here, which passes the same casual-use bar).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Avoid the all-zero fixed point.
        SmallRng {
            state: state ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (public domain, Sebastiano Vigna).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The default generator; same implementation as [`SmallRng`] in this
/// shim.
pub type StdRng = SmallRng;

/// Generator type aliases, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::{SmallRng, StdRng};
}

/// The `rand::prelude` convenience re-exports.
pub mod prelude {
    pub use crate::{Rng, SampleRange, SeedableRng, SmallRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
