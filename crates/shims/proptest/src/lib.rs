//! Offline shim for the subset of the [`proptest`] 1.x API used by this
//! workspace's property tests.
//!
//! The build environment has no access to a crate registry, so the real
//! `proptest` crate cannot be fetched. This crate reimplements exactly
//! the surface the tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive` and
//!   `boxed`,
//! * [`strategy::Just`], integer-range strategies, tuple strategies,
//!   [`collection::vec`] and [`arbitrary::any`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * a deterministic [`test_runner::TestRng`] and
//!   [`test_runner::ProptestConfig`].
//!
//! Unlike the real crate there is **no shrinking** and no persistence of
//! failing cases (`*.proptest-regressions` files are ignored): a failing
//! case panics with its case index, and generation is deterministic per
//! test name, so failures are reproducible by construction.
//!
//! [`proptest`]: https://docs.rs/proptest/1

pub mod test_runner {
    //! Deterministic RNG, configuration and test-case errors.

    use std::fmt;

    /// Deterministic splitmix64 generator used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name),
        /// so each test gets an independent, reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases and defaults otherwise.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or, in the real crate, rejected) test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A test-case failure carrying a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A generator of random values of one type.
    ///
    /// Unlike the real crate a strategy here is just a cloneable value
    /// generator — there is no value tree and no shrinking.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps a strategy for subtrees into one for a node.
        /// `depth` bounds the recursion; the size hints of the real API
        /// are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            // Level k mixes all shapes of depth ≤ k uniformly, so both
            // shallow and deep values are produced at the top level.
            let mut level = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(level.clone()).boxed();
                level = Union::new(vec![level, deeper]).boxed();
            }
            level
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the expansion of [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given options; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Strategy for [`crate::arbitrary::any`].
    pub struct Any<A> {
        pub(crate) _marker: PhantomData<A>,
    }

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<A: crate::arbitrary::Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for vectors of values of `element` with a length drawn
    /// from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` path prefix (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among several strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but propagating a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but propagating a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    a,
                    b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Like `assert_ne!` but propagating a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 5, "x = {}", x);
            }
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..10, (0u32..10).prop_map(|x| x * 2))) {
            prop_assert!(a < 10);
            prop_assert_eq!(b % 2, 0);
        }

        #[test]
        fn oneof_and_recursive(depths in prop::collection::vec(nested(), 1..4)) {
            for d in depths {
                prop_assert!(d <= 4, "depth {} exceeds bound", d);
            }
        }
    }

    /// A recursive strategy counting its own nesting depth.
    fn nested() -> crate::strategy::BoxedStrategy<u32> {
        let leaf = prop_oneof![Just(0u32), Just(0u32)];
        leaf.prop_recursive(4, 16, 2, |inner| inner.prop_map(|d| d + 1))
    }

    #[test]
    fn early_return_ok_is_supported() {
        proptest! {
            fn inner(x in 0usize..10) {
                if x > 100 {
                    return Ok(());
                }
                prop_assert!(x < 10);
            }
        }
        inner();
    }
}
