//! Offline shim for the subset of the [`criterion`] 0.5 API used by this
//! workspace's benches.
//!
//! The build environment has no access to a crate registry, so the real
//! `criterion` crate cannot be fetched. This shim keeps every bench
//! compiling and *running*: `cargo bench` executes each closure with a
//! short warm-up followed by `sample_size` timed samples and prints
//! `min/median/mean` wall times per benchmark id. There are no
//! statistical comparisons, plots or HTML reports.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to the functions registered with
/// [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark (group-less).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, 20, f);
        self
    }
}

/// A parameterized benchmark identifier, `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// Trait unifying the id types accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// The full textual id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Passed to bench closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, collecting the samples configured by the caller.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up sample (discarded) also calibrates nothing fancy:
        // the shim runs a fixed number of iterations per sample, scaled
        // so very fast routines still get a measurable batch.
        black_box(routine());
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(5) {
            100
        } else if once < Duration::from_millis(1) {
            10
        } else {
            1
        };
        let n_samples = self.sample_size.max(1);
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{full:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{full:<40} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(mean),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &1usize, |b, &x| {
            b.iter(|| {
                ran += x;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
