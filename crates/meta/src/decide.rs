//! The Theorem-13 decision procedure for PTIME query evaluation.
//!
//! For ALCHIQ ontologies of depth 1 (and, via translation, the
//! corresponding uGC⁻₂(1,=) fragment), the paper proves that PTIME query
//! evaluation — equivalently materializability, equivalently
//! Datalog≠-rewritability (Theorem 7) — is decidable by examining only
//! the irreflexive bouquets of outdegree ≤ |O| over `sig(O)` (Lemma 5).
//!
//! This implementation probes each bouquet for the disjunction property
//! (appendix Theorem 17): a bouquet on which some certain disjunction has
//! no certain disjunct witnesses non-materializability and hence
//! coNP-hardness (Theorem 3); if every bouquet passes, the ontology is
//! reported PTIME. The exponential behaviour in `|O|` expected from the
//! EXPTIME-completeness result is visible in the experiment suite.

use crate::bouquet::{enumerate_bouquets, Bouquet, BouquetConfig};
use gomq_core::Vocab;
use gomq_logic::GfOntology;
use gomq_reasoning::materialize::{find_disjunction_witness, standard_candidates};
use gomq_reasoning::CertainEngine;

/// The verdict of the decision procedure.
#[derive(Debug)]
pub struct MetaVerdict {
    /// `true`: no disjunction-property violation found — PTIME /
    /// Datalog≠-rewritable (exact when `exhausted`).
    pub ptime: bool,
    /// The offending bouquet and the number of open disjuncts, if any.
    pub witness: Option<(Bouquet, usize)>,
    /// Bouquets examined.
    pub bouquets_checked: usize,
    /// Whether the bouquet space was enumerated exhaustively within the
    /// configured caps.
    pub exhausted: bool,
}

/// Decides PTIME query evaluation for a (depth ≤ 1, binary-signature)
/// ontology by bouquet probing.
pub fn decide_ptime(
    o: &GfOntology,
    engine: &CertainEngine,
    config: BouquetConfig,
    vocab: &mut Vocab,
) -> MetaVerdict {
    let unary: Vec<_> = o
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 1)
        .collect();
    let binary: Vec<_> = o
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 2)
        .collect();
    let enumeration = enumerate_bouquets(&unary, &binary, config, vocab);
    let mut checked = 0usize;
    for b in enumeration.bouquets {
        checked += 1;
        let candidates = standard_candidates(o, &b.instance, vocab);
        if let Some(w) = find_disjunction_witness(o, &b.instance, &candidates, engine, vocab) {
            return MetaVerdict {
                ptime: false,
                witness: Some((b, w.queries.len())),
                bouquets_checked: checked,
                exhausted: enumeration.exhausted,
            };
        }
    }
    MetaVerdict {
        ptime: true,
        witness: None,
        bouquets_checked: checked,
        exhausted: enumeration.exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;

    fn small_config() -> BouquetConfig {
        BouquetConfig {
            max_outdegree: 1,
            max_bouquets: 2_000,
            include_loops: false,
        }
    }

    #[test]
    fn horn_alchiq_is_ptime() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Exists(r, Box::new(Concept::Name(b))),
        );
        let o = to_gf(&dl);
        let engine = CertainEngine::new(1);
        let verdict = decide_ptime(&o, &engine, small_config(), &mut v);
        assert!(verdict.ptime, "Horn ontology is materializable");
        assert!(verdict.exhausted);
        assert!(verdict.bouquets_checked > 0);
    }

    #[test]
    fn visible_disjunction_is_conp() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
        );
        let o = to_gf(&dl);
        let engine = CertainEngine::new(1);
        let verdict = decide_ptime(&o, &engine, small_config(), &mut v);
        assert!(!verdict.ptime);
        let (bouquet, n) = verdict.witness.expect("witness");
        assert!(n >= 2);
        // The witness bouquet contains an A-labelled element.
        assert!(bouquet.instance.facts_of(a).next().is_some());
    }

    #[test]
    fn hidden_disjunction_via_forall_is_detected() {
        // A ⊑ ∀R.(B ⊔ C): the disjunction only fires on a bouquet with an
        // R-edge — exercising the need to search beyond single points.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Forall(
                r,
                Box::new(Concept::Or(vec![Concept::Name(b), Concept::Name(c)])),
            ),
        );
        let o = to_gf(&dl);
        let engine = CertainEngine::new(1);
        let verdict = decide_ptime(&o, &engine, small_config(), &mut v);
        assert!(!verdict.ptime);
        let (bouquet, _) = verdict.witness.expect("witness");
        assert!(bouquet.instance.iter().any(|f| f.args.len() == 2));
    }

    #[test]
    fn disjunction_resolved_by_subsumption_stays_ptime() {
        // A ⊑ B ⊔ C together with B ⊑ C: C is always certain, so the
        // disjunction property holds.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
        );
        dl.sub(Concept::Name(b), Concept::Name(c));
        let o = to_gf(&dl);
        let engine = CertainEngine::new(1);
        let verdict = decide_ptime(&o, &engine, small_config(), &mut v);
        assert!(verdict.ptime, "B ⊑ C resolves the disjunction");
    }
}
