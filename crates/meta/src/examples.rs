//! The paper's counterexample families.
//!
//! * **Example 7** — a uGF⁻₂(1,=) ontology with 1-materializations for
//!   every bouquet that is nonetheless *not* materializable: on
//!   `D = {S(a,a), R(a,a)}` the disjunction `∃xy R′(x,y) ∨ ∃xy S′(x,y)`
//!   is certain while neither disjunct is. It shows that for
//!   uGC⁻₂(1,=)-style languages, deciding PTIME evaluation must look past
//!   1-materializations (the paper resorts to a mosaic procedure).
//! * **Example 8** — a family `O_n` of ALC ontologies of depth 2 whose
//!   non-materializability witnesses require an `R`-chain of length `2ⁿ`:
//!   `O_n` is materializable for all trees of depth `< 2ⁿ`. The family
//!   yields the NEXPTIME-hardness of the meta problem for depth 2
//!   (Theorem 14). Hidden markers `H_P(x) = ∀y(S(x,y) → P(y))` paired
//!   with `∀x∃y(S(x,y) ∧ P(y))` cannot be preset positively by instances.

use gomq_core::{Fact, Instance, RelId, Term, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};

/// The relations of the Example 7 ontology.
pub struct Example7 {
    /// The ontology.
    pub onto: GfOntology,
    /// `R`, `S` and the derived `R′`, `S′`.
    pub rels: [RelId; 4],
}

/// Builds the Example 7 ontology:
///
/// ```text
/// ∀x(S(x,x) → (R(x,x) → (∃≠y R(x,y) ∨ ∃≠y S(x,y))))
/// ∀x(∃≠y W(y,x) → ∃y W′(x,y))          for (W,W′) ∈ {(R,R′),(S,S′)}
/// ```
pub fn example7(vocab: &mut Vocab) -> Example7 {
    let r = vocab.rel("Re7", 2);
    let s = vocab.rel("Se7", 2);
    let rp = vocab.rel("Rp7", 2);
    let sp = vocab.rel("Sp7", 2);
    let (x, y) = (LVar(0), LVar(1));
    let names = vec!["x".to_owned(), "y".to_owned()];
    let neq_succ = |w: RelId| Formula::Exists {
        qvars: vec![y],
        guard: Guard::Atom {
            rel: w,
            args: vec![x, y],
        },
        body: Box::new(Formula::Not(Box::new(Formula::Eq(x, y)))),
    };
    let neq_pred = |w: RelId| Formula::Exists {
        qvars: vec![y],
        guard: Guard::Atom {
            rel: w,
            args: vec![y, x],
        },
        body: Box::new(Formula::Not(Box::new(Formula::Eq(x, y)))),
    };
    let some_succ = |w: RelId| Formula::Exists {
        qvars: vec![y],
        guard: Guard::Atom {
            rel: w,
            args: vec![x, y],
        },
        body: Box::new(Formula::True),
    };
    let mut onto = GfOntology::new();
    // ∀x(S(x,x) → (R(x,x) → (∃≠y R(x,y) ∨ ∃≠y S(x,y)))).
    onto.push(UgfSentence::new(
        vec![x],
        Guard::Atom {
            rel: s,
            args: vec![x, x],
        },
        Formula::implies(
            Formula::Atom {
                rel: r,
                args: vec![x, x],
            },
            Formula::Or(vec![neq_succ(r), neq_succ(s)]),
        ),
        names.clone(),
    ));
    for (w, wp) in [(r, rp), (s, sp)] {
        onto.push(UgfSentence::forall_one(
            x,
            Formula::implies(neq_pred(w), some_succ(wp)),
            names.clone(),
        ));
    }
    Example7 {
        onto,
        rels: [r, s, rp, sp],
    }
}

/// The trigger instance of Example 7: `D = {S(a,a), R(a,a)}`.
pub fn example7_instance(e: &Example7, vocab: &mut Vocab) -> Instance {
    let a = vocab.constant("a_e7");
    let mut d = Instance::new();
    d.insert(Fact::consts(e.rels[1], &[a, a]));
    d.insert(Fact::consts(e.rels[0], &[a, a]));
    d
}

/// The Example-8-style counter family.
pub struct CounterFamily {
    /// The ontology `O_n` (as a guarded ontology; depth 2).
    pub onto: GfOntology,
    /// The same ontology in DL form.
    pub dl: DlOntology,
    /// The counter-bit relations `X_1..X_n`.
    pub bits: Vec<RelId>,
    /// The complement bit relations `X̄_1..X̄_n` (instances assert zeros
    /// positively; the open world cannot assert `¬X_i`).
    pub cobits: Vec<RelId>,
    /// The chain relation `R`.
    pub r: RelId,
    /// The marker-hiding relation `S` and the marker predicates.
    pub s: RelId,
    /// The head disjuncts `B₁`, `B₂`.
    pub b: [RelId; 2],
}

/// Builds the `O_n` counter ontology: an element whose counter value is 0
/// and that heads an `R`-chain counting up to `2ⁿ − 1` receives the hidden
/// marker `H_V` and triggers `B₁ ⊔ B₂`. Axioms:
///
/// 1. `⊤ ⊑ ∃S.P` for every marker predicate `P` (hiding),
/// 2. `X₁ ⊓ … ⊓ X_n ⊑ H_V` (the maximal value carries the marker),
/// 3. per-bit increment certification into `H_{OK_i}` (successor bit `i`
///    equals bit `i` XOR carry),
/// 4. `H_{OK_1} ⊓ … ⊓ H_{OK_n} ⊓ ∃R.H_V ⊑ H_V` (propagate down the chain),
/// 5. `∃R.X_i ⊓ ∃R.¬X_i ⊑ ⊥` (all `R`-successors agree on the counter),
/// 6. `¬X₁ ⊓ … ⊓ ¬X_n ⊓ H_V ⊑ B₁ ⊔ B₂` (the head disjunction).
pub fn counter_ontology(n: usize, vocab: &mut Vocab) -> CounterFamily {
    assert!(n >= 1, "the counter needs at least one bit");
    let bits: Vec<RelId> = (1..=n).map(|i| vocab.rel(&format!("Xc{i}"), 1)).collect();
    let cobits: Vec<RelId> = (1..=n).map(|i| vocab.rel(&format!("XBc{i}"), 1)).collect();
    let r = vocab.rel("Rc", 2);
    let s = vocab.rel("Sc", 2);
    let v_marker = vocab.rel("Vc", 1);
    let ok: Vec<RelId> = (1..=n).map(|i| vocab.rel(&format!("OKc{i}"), 1)).collect();
    let b1 = vocab.rel("B1c", 1);
    let b2 = vocab.rel("B2c", 1);
    let s_role = Role::new(s);
    let r_role = Role::new(r);
    let hide = |p: RelId| Concept::Forall(s_role, Box::new(Concept::Name(p)));
    let mut dl = DlOntology::new();
    // (1) Hiding: every element has an S-successor in P, so the marker
    // H_P = ∀S.P distinguishes "exactly the forced successor" from
    // "extra non-P successors" — invisible to CQs, not presettable.
    for &p in std::iter::once(&v_marker).chain(ok.iter()) {
        dl.sub(
            Concept::Top,
            Concept::Exists(s_role, Box::new(Concept::Name(p))),
        );
    }
    // Bits and complements are disjoint.
    for (&bi, &ci) in bits.iter().zip(cobits.iter()) {
        dl.sub(
            Concept::And(vec![Concept::Name(bi), Concept::Name(ci)]),
            Concept::Bot,
        );
    }
    // (2) Max value carries H_V.
    dl.sub(
        Concept::And(bits.iter().map(|&b| Concept::Name(b)).collect()),
        hide(v_marker),
    );
    // (3) Increment certification per bit: successor bit i equals bit i
    // XOR carry, where carry_i = X_1 ⊓ … ⊓ X_{i-1}.
    for i in 0..n {
        let carry: Concept = if i == 0 {
            Concept::Top
        } else {
            Concept::And(bits[..i].iter().map(|&b| Concept::Name(b)).collect())
        };
        let nocarry: Option<Concept> = if i == 0 {
            None // carry is always present at bit 1
        } else {
            Some(Concept::Or(
                cobits[..i].iter().map(|&c| Concept::Name(c)).collect(),
            ))
        };
        let one = Concept::Name(bits[i]);
        let zero = Concept::Name(cobits[i]);
        let mut cases: Vec<(Concept, Concept, Concept)> = vec![
            // (bit here, carry condition, bit at the R-successor)
            (one.clone(), carry.clone(), zero.clone()),
            (zero.clone(), carry.clone(), one.clone()),
        ];
        if let Some(nc) = nocarry {
            cases.push((one.clone(), nc.clone(), one.clone()));
            cases.push((zero.clone(), nc, zero.clone()));
        }
        for (here, cond, succ) in cases {
            dl.sub(
                Concept::And(vec![here, cond, Concept::Exists(r_role, Box::new(succ))]),
                hide(ok[i]),
            );
        }
    }
    // (4) Propagation down the chain.
    let mut lhs: Vec<Concept> = ok.iter().map(|&p| hide(p)).collect();
    lhs.push(Concept::Exists(r_role, Box::new(hide(v_marker))));
    dl.sub(Concept::And(lhs), hide(v_marker));
    // (5) All R-successors agree on the counter.
    for (&bi, &ci) in bits.iter().zip(cobits.iter()) {
        dl.sub(
            Concept::And(vec![
                Concept::Exists(r_role, Box::new(Concept::Name(bi))),
                Concept::Exists(r_role, Box::new(Concept::Name(ci))),
            ]),
            Concept::Bot,
        );
    }
    // (6) Head disjunction at value 0.
    let mut head: Vec<Concept> = cobits.iter().map(|&c| Concept::Name(c)).collect();
    head.push(hide(v_marker));
    dl.sub(
        Concept::And(head),
        Concept::Or(vec![Concept::Name(b1), Concept::Name(b2)]),
    );
    let onto = to_gf(&dl);
    CounterFamily {
        onto,
        dl,
        bits,
        cobits,
        r,
        s,
        b: [b1, b2],
    }
}

/// The counting-chain instance for `O_n`: elements `0..len` linked by
/// `R`, with the binary counter value `k` written on element `k`.
pub fn counter_chain(family: &CounterFamily, len: usize, vocab: &mut Vocab) -> Instance {
    let mut d = Instance::new();
    let node = |vocab: &mut Vocab, k: usize| vocab.constant(&format!("cc{k}"));
    for k in 0..len {
        let nk = node(vocab, k);
        for i in 0..family.bits.len() {
            if k & (1 << i) != 0 {
                d.insert(Fact::consts(family.bits[i], &[nk]));
            } else {
                d.insert(Fact::consts(family.cobits[i], &[nk]));
            }
        }
        if k + 1 < len {
            let nk1 = node(vocab, k + 1);
            d.insert(Fact::consts(family.r, &[nk, nk1]));
        }
    }
    d
}

/// The head element of a counter chain.
pub fn chain_head(vocab: &mut Vocab) -> Term {
    Term::Const(vocab.constant("cc0"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::query::CqBuilder;
    use gomq_core::Ucq;
    use gomq_dl::depth::ontology_depth;
    use gomq_logic::fragment::{classify, Fragment};
    use gomq_reasoning::materialize::{boolean_candidates, find_disjunction_witness};
    use gomq_reasoning::CertainEngine;

    #[test]
    fn example7_is_ugf_minus_2_1_eq_shape() {
        let mut v = Vocab::new();
        let e = example7(&mut v);
        let frags = classify(&e.onto, &v);
        // Equality in bodies, two variables, depth 1 — but the first
        // sentence's outer guard is the atom S(x,x), so the ontology sits
        // in uGF₂(1,=) (not the ·⁻ fragment).
        assert!(frags.contains(&Fragment::Ugf2_1Eq));
    }

    #[test]
    fn example7_is_not_materializable_on_trigger() {
        let mut v = Vocab::new();
        let e = example7(&mut v);
        let d = example7_instance(&e, &mut v);
        let engine = CertainEngine::new(2);
        // The Boolean disjunction R′ ∨ S′ is certain, neither disjunct is.
        let candidates = boolean_candidates(&e.onto, &v);
        let w = find_disjunction_witness(&e.onto, &d, &candidates, &engine, &mut v)
            .expect("Example 7 violates the disjunction property");
        assert!(w.queries.len() >= 2);
    }

    #[test]
    fn example7_needs_reflexive_bouquets() {
        // Without loops, the bouquet probe misses Example 7 (every
        // irreflexive bouquet has a 1-materialization); with the
        // reflexive pieces enabled it finds the witness — mirroring the
        // mosaic procedure's dedicated loop pieces.
        use crate::bouquet::BouquetConfig;
        use crate::decide::decide_ptime;
        let engine = CertainEngine::new(2);
        let mut v1 = Vocab::new();
        let e1 = example7(&mut v1);
        let verdict_no_loops = decide_ptime(
            &e1.onto,
            &engine,
            BouquetConfig {
                max_outdegree: 1,
                max_bouquets: 60,
                include_loops: false,
            },
            &mut v1,
        );
        assert!(
            verdict_no_loops.ptime,
            "irreflexive bouquets miss the Example 7 witness"
        );
        let mut v2 = Vocab::new();
        let e2 = example7(&mut v2);
        let verdict_loops = decide_ptime(
            &e2.onto,
            &engine,
            BouquetConfig {
                max_outdegree: 1,
                max_bouquets: 900,
                include_loops: true,
            },
            &mut v2,
        );
        assert!(
            !verdict_loops.ptime,
            "reflexive bouquets catch the Example 7 witness"
        );
    }

    #[test]
    fn counter_ontology_is_alc_depth_2() {
        let mut v = Vocab::new();
        let f = counter_ontology(2, &mut v);
        assert_eq!(ontology_depth(&f.dl), 2);
        let features = gomq_dl::lang::DlFeatures::of(&f.dl);
        assert!(!features.inverse && !features.qualified_number && !features.functionality);
    }

    #[test]
    fn counter_n1_fires_on_full_chain_only() {
        let mut v = Vocab::new();
        let f = counter_ontology(1, &mut v);
        let engine = CertainEngine::new(2);
        // Chain of length 2¹ = 2 (values 0, 1): the head disjunction fires.
        let d = counter_chain(&f, 2, &mut v);
        let head = chain_head(&mut v);
        let mk = |rel, v: &mut Vocab| {
            let _ = v;
            let mut b = CqBuilder::new();
            let x = b.var("x");
            b.atom(rel, &[x]);
            Ucq::from_cq(b.build(vec![x]))
        };
        let q1 = mk(f.b[0], &mut v);
        let q2 = mk(f.b[1], &mut v);
        let queries = vec![(q1.clone(), vec![head]), (q2.clone(), vec![head])];
        assert!(
            !engine
                .certain(&f.onto, &d, &q1, &[head], &mut v)
                .is_certain(),
            "B1 alone is not certain"
        );
        assert!(
            !engine
                .certain(&f.onto, &d, &q2, &[head], &mut v)
                .is_certain(),
            "B2 alone is not certain"
        );
        assert!(
            engine
                .certain_disjunction(&f.onto, &d, &queries, &mut v)
                .is_certain(),
            "B1 ∨ B2 is certain at the head of the full chain"
        );
        // A bare single-element instance does not fire the disjunction.
        let d_short = counter_chain(&f, 1, &mut v);
        let b0 = gomq_core::Term::Const(v.constant("cc0"));
        let queries_short = vec![(q1, vec![b0]), (q2, vec![b0])];
        assert!(
            !engine
                .certain_disjunction(&f.onto, &d_short, &queries_short, &mut v)
                .is_certain(),
            "no disjunction on a chain shorter than 2^n"
        );
    }
}
