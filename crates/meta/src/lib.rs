//! # gomq-meta
//!
//! The meta problems of §8: deciding whether a given ontology enjoys
//! PTIME query evaluation (equivalently, by Theorem 7, whether it is
//! materializable / Datalog≠-rewritable).
//!
//! * [`bouquet`] — enumeration of the (irreflexive) bouquets of bounded
//!   outdegree over a signature: tree instances of depth 1 rooted at `a`,
//!   which by Lemma 5 suffice to decide materializability for ALCHIQ
//!   ontologies of depth 1,
//! * [`decide`] — the decision procedure: every relevant bouquet is
//!   probed for the disjunction property (Theorem 17); a violation is a
//!   non-materializability witness (coNP-hardness by Theorem 3), and
//!   exhausting all bouquets yields the PTIME verdict,
//! * [`examples`] — the paper's counterexample families: Example 7 (a
//!   uGF⁻₂(1,=) ontology with 1-materializations but no materializability)
//!   and Example 8 (the ALC depth-2 counter ontologies `O_n` that are
//!   materializable on trees of depth < 2ⁿ only).

#![warn(missing_docs)]

pub mod bouquet;
pub mod decide;
pub mod examples;

pub use bouquet::{enumerate_bouquets, Bouquet, BouquetConfig};
pub use decide::{decide_ptime, MetaVerdict};
