//! Bouquet enumeration (§8).
//!
//! A *bouquet* with root `a` is a tree instance of depth 1: the root, at
//! most `max_outdegree` neighbours, unary facts on all elements, and at
//! least one binary fact between the root and each neighbour. Lemma 5
//! shows that for ALCHIQ ontologies of depth 1, materializability is
//! equivalent to materializability for the class of (irreflexive)
//! bouquets of outdegree ≤ |O| over `sig(O)` — making bouquets the finite
//! search space of the Theorem-13 decision procedure.

use gomq_core::{Fact, Instance, RelId, Term, Vocab};

/// A bouquet: the instance and its root.
#[derive(Clone, Debug)]
pub struct Bouquet {
    /// The depth-1 tree instance.
    pub instance: Instance,
    /// The root element.
    pub root: Term,
}

/// Enumeration bounds.
#[derive(Clone, Copy, Debug)]
pub struct BouquetConfig {
    /// Maximum number of neighbours.
    pub max_outdegree: usize,
    /// Hard cap on the number of bouquets produced.
    pub max_bouquets: usize,
    /// Also enumerate *reflexive* bouquets (self-loops on the root).
    ///
    /// ALCHIQ materializability only needs irreflexive bouquets (Lemma 5),
    /// but for uGC⁻₂(1,=) the paper's Example 7 shows that reflexive
    /// loops are essential — its mosaic procedure has a dedicated piece
    /// kind for them. With loops enabled, the bouquet probe catches
    /// Example 7.
    pub include_loops: bool,
}

impl Default for BouquetConfig {
    fn default() -> Self {
        BouquetConfig {
            max_outdegree: 2,
            max_bouquets: 5_000,
            include_loops: false,
        }
    }
}

/// The result of an enumeration.
pub struct BouquetEnumeration {
    /// The bouquets.
    pub bouquets: Vec<Bouquet>,
    /// Whether the enumeration completed within the cap.
    pub exhausted: bool,
}

/// A neighbour configuration: unary label set + edge set.
#[derive(Clone, Debug)]
struct NeighbourConfig {
    unary: Vec<RelId>,
    /// (relation, root-to-neighbour?) — at least one entry.
    edges: Vec<(RelId, bool)>,
}

/// Enumerates all irreflexive bouquets over the given signature, up to
/// the configured outdegree. Neighbour multisets are enumerated in
/// non-decreasing configuration order, so isomorphic duplicates from
/// neighbour permutations are avoided.
pub fn enumerate_bouquets(
    unary: &[RelId],
    binary: &[RelId],
    config: BouquetConfig,
    vocab: &mut Vocab,
) -> BouquetEnumeration {
    let root_const = vocab.constant("_bq_root");
    let neighbour_consts: Vec<_> = (0..config.max_outdegree)
        .map(|i| vocab.constant(&format!("_bq_n{i}")))
        .collect();
    // All unary label subsets.
    let unary_subsets: Vec<Vec<RelId>> = subsets(unary);
    // All non-empty edge sets.
    let edge_options: Vec<(RelId, bool)> = binary
        .iter()
        .flat_map(|&r| [(r, true), (r, false)])
        .collect();
    let edge_subsets: Vec<Vec<(RelId, bool)>> = subsets(&edge_options)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect();
    let mut neighbour_configs: Vec<NeighbourConfig> = Vec::new();
    for u in &unary_subsets {
        for e in &edge_subsets {
            neighbour_configs.push(NeighbourConfig {
                unary: u.clone(),
                edges: e.clone(),
            });
        }
    }
    // Root self-loop options (the "reflexive mosaic pieces").
    let loop_subsets: Vec<Vec<RelId>> = if config.include_loops {
        subsets(binary)
    } else {
        vec![Vec::new()]
    };
    let mut bouquets = Vec::new();
    let mut exhausted = true;
    // Breadth-first by neighbour count, so small witnesses (in particular
    // loop-only bouquets) are produced before larger ones.
    'outer: for size in 0..=config.max_outdegree {
        // All non-decreasing index multisets of exactly `size` configs.
        let mut multisets: Vec<Vec<usize>> = vec![Vec::new()];
        for _ in 0..size {
            let mut next = Vec::new();
            for m in &multisets {
                let start = m.last().copied().unwrap_or(0);
                for ci in start..neighbour_configs.len() {
                    let mut m2 = m.clone();
                    m2.push(ci);
                    next.push(m2);
                }
            }
            multisets = next;
        }
        for root_labels in &unary_subsets {
            for root_loops in &loop_subsets {
                for chosen in &multisets {
                    let mut inst = Instance::new();
                    let root = Term::Const(root_const);
                    for &u in root_labels {
                        inst.insert(Fact::consts(u, &[root_const]));
                    }
                    for &r in root_loops {
                        inst.insert(Fact::consts(r, &[root_const, root_const]));
                    }
                    for (ni, &ci) in chosen.iter().enumerate() {
                        let nc = &neighbour_configs[ci];
                        let n = neighbour_consts[ni];
                        for &u in &nc.unary {
                            inst.insert(Fact::consts(u, &[n]));
                        }
                        for &(r, fwd) in &nc.edges {
                            if fwd {
                                inst.insert(Fact::consts(r, &[root_const, n]));
                            } else {
                                inst.insert(Fact::consts(r, &[n, root_const]));
                            }
                        }
                    }
                    if inst.is_empty() {
                        continue;
                    }
                    bouquets.push(Bouquet {
                        instance: inst,
                        root,
                    });
                    if bouquets.len() >= config.max_bouquets {
                        exhausted = false;
                        break 'outer;
                    }
                }
            }
        }
    }
    BouquetEnumeration {
        bouquets,
        exhausted,
    }
}

fn subsets<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new()];
    for item in items {
        let mut extended: Vec<Vec<T>> = out
            .iter()
            .map(|s| {
                let mut s2 = s.clone();
                s2.push(item.clone());
                s2
            })
            .collect();
        out.append(&mut extended);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_for_tiny_signature() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let r = v.rel("R", 2);
        let cfg = BouquetConfig {
            max_outdegree: 1,
            max_bouquets: 10_000,
            include_loops: false,
        };
        let e = enumerate_bouquets(&[a], &[r], cfg, &mut v);
        assert!(e.exhausted);
        // Root labels: 2 options ({},{A}). Neighbour configs: 2 unary
        // subsets × 3 non-empty edge subsets = 6. Multisets of size ≤ 1:
        // 1 + 6 = 7 per root labelling = 14, minus the empty bouquet
        // (no labels, no neighbours) = 13.
        assert_eq!(e.bouquets.len(), 13);
        // All are depth-1 trees rooted at the root.
        for b in &e.bouquets {
            assert!(b.instance.dom().contains(&b.root) || !b.instance.is_empty());
        }
    }

    #[test]
    fn outdegree_respected() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let cfg = BouquetConfig {
            max_outdegree: 2,
            max_bouquets: 10_000,
            include_loops: false,
        };
        let e = enumerate_bouquets(&[], &[r], cfg, &mut v);
        assert!(e.exhausted);
        for b in &e.bouquets {
            // Root + at most 2 neighbours.
            assert!(b.instance.dom().len() <= 3);
        }
    }

    #[test]
    fn cap_truncates() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let cfg = BouquetConfig {
            max_outdegree: 2,
            max_bouquets: 50,
            include_loops: false,
        };
        let e = enumerate_bouquets(&[a, b], &[r, s], cfg, &mut v);
        assert!(!e.exhausted);
        assert_eq!(e.bouquets.len(), 50);
    }

    #[test]
    fn bouquets_are_irreflexive() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let cfg = BouquetConfig {
            max_outdegree: 1,
            max_bouquets: 1000,
            include_loops: false,
        };
        let e = enumerate_bouquets(&[], &[r], cfg, &mut v);
        for b in &e.bouquets {
            for f in b.instance.iter() {
                if f.args.len() == 2 {
                    assert_ne!(f.args[0], f.args[1], "no loops in bouquets");
                }
            }
        }
    }
}
