//! # gomq-csp
//!
//! The constraint-satisfaction substrate of §6 of the paper.
//!
//! * [`template`] — CSP templates (interpretations with unary and binary
//!   relations), the precoloring closure, and stock templates
//!   (k-coloring, cliques, implication/reachability),
//! * [`solve`] — deciding `D → A` (homomorphism existence) by AC-3
//!   propagation plus backtracking,
//! * [`encode`] — Theorem 8: a template `A` becomes a uGF₂(1,=) ontology
//!   `O_A` (with the `ϕ≠/ϕ=` equality trick) or an `ALCF\`` ontology of
//!   depth 2 (with the `(≥2 R)/∃R` trick), such that evaluating OMQs
//!   w.r.t. `O_A` is polynomially interreducible with coCSP(A),
//! * [`reduce`] — the two reductions of Definition 4, executable on
//!   concrete instances.

#![warn(missing_docs)]

pub mod datalog;
pub mod encode;
pub mod reduce;
pub mod solve;
pub mod template;

pub use solve::solve_csp;
pub use template::Template;
