//! Datalog definitions of tractable coCSPs.
//!
//! Theorem 9 turns on the relationship between PTIME CSPs and Datalog≠
//! definability of their complements. For the 2-coloring template the
//! complement *is* Datalog-definable — an input fails to 2-color iff it
//! contains an odd closed walk, or a walk connecting precoloured vertices
//! whose parity contradicts the colours. This module emits that program,
//! giving a concrete executable witness that the OMQ `(O_{K₂}, ∃x N(x))`
//! of Theorem 8 is Datalog-rewritable (2-coloring sits on the PTIME side
//! of the dichotomy), in contrast to the 3-coloring encoding.

use crate::template::Template;
use gomq_core::{ConstId, RelId, Vocab};
use gomq_datalog::{DAtom, Literal, Program, Rule};

/// Emits the Datalog program defining coCSP(K₂) with precoloring: the
/// goal holds (at some witness vertex) iff the input does **not** map
/// into the 2-coloring template. Fresh IDB relations `_sym`, `_odd`,
/// `_even` and `_noncol` are interned into `vocab`.
///
/// # Panics
///
/// Panics if the template is not a precoloured 2-coloring template.
pub fn two_coloring_cocsp(template: &Template, vocab: &mut Vocab) -> Program {
    let elems: Vec<ConstId> = template.elements();
    assert_eq!(elems.len(), 2, "expected the K2 template");
    assert_eq!(
        template.precolor.len(),
        2,
        "expected a precoloured template"
    );
    let edge = vocab.find_rel("edge").expect("template edge relation");
    let p0 = template.precolor[&elems[0]];
    let p1 = template.precolor[&elems[1]];
    let fresh = |vocab: &mut Vocab, base: &str, arity: usize| -> RelId {
        let mut i = 0usize;
        loop {
            let name = if i == 0 {
                base.to_owned()
            } else {
                format!("{base}_{i}")
            };
            if vocab.find_rel(&name).is_none() {
                return vocab.rel(&name, arity);
            }
            i += 1;
        }
    };
    let sym = fresh(vocab, "_sym", 2);
    let odd = fresh(vocab, "_odd", 2);
    let even = fresh(vocab, "_even", 2);
    let goal = fresh(vocab, "_noncol", 1);
    let pos = |rel, vars: &[u32]| Literal::Pos(DAtom::vars(rel, vars));
    let mut rules = vec![
        // Symmetrise the edge relation (2-colorability is undirected).
        Rule::new(DAtom::vars(sym, &[0, 1]), vec![pos(edge, &[0, 1])]),
        Rule::new(DAtom::vars(sym, &[1, 0]), vec![pos(edge, &[0, 1])]),
        // Walk parity.
        Rule::new(DAtom::vars(odd, &[0, 1]), vec![pos(sym, &[0, 1])]),
        Rule::new(
            DAtom::vars(even, &[0, 2]),
            vec![pos(odd, &[0, 1]), pos(sym, &[1, 2])],
        ),
        Rule::new(
            DAtom::vars(odd, &[0, 2]),
            vec![pos(even, &[0, 1]), pos(sym, &[1, 2])],
        ),
        // Odd closed walk.
        Rule::new(DAtom::vars(goal, &[0]), vec![pos(odd, &[0, 0])]),
    ];
    // Precoloring conflicts: same colour at odd distance, different
    // colours at even distance, or both colours on one vertex.
    for &p in &[p0, p1] {
        rules.push(Rule::new(
            DAtom::vars(goal, &[0]),
            vec![pos(p, &[0]), pos(odd, &[0, 1]), pos(p, &[1])],
        ));
    }
    for (pa, pb) in [(p0, p1), (p1, p0)] {
        rules.push(Rule::new(
            DAtom::vars(goal, &[0]),
            vec![pos(pa, &[0]), pos(even, &[0, 1]), pos(pb, &[1])],
        ));
    }
    rules.push(Rule::new(
        DAtom::vars(goal, &[0]),
        vec![pos(p0, &[0]), pos(p1, &[0])],
    ));
    Program::new(rules, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_csp;
    use gomq_core::{Fact, Instance};

    fn setup() -> (Vocab, Template, Program) {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let p = two_coloring_cocsp(&t, &mut v);
        (v, t, p)
    }

    fn cycle(v: &mut Vocab, n: usize, tag: &str) -> Instance {
        let edge = v.rel("edge", 2);
        let mut d = Instance::new();
        for i in 0..n {
            let a = v.constant(&format!("{tag}{i}"));
            let b = v.constant(&format!("{tag}{}", (i + 1) % n));
            d.insert(Fact::consts(edge, &[a, b]));
        }
        d
    }

    #[test]
    fn odd_cycles_detected_even_cycles_pass() {
        let (mut v, t, p) = setup();
        for n in 3..9 {
            let d = cycle(&mut v, n, &format!("c{n}_"));
            let colorable = solve_csp(&d, &t).is_some();
            let goal_fires = !p.eval(&d).is_empty();
            assert_eq!(colorable, !goal_fires, "cycle length {n}");
            assert_eq!(colorable, n % 2 == 0);
        }
    }

    #[test]
    fn precoloring_conflicts_detected() {
        let (mut v, t, p) = setup();
        let edge = v.rel("edge", 2);
        let col0 = v.constant("col0");
        let col1 = v.constant("col1");
        let p0 = t.precolor[&col0];
        let p1 = t.precolor[&col1];
        let a = v.constant("pa");
        let b = v.constant("pb");
        let c = v.constant("pc");
        // Path a–b–c with a,c precoloured differently: even distance with
        // different colours — conflict.
        let mut d = Instance::new();
        d.insert(Fact::consts(edge, &[a, b]));
        d.insert(Fact::consts(edge, &[b, c]));
        d.insert(Fact::consts(p0, &[a]));
        d.insert(Fact::consts(p1, &[c]));
        assert!(solve_csp(&d, &t).is_none());
        assert!(!p.eval(&d).is_empty());
        // Same colours at distance 2: fine.
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(edge, &[a, b]));
        d2.insert(Fact::consts(edge, &[b, c]));
        d2.insert(Fact::consts(p0, &[a]));
        d2.insert(Fact::consts(p0, &[c]));
        assert!(solve_csp(&d2, &t).is_some());
        assert!(p.eval(&d2).is_empty());
    }

    #[test]
    fn random_graphs_agree_with_solver() {
        let (mut v, t, p) = setup();
        let edge = v.rel("edge", 2);
        let mut state = 0xabcdef12u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 4 + (next() % 4) as usize;
            let m = n + (next() % n as u64) as usize;
            let elems: Vec<_> = (0..n)
                .map(|i| v.constant(&format!("g{trial}_{i}")))
                .collect();
            let mut d = Instance::new();
            for _ in 0..m {
                let a = elems[(next() % n as u64) as usize];
                let b = elems[(next() % n as u64) as usize];
                if a != b {
                    d.insert(Fact::consts(edge, &[a, b]));
                }
            }
            if d.is_empty() {
                continue;
            }
            let colorable = solve_csp(&d, &t).is_some();
            let goal_fires = !p.eval(&d).is_empty();
            assert_eq!(colorable, !goal_fires, "trial {trial}");
        }
    }

    #[test]
    fn both_colors_on_one_vertex() {
        let (mut v, t, p) = setup();
        let col0 = v.constant("col0");
        let col1 = v.constant("col1");
        let a = v.constant("solo");
        let mut d = Instance::new();
        d.insert(Fact::consts(t.precolor[&col0], &[a]));
        d.insert(Fact::consts(t.precolor[&col1], &[a]));
        assert!(solve_csp(&d, &t).is_none());
        assert!(!p.eval(&d).is_empty());
    }
}
