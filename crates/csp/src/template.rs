//! CSP templates.

use gomq_core::{ConstId, Fact, Instance, RelId, Vocab};
use std::collections::BTreeMap;

/// A CSP template: a finite instance `A` over unary and binary relations.
/// `CSP(A)` asks whether a given instance maps homomorphically into `A`.
#[derive(Clone, Debug)]
pub struct Template {
    /// The template structure.
    pub interp: Instance,
    /// A short name for display and file naming.
    pub name: String,
    /// The precoloring relations `P_a`, when the precoloring closure has
    /// been applied: `precolor[a]` is the unary relation holding exactly
    /// at `a`.
    pub precolor: BTreeMap<ConstId, RelId>,
}

impl Template {
    /// Creates a template without precoloring relations.
    pub fn new(name: impl Into<String>, interp: Instance) -> Self {
        Template {
            interp,
            name: name.into(),
            precolor: BTreeMap::new(),
        }
    }

    /// The template elements.
    pub fn elements(&self) -> Vec<ConstId> {
        self.interp.consts().into_iter().collect()
    }

    /// Applies the precoloring closure (Larose–Tesson): adds, for each
    /// element `a`, a unary relation `P_a` with `P_a(b) ⇔ b = a`. The
    /// resulting template's CSP is polynomially equivalent to the original
    /// and "admits precoloring" as required by the paper's constructions.
    pub fn with_precoloring(mut self, vocab: &mut Vocab) -> Self {
        if !self.precolor.is_empty() {
            return self;
        }
        for a in self.elements() {
            let p = vocab.rel(
                &format!("P_{}_{}", self.name, vocab.const_name(a).to_owned()),
                1,
            );
            self.interp.insert(Fact::consts(p, &[a]));
            self.precolor.insert(a, p);
        }
        self
    }

    /// The k-coloring template: `k` elements, a binary `edge` relation
    /// holding between every pair of *distinct* colors. `CSP` = graph
    /// k-colorability (PTIME for k ≤ 2, NP-complete for k ≥ 3).
    ///
    /// ```
    /// use gomq_core::{Vocab, parse::parse_instance};
    /// use gomq_csp::{Template, solve_csp};
    ///
    /// let mut vocab = Vocab::new();
    /// let template = Template::k_coloring(2, &mut vocab);
    /// let square = parse_instance(
    ///     "edge(a,b)\nedge(b,c)\nedge(c,d)\nedge(d,a)\n",
    ///     &mut vocab,
    /// ).unwrap();
    /// assert!(solve_csp(&square, &template).is_some()); // C4 is bipartite
    /// ```
    pub fn k_coloring(k: usize, vocab: &mut Vocab) -> Self {
        let edge = vocab.rel("edge", 2);
        let mut interp = Instance::new();
        let colors: Vec<ConstId> = (0..k).map(|i| vocab.constant(&format!("col{i}"))).collect();
        for &c1 in &colors {
            for &c2 in &colors {
                if c1 != c2 {
                    interp.insert(Fact::consts(edge, &[c1, c2]));
                }
            }
        }
        Template::new(format!("{k}col"), interp)
    }

    /// The directed-implication template over `{0,1}`: `edge(x,y)` means
    /// `x ≤ y` (i.e. forbidden only for `1 → 0`), plus unary `Zero`/`One`.
    /// Its CSP is a reachability problem — PTIME, Datalog-complement.
    pub fn implication(vocab: &mut Vocab) -> Self {
        let edge = vocab.rel("edge", 2);
        let zero_rel = vocab.rel("Zero", 1);
        let one_rel = vocab.rel("One", 1);
        let zero = vocab.constant("val0");
        let one = vocab.constant("val1");
        let mut interp = Instance::new();
        interp.insert(Fact::consts(zero_rel, &[zero]));
        interp.insert(Fact::consts(one_rel, &[one]));
        for (a, b) in [(zero, zero), (zero, one), (one, one)] {
            interp.insert(Fact::consts(edge, &[a, b]));
        }
        Template::new("impl", interp)
    }

    /// The reflexive clique on `n` elements: every instance maps into it
    /// (a trivially tractable template).
    pub fn reflexive_clique(n: usize, vocab: &mut Vocab) -> Self {
        let edge = vocab.rel("edge", 2);
        let mut interp = Instance::new();
        let elems: Vec<ConstId> = (0..n).map(|i| vocab.constant(&format!("k{i}"))).collect();
        for &a in &elems {
            for &b in &elems {
                interp.insert(Fact::consts(edge, &[a, b]));
            }
        }
        Template::new(format!("refl{n}"), interp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_coloring_shape() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(3, &mut v);
        assert_eq!(t.elements().len(), 3);
        // 3 × 2 ordered distinct pairs.
        assert_eq!(t.interp.len(), 6);
    }

    #[test]
    fn precoloring_adds_singleton_relations() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        assert_eq!(t.precolor.len(), 2);
        for (&a, &p) in &t.precolor {
            let holders: Vec<_> = t.interp.facts_of(p).collect();
            assert_eq!(holders.len(), 1);
            assert_eq!(holders[0].args[0], gomq_core::Term::Const(a));
        }
        // Idempotent.
        let t2 = t.clone().with_precoloring(&mut v);
        assert_eq!(t2.interp.len(), t.interp.len());
    }

    #[test]
    fn implication_template_shape() {
        let mut v = Vocab::new();
        let t = Template::implication(&mut v);
        assert_eq!(t.elements().len(), 2);
        assert_eq!(t.interp.len(), 5);
    }
}
