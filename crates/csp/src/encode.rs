//! The Theorem-8 encodings: templates as guarded ontologies.
//!
//! For a template `A` that admits precoloring, the ontology `O_A` makes
//! every element of an input instance choose exactly one color `a` via the
//! formula `ϕ≠_a(x) = ∃y(R_a(x,y) ∧ ¬(x = y))`, forbids colors that
//! violate the template's unary/binary constraints, and asserts
//! `ϕ=_a(x) = ∃y(R_a(x,y) ∧ x = y)` everywhere so that the color choice is
//! invisible to (equality-free) conjunctive queries. Evaluating OMQs
//! w.r.t. `O_A` is then polynomially interreducible with coCSP(A).
//!
//! The `ALCF\`` variant of depth 2 replaces `ϕ≠_a` by `(≥ 2 R_a)` and
//! `ϕ=_a` by `∃R_a.⊤`.

use crate::template::Template;
use gomq_core::query::CqBuilder;
use gomq_core::{ConstId, RelId, Ucq, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::DlOntology;
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};
use std::collections::BTreeMap;

/// The result of encoding a template.
pub struct CspOntology {
    /// The guarded ontology `O_A`.
    pub onto: GfOntology,
    /// The color-witness relation `R_a` of each template element.
    pub witness_rels: BTreeMap<ConstId, RelId>,
    /// The fresh query relation `N`.
    pub query_rel: RelId,
    /// The Boolean query `∃x N(x)` whose OMQ evaluation is coCSP(A).
    pub query: Ucq,
}

const X: LVar = LVar(0);
const Y: LVar = LVar(1);

fn phi_neq(ra: RelId) -> Formula {
    Formula::Exists {
        qvars: vec![Y],
        guard: Guard::Atom {
            rel: ra,
            args: vec![X, Y],
        },
        body: Box::new(Formula::Not(Box::new(Formula::Eq(X, Y)))),
    }
}

fn phi_eq(ra: RelId) -> Formula {
    Formula::Exists {
        qvars: vec![Y],
        guard: Guard::Atom {
            rel: ra,
            args: vec![X, Y],
        },
        body: Box::new(Formula::Eq(X, Y)),
    }
}

/// Encodes a (precolored) template as a uGF₂(1,=) ontology (Theorem 8).
pub fn encode_gf(template: &Template, vocab: &mut Vocab) -> CspOntology {
    let elems = template.elements();
    let names = vec!["x".to_owned(), "y".to_owned()];
    let mut witness_rels: BTreeMap<ConstId, RelId> = BTreeMap::new();
    for &a in &elems {
        let ra = vocab.rel(
            &format!("W_{}_{}", template.name, vocab.const_name(a).to_owned()),
            2,
        );
        witness_rels.insert(a, ra);
    }
    let mut onto = GfOntology::new();
    // Sentence 1: exactly one color.
    let mut conj: Vec<Formula> = Vec::new();
    for (i, &a) in elems.iter().enumerate() {
        for &a2 in &elems[i + 1..] {
            conj.push(Formula::Not(Box::new(Formula::And(vec![
                phi_neq(witness_rels[&a]),
                phi_neq(witness_rels[&a2]),
            ]))));
        }
    }
    conj.push(Formula::Or(
        elems.iter().map(|a| phi_neq(witness_rels[a])).collect(),
    ));
    onto.push(UgfSentence::forall_one(
        X,
        Formula::And(conj),
        names.clone(),
    ));
    // Sentence family 2: unary constraints — A(x) forbids color a when
    // A(a) ∉ 𝔄.
    let unary_rels: Vec<RelId> = template
        .interp
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 1)
        .collect();
    for &u in &unary_rels {
        for &a in &elems {
            let holds = template.interp.contains(&gomq_core::Fact::consts(u, &[a]));
            if !holds {
                onto.push(UgfSentence::forall_one(
                    X,
                    Formula::implies(
                        Formula::unary(u, X),
                        Formula::Not(Box::new(phi_neq(witness_rels[&a]))),
                    ),
                    names.clone(),
                ));
            }
        }
    }
    // Sentence family 3: binary constraints — R(x,y) forbids color pairs
    // outside R^𝔄.
    let binary_rels: Vec<RelId> = template
        .interp
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 2)
        .collect();
    for &r in &binary_rels {
        for &a in &elems {
            for &a2 in &elems {
                let holds = template
                    .interp
                    .contains(&gomq_core::Fact::consts(r, &[a, a2]));
                if !holds {
                    // ∀xy(R(x,y) → ¬(ϕ≠_a(x) ∧ ϕ≠_{a'}(y))).
                    let phi_at_y = swap_vars(&phi_neq(witness_rels[&a2]));
                    onto.push(UgfSentence::new(
                        vec![X, Y],
                        Guard::Atom {
                            rel: r,
                            args: vec![X, Y],
                        },
                        Formula::Not(Box::new(Formula::And(vec![
                            phi_neq(witness_rels[&a]),
                            phi_at_y,
                        ]))),
                        names.clone(),
                    ));
                }
            }
        }
    }
    // Sentence family 4: ∀x ϕ=_a(x) — the query-invisibility trick.
    for &a in &elems {
        onto.push(UgfSentence::forall_one(
            X,
            phi_eq(witness_rels[&a]),
            names.clone(),
        ));
    }
    // The query.
    let query_rel = vocab.rel(&format!("N_{}", template.name), 1);
    let mut b = CqBuilder::new();
    let qx = b.var("x");
    b.atom(query_rel, &[qx]);
    let query = Ucq::from_cq(b.build(vec![]));
    CspOntology {
        onto,
        witness_rels,
        query_rel,
        query,
    }
}

/// Swaps the two fixed variables of a two-variable formula (x ↔ y).
fn swap_vars(f: &Formula) -> Formula {
    let sw = |v: LVar| if v == X { Y } else { X };
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom { rel, args } => Formula::Atom {
            rel: *rel,
            args: args.iter().map(|&v| sw(v)).collect(),
        },
        Formula::Eq(a, b) => Formula::Eq(sw(*a), sw(*b)),
        Formula::Not(g) => Formula::Not(Box::new(swap_vars(g))),
        Formula::And(fs) => Formula::And(fs.iter().map(swap_vars).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(swap_vars).collect()),
        Formula::Forall { qvars, guard, body } => Formula::Forall {
            qvars: qvars.iter().map(|&v| sw(v)).collect(),
            guard: swap_guard(guard),
            body: Box::new(swap_vars(body)),
        },
        Formula::Exists { qvars, guard, body } => Formula::Exists {
            qvars: qvars.iter().map(|&v| sw(v)).collect(),
            guard: swap_guard(guard),
            body: Box::new(swap_vars(body)),
        },
        Formula::CountExists {
            n,
            qvar,
            guard,
            body,
        } => Formula::CountExists {
            n: *n,
            qvar: sw(*qvar),
            guard: swap_guard(guard),
            body: Box::new(swap_vars(body)),
        },
    }
}

fn swap_guard(g: &Guard) -> Guard {
    let sw = |v: LVar| if v == X { Y } else { X };
    match g {
        Guard::Atom { rel, args } => Guard::Atom {
            rel: *rel,
            args: args.iter().map(|&v| sw(v)).collect(),
        },
        Guard::Eq(a, b) => Guard::Eq(sw(*a), sw(*b)),
    }
}

/// Encodes a template as an `ALCF\`` ontology of depth 2 (the variant in
/// the proof of Theorem 8): `ϕ≠_a` becomes `(≥ 2 R_a)`, `ϕ=_a` becomes
/// `∃R_a.⊤`, and the binary constraint moves under a `∀R` restriction.
pub fn encode_alcfl(
    template: &Template,
    vocab: &mut Vocab,
) -> (DlOntology, BTreeMap<ConstId, RelId>) {
    let elems = template.elements();
    let mut witness_rels: BTreeMap<ConstId, RelId> = BTreeMap::new();
    for &a in &elems {
        let ra = vocab.rel(
            &format!("V_{}_{}", template.name, vocab.const_name(a).to_owned()),
            2,
        );
        witness_rels.insert(a, ra);
    }
    let marker = |a: ConstId| Concept::at_least_two(Role::new(witness_rels[&a]));
    let mut dl = DlOntology::new();
    // Exactly one color.
    dl.sub(
        Concept::Top,
        Concept::Or(elems.iter().map(|&a| marker(a)).collect()),
    );
    for (i, &a) in elems.iter().enumerate() {
        for &a2 in &elems[i + 1..] {
            dl.sub(Concept::And(vec![marker(a), marker(a2)]), Concept::Bot);
        }
    }
    // Unary constraints.
    for u in template
        .interp
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 1)
    {
        for &a in &elems {
            if !template.interp.contains(&gomq_core::Fact::consts(u, &[a])) {
                dl.sub(Concept::Name(u), marker(a).neg());
            }
        }
    }
    // Binary constraints: marker(a) ⊑ ∀R.¬marker(a') when (a,a') ∉ R^𝔄.
    for r in template
        .interp
        .sig()
        .into_iter()
        .filter(|&r| vocab.arity(r) == 2)
    {
        for &a in &elems {
            for &a2 in &elems {
                if !template
                    .interp
                    .contains(&gomq_core::Fact::consts(r, &[a, a2]))
                {
                    dl.sub(
                        marker(a),
                        Concept::Forall(Role::new(r), Box::new(marker(a2).neg())),
                    );
                }
            }
        }
    }
    // Invisibility: ⊤ ⊑ ∃R_a.⊤ for all a.
    for &a in &elems {
        dl.sub(Concept::Top, Concept::some(Role::new(witness_rels[&a])));
    }
    (dl, witness_rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::depth::ontology_depth as dl_depth;
    use gomq_dl::lang::DlFeatures;
    use gomq_logic::fragment::{classify, Fragment};

    #[test]
    fn gf_encoding_lands_in_ugf2_1_eq() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let enc = encode_gf(&t, &mut v);
        let frags = classify(&enc.onto, &v);
        assert_eq!(frags[0], Fragment::Ugf2_1Eq, "fragments: {frags:?}");
    }

    #[test]
    fn alcfl_encoding_has_depth_two_and_local_functionality_shape() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let (dl, _) = encode_alcfl(&t, &mut v);
        assert_eq!(dl_depth(&dl), 2);
        let f = DlFeatures::of(&dl);
        // (≥2 R) and (≤1 R) only: detected as number restrictions without
        // inverse or hierarchy.
        assert!(!f.inverse && !f.hierarchy && !f.functionality);
    }

    #[test]
    fn witness_relations_are_per_element() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(3, &mut v).with_precoloring(&mut v);
        let enc = encode_gf(&t, &mut v);
        assert_eq!(enc.witness_rels.len(), 3);
        // Sentence count: 1 (exactly-one) + unary + binary + 3 (ϕ=).
        assert!(enc.onto.ugf_sentences.len() > 4);
    }
}
