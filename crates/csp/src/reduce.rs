//! The two reductions of Definition 4, executable on concrete instances.
//!
//! * coCSP(A) → OMQ: an instance `D` (over `sig(A)`, possibly with
//!   precoloring facts) becomes `D′ = D ∪ {R_a(d, d′) | P_a(d) ∈ D}` with
//!   fresh nulls `d′`; then `D → A` iff `O_A, D′ ⊭ ∃x N(x)`.
//! * OMQ → coCSP: an instance `D` over `sig(O_A)` becomes its
//!   `sig(A)`-reduct `D•` extended with `P_a(d)` whenever
//!   `R_a(d,d′) ∈ D` for some `d′ ≠ d`; then `D` is consistent w.r.t.
//!   `O_A` iff `D• → A`, and since `N` is fresh the certain answer to
//!   `∃x N(x)` is exactly inconsistency.

use crate::encode::CspOntology;
use crate::solve::solve_csp;
use crate::template::Template;
use gomq_core::{Fact, Instance, Term, Vocab};
use std::collections::BTreeSet;

/// The coCSP(A) → OMQ instance translation `D ↦ D′`.
pub fn csp_instance_to_omq(
    d: &Instance,
    template: &Template,
    enc: &CspOntology,
    vocab: &mut Vocab,
) -> Instance {
    let mut out = d.clone();
    for (&a, &pa) in &template.precolor {
        let ra = enc.witness_rels[&a];
        let holders: Vec<Term> = d
            .facts_of(pa)
            .filter(|f| f.args.len() == 1)
            .map(|f| f.args[0])
            .collect();
        for h in holders {
            let fresh = Term::Null(vocab.fresh_null());
            out.insert(Fact::new(ra, vec![h, fresh]));
        }
    }
    out
}

/// The OMQ → coCSP instance translation `D ↦ D•`.
pub fn omq_instance_to_csp(d: &Instance, template: &Template, enc: &CspOntology) -> Instance {
    let template_sig: BTreeSet<_> = template.interp.sig();
    let mut out = Instance::new();
    for f in d.iter() {
        if template_sig.contains(&f.rel) {
            out.insert_ref(f.rel, f.args);
        }
    }
    // Witness edges with a distinct endpoint precolor their source.
    for (&a, &ra) in &enc.witness_rels {
        if let Some(&pa) = template.precolor.get(&a) {
            for f in d.facts_of(ra) {
                if f.args.len() == 2 && f.args[0] != f.args[1] {
                    out.insert(Fact::new(pa, vec![f.args[0]]));
                }
            }
        }
    }
    // The paper requires instances to be non-empty; keep at least the
    // original domain visible through a no-op when the reduct is empty.
    out
}

/// Evaluates the OMQ `(O_A, ∃x N(x))` on an instance over `sig(O_A)` via
/// the coCSP reduction: the certain answer is `true` iff `D• ↛ A`.
pub fn omq_certain_via_csp(d: &Instance, template: &Template, enc: &CspOntology) -> bool {
    let reduced = omq_instance_to_csp(d, template, enc);
    if reduced.is_empty() {
        // An empty reduct maps into any non-empty template.
        return false;
    }
    solve_csp(&reduced, template).is_none()
}

/// Decides `D → A` via the OMQ reduction executed with a certain-answer
/// engine (used in tests and experiments to validate Theorem 8 on concrete
/// instances); the engine route needs enough fresh elements to build
/// color witnesses.
pub fn csp_via_omq(
    d: &Instance,
    template: &Template,
    enc: &CspOntology,
    engine: &gomq_reasoning::CertainEngine,
    vocab: &mut Vocab,
) -> bool {
    let d_prime = csp_instance_to_omq(d, template, enc, vocab);
    let outcome = engine.certain(&enc.onto, &d_prime, &enc.query, &[], vocab);
    // D → A iff the query is NOT certain.
    !outcome.is_certain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_gf;
    use gomq_reasoning::CertainEngine;

    fn cycle(v: &mut Vocab, n: usize) -> Instance {
        let edge = v.rel("edge", 2);
        let mut d = Instance::new();
        for i in 0..n {
            let a = v.constant(&format!("u{i}"));
            let b = v.constant(&format!("u{}", (i + 1) % n));
            d.insert(Fact::consts(edge, &[a, b]));
        }
        d
    }

    #[test]
    fn theorem8_both_directions_on_2coloring() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let enc = encode_gf(&t, &mut v);
        let engine = CertainEngine::new(2);
        // Even cycle: 2-colorable, so the OMQ must not be certain.
        let even = cycle(&mut v, 4);
        assert!(solve_csp(&even, &t).is_some());
        assert!(
            csp_via_omq(&even, &t, &enc, &engine, &mut v),
            "engine route agrees: even cycle maps into K2"
        );
        // Odd cycle: not 2-colorable, so the OMQ is certain.
        let odd = cycle(&mut v, 3);
        assert!(solve_csp(&odd, &t).is_none());
        assert!(
            !csp_via_omq(&odd, &t, &enc, &engine, &mut v),
            "engine route agrees: triangle does not map into K2"
        );
    }

    #[test]
    fn omq_to_csp_reduction_roundtrip() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let enc = encode_gf(&t, &mut v);
        // Build an OMQ-side instance: an edge plus a witness edge that
        // precolors u0 with col0.
        let edge = v.rel("edge", 2);
        let u0 = v.constant("u0");
        let u1 = v.constant("u1");
        let col0 = v.constant("col0");
        let ra = enc.witness_rels[&col0];
        let mut d = Instance::new();
        d.insert(Fact::consts(edge, &[u0, u1]));
        d.insert(Fact::consts(ra, &[u0, u1])); // distinct endpoint → precolor
        let reduced = omq_instance_to_csp(&d, &t, &enc);
        let pa = t.precolor[&col0];
        assert!(reduced.contains(&Fact::consts(pa, &[u0])));
        // Still 2-colorable: OMQ not certain.
        assert!(!omq_certain_via_csp(&d, &t, &enc));
        // Self-loop on the edge relation is not 2-colorable.
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(edge, &[u0, u0]));
        assert!(omq_certain_via_csp(&d2, &t, &enc));
    }

    #[test]
    fn precolored_instances_flow_through_reduction() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let enc = encode_gf(&t, &mut v);
        let engine = CertainEngine::new(2);
        // A single edge with both ends precolored the same color: D ↛ A.
        let edge = v.rel("edge", 2);
        let col0 = v.constant("col0");
        let p0 = t.precolor[&col0];
        let a = v.constant("a");
        let b = v.constant("b");
        let mut d = Instance::new();
        d.insert(Fact::consts(edge, &[a, b]));
        d.insert(Fact::consts(p0, &[a]));
        d.insert(Fact::consts(p0, &[b]));
        assert!(solve_csp(&d, &t).is_none());
        assert!(!csp_via_omq(&d, &t, &enc, &engine, &mut v));
    }
}
