//! Deciding `D → A` with AC-3 propagation and backtracking.
//!
//! Variables are the elements of the input instance, domains are template
//! elements; unary facts restrict domains directly, binary facts induce
//! the support constraints that AC-3 propagates. Backtracking uses a
//! minimum-remaining-values heuristic.

use crate::template::Template;
use gomq_core::{ConstId, Instance, Term};
use std::collections::BTreeMap;

/// Statistics of a solver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Backtracking nodes explored.
    pub nodes: usize,
    /// AC-3 revisions performed.
    pub revisions: usize,
}

/// Decides `D → A`, returning a homomorphism if one exists.
pub fn solve_csp(d: &Instance, template: &Template) -> Option<BTreeMap<Term, ConstId>> {
    solve_csp_with_stats(d, template).0
}

/// Decides `D → A` with statistics.
pub fn solve_csp_with_stats(
    d: &Instance,
    template: &Template,
) -> (Option<BTreeMap<Term, ConstId>>, SolveStats) {
    let mut stats = SolveStats::default();
    let vars: Vec<Term> = d.dom().into_iter().collect();
    let var_index: BTreeMap<Term, usize> = vars.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let template_elems: Vec<ConstId> = template.elements();
    // Initial domains from unary facts.
    let mut domains: Vec<Vec<ConstId>> = vec![template_elems.clone(); vars.len()];
    for fact in d.iter() {
        if fact.args.len() == 1 {
            let vi = var_index[&fact.args[0]];
            domains[vi].retain(|&a| {
                template
                    .interp
                    .contains(&gomq_core::Fact::consts(fact.rel, &[a]))
            });
        }
    }
    // Binary constraints: (var1, var2, rel).
    let mut constraints: Vec<(usize, usize, gomq_core::RelId)> = Vec::new();
    for fact in d.iter() {
        if fact.args.len() == 2 {
            constraints.push((var_index[&fact.args[0]], var_index[&fact.args[1]], fact.rel));
        }
    }
    let allowed = |rel, a: ConstId, b: ConstId| {
        template
            .interp
            .contains(&gomq_core::Fact::consts(rel, &[a, b]))
    };
    // AC-3.
    if !ac3(&mut domains, &constraints, &allowed, &mut stats) {
        return (None, stats);
    }
    // Backtracking with MRV.
    let mut assignment: Vec<Option<ConstId>> = vec![None; vars.len()];
    let found = backtrack(
        &mut domains,
        &constraints,
        &allowed,
        &mut assignment,
        &mut stats,
    );
    if !found {
        return (None, stats);
    }
    let h = vars
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, assignment[i].expect("complete assignment")))
        .collect();
    (Some(h), stats)
}

fn ac3(
    domains: &mut [Vec<ConstId>],
    constraints: &[(usize, usize, gomq_core::RelId)],
    allowed: &impl Fn(gomq_core::RelId, ConstId, ConstId) -> bool,
    stats: &mut SolveStats,
) -> bool {
    loop {
        let mut changed = false;
        for &(x, y, rel) in constraints {
            // Revise x against y: keep a ∈ dom(x) with a supported b.
            stats.revisions += 1;
            let dy = domains[y].clone();
            let before = domains[x].len();
            domains[x].retain(|&a| dy.iter().any(|&b| allowed(rel, a, b)));
            changed |= domains[x].len() != before;
            // Revise y against x.
            stats.revisions += 1;
            let dx = domains[x].clone();
            let before = domains[y].len();
            domains[y].retain(|&b| dx.iter().any(|&a| allowed(rel, a, b)));
            changed |= domains[y].len() != before;
        }
        if domains.iter().any(|d| d.is_empty()) {
            return false;
        }
        if !changed {
            return true;
        }
    }
}

fn backtrack(
    domains: &mut Vec<Vec<ConstId>>,
    constraints: &[(usize, usize, gomq_core::RelId)],
    allowed: &impl Fn(gomq_core::RelId, ConstId, ConstId) -> bool,
    assignment: &mut Vec<Option<ConstId>>,
    stats: &mut SolveStats,
) -> bool {
    stats.nodes += 1;
    // MRV: pick the unassigned variable with the smallest domain.
    let next = (0..domains.len())
        .filter(|&i| assignment[i].is_none())
        .min_by_key(|&i| domains[i].len());
    let Some(vi) = next else {
        return true;
    };
    let candidates = domains[vi].clone();
    for a in candidates {
        // Check consistency with already-assigned neighbours.
        let consistent = constraints.iter().all(|&(x, y, rel)| {
            let vx = if x == vi { Some(a) } else { assignment[x] };
            let vy = if y == vi { Some(a) } else { assignment[y] };
            match (vx, vy) {
                (Some(b), Some(c)) => allowed(rel, b, c),
                _ => true,
            }
        });
        if !consistent {
            continue;
        }
        assignment[vi] = Some(a);
        // Forward-check: narrow domains of unassigned constrained vars.
        let saved = domains.clone();
        domains[vi] = vec![a];
        let ok = ac3(domains, constraints, allowed, stats)
            && backtrack(domains, constraints, allowed, assignment, stats);
        if ok {
            return true;
        }
        *domains = saved;
        assignment[vi] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use gomq_core::hom::{has_homomorphism, Homomorphism};
    use gomq_core::{Fact, Vocab};

    fn cycle(v: &mut Vocab, n: usize) -> Instance {
        let edge = v.rel("edge", 2);
        let mut d = Instance::new();
        for i in 0..n {
            let a = v.constant(&format!("v{i}"));
            let b = v.constant(&format!("v{}", (i + 1) % n));
            d.insert(Fact::consts(edge, &[a, b]));
        }
        d
    }

    #[test]
    fn even_cycle_is_2_colorable_odd_is_not() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v);
        let even = cycle(&mut v, 6);
        assert!(solve_csp(&even, &t).is_some());
        let mut v2 = Vocab::new();
        let t2 = Template::k_coloring(2, &mut v2);
        let odd = cycle(&mut v2, 5);
        assert!(solve_csp(&odd, &t2).is_none());
    }

    #[test]
    fn odd_cycle_is_3_colorable() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(3, &mut v);
        let odd = cycle(&mut v, 5);
        let h = solve_csp(&odd, &t).expect("3-colorable");
        // Verify: adjacent vertices get distinct colors.
        let edge = v.rel("edge", 2);
        for f in odd.facts_of(edge) {
            assert_ne!(h[&f.args[0]], h[&f.args[1]]);
        }
    }

    #[test]
    fn precoloring_constrains_solutions() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        // Path a-b with both endpoints precolored to the same color: UNSAT.
        let edge = v.rel("edge", 2);
        let col0 = v.constant("col0");
        let p0 = t.precolor[&col0];
        let a = v.constant("a");
        let b = v.constant("b");
        let mut d = Instance::new();
        d.insert(Fact::consts(edge, &[a, b]));
        d.insert(Fact::consts(p0, &[a]));
        d.insert(Fact::consts(p0, &[b]));
        assert!(solve_csp(&d, &t).is_none());
        // Different colors: SAT.
        let col1 = v.constant("col1");
        let p1 = t.precolor[&col1];
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(edge, &[a, b]));
        d2.insert(Fact::consts(p0, &[a]));
        d2.insert(Fact::consts(p1, &[b]));
        assert!(solve_csp(&d2, &t).is_some());
    }

    #[test]
    fn agrees_with_generic_homomorphism_search() {
        let mut v = Vocab::new();
        let t = Template::k_coloring(3, &mut v);
        for n in 3..8 {
            let d = cycle(&mut v, n);
            let csp = solve_csp(&d, &t).is_some();
            let hom = has_homomorphism(&d, &t.interp, &Homomorphism::new());
            assert_eq!(csp, hom, "cycle of length {n}");
        }
    }

    #[test]
    fn implication_template_reachability() {
        let mut v = Vocab::new();
        let t = Template::implication(&mut v);
        let edge = v.rel("edge", 2);
        let one_rel = v.rel("One", 1);
        let zero_rel = v.rel("Zero", 1);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        // One(a), a→b→c, Zero(c): forces 1 ≤ … ≤ 0, impossible.
        let mut d = Instance::new();
        d.insert(Fact::consts(one_rel, &[a]));
        d.insert(Fact::consts(edge, &[a, b]));
        d.insert(Fact::consts(edge, &[b, c]));
        d.insert(Fact::consts(zero_rel, &[c]));
        assert!(solve_csp(&d, &t).is_none());
        // Without the Zero end it is satisfiable.
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(one_rel, &[a]));
        d2.insert(Fact::consts(edge, &[a, b]));
        d2.insert(Fact::consts(edge, &[b, c]));
        assert!(solve_csp(&d2, &t).is_some());
    }

    #[test]
    fn everything_maps_into_reflexive_clique() {
        let mut v = Vocab::new();
        let t = Template::reflexive_clique(2, &mut v);
        let d = cycle(&mut v, 7);
        assert!(solve_csp(&d, &t).is_some());
    }
}
