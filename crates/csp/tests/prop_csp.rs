//! Property tests: the CSP solver against the generic homomorphism
//! search, and the coCSP Datalog program against the solver.

use gomq_core::hom::{has_homomorphism, Homomorphism};
use gomq_core::{Fact, Instance, Vocab};
use gomq_csp::datalog::two_coloring_cocsp;
use gomq_csp::solve::solve_csp;
use gomq_csp::Template;
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..6, 0usize..6), 1..14)
}

fn build_graph(edges: &[(usize, usize)], v: &mut Vocab, tag: &str) -> Instance {
    let edge = v.rel("edge", 2);
    let consts: Vec<_> = (0..6).map(|i| v.constant(&format!("{tag}{i}"))).collect();
    let mut d = Instance::new();
    for &(a, b) in edges {
        if a != b {
            d.insert(Fact::consts(edge, &[consts[a], consts[b]]));
        }
    }
    if d.is_empty() {
        d.insert(Fact::consts(edge, &[consts[0], consts[1]]));
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csp_solver_agrees_with_generic_hom_search(edges in graph_strategy()) {
        for k in [2usize, 3] {
            let mut v = Vocab::new();
            let t = Template::k_coloring(k, &mut v);
            let d = build_graph(&edges, &mut v, "g");
            let via_csp = solve_csp(&d, &t).is_some();
            let via_hom = has_homomorphism(&d, &t.interp, &Homomorphism::new());
            prop_assert_eq!(via_csp, via_hom, "k = {}", k);
        }
    }

    #[test]
    fn found_colorings_are_proper(edges in graph_strategy()) {
        let mut v = Vocab::new();
        let t = Template::k_coloring(3, &mut v);
        let d = build_graph(&edges, &mut v, "h");
        if let Some(h) = solve_csp(&d, &t) {
            let edge = v.rel("edge", 2);
            for f in d.facts_of(edge) {
                prop_assert_ne!(h[&f.args[0]], h[&f.args[1]]);
            }
        }
    }

    #[test]
    fn cocsp_datalog_matches_solver(edges in graph_strategy()) {
        let mut v = Vocab::new();
        let t = Template::k_coloring(2, &mut v).with_precoloring(&mut v);
        let program = two_coloring_cocsp(&t, &mut v);
        let d = build_graph(&edges, &mut v, "p");
        let colorable = solve_csp(&d, &t).is_some();
        let goal_fires = !program.eval(&d).is_empty();
        prop_assert_eq!(colorable, !goal_fires);
    }

    #[test]
    fn more_colors_never_hurt(edges in graph_strategy()) {
        let mut v2 = Vocab::new();
        let t2 = Template::k_coloring(2, &mut v2);
        let d2 = build_graph(&edges, &mut v2, "m");
        let two = solve_csp(&d2, &t2).is_some();
        let mut v3 = Vocab::new();
        let t3 = Template::k_coloring(3, &mut v3);
        let d3 = build_graph(&edges, &mut v3, "m");
        let three = solve_csp(&d3, &t3).is_some();
        prop_assert!(!two || three, "2-colorable implies 3-colorable");
    }
}
